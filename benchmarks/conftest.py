"""Shared helpers for the benchmark suite.

Every bench module regenerates one experiment of DESIGN.md §5 (ids T1, F1-F3,
A1-A6, X1-X6).  Benchmarks double as assertions: each records the paper's
qualitative claim and fails if the measured behaviour stops matching it.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def byzantine_values(model, *, skip=None):
    """Standard split proposals for all honest processes."""
    skip = set(skip or ())
    return {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in skip
    }


@pytest.fixture
def report(capsys):
    """Print a block that survives pytest's capture with -rA or -s."""

    def emit(text: str) -> None:
        print("\n" + text)

    return emit
