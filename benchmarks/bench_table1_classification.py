"""Experiment T1 — Table 1: the three classes of consensus algorithms.

For each class we verify, at the minimal Byzantine configuration:

* the resilience bound (minimal ``n`` admitted; ``n − 1`` rejected),
* the rounds-per-phase column (measured from the execution trace),
* the process-state column (measured from what travels on the wire),
* agreement + termination in one phase under synchrony with an active
  Byzantine adversary,

and benchmark the canonical run of each class.
"""

import pytest

from repro.analysis.metrics import RunMetrics
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.parameters import ParameterError
from repro.core.run import run_consensus
from repro.core.types import FaultModel

B, F = 1, 0
CASES = [
    (AlgorithmClass.CLASS_1, 6, 2, ("vote",)),
    (AlgorithmClass.CLASS_2, 5, 3, ("vote", "ts")),
    (AlgorithmClass.CLASS_3, 4, 3, ("vote", "ts", "history")),
]


@pytest.mark.parametrize("cls,min_n,rounds,state", CASES)
def test_table1_row(benchmark, cls, min_n, rounds, state):
    # n column: minimal n admitted, below rejected.
    assert cls.min_processes(B, F) == min_n
    with pytest.raises(ParameterError):
        build_class_parameters(cls, FaultModel(min_n - 1, B, F))

    model = FaultModel(min_n, B, F)
    params = build_class_parameters(cls, model)

    # Rounds-per-phase and state columns.
    assert params.rounds_per_phase == rounds
    assert params.state_footprint == state

    values = {pid: f"v{pid % 2}" for pid in range(min_n - 1)}

    def run():
        return run_consensus(
            params, values, byzantine={min_n - 1: "equivocator"}
        )

    outcome = benchmark(run)
    metrics = RunMetrics.from_outcome(outcome)
    assert outcome.agreement_holds
    assert outcome.all_correct_decided
    # One good phase suffices; the trace confirms the rounds column.
    assert metrics.rounds_to_last_decision == rounds
    assert metrics.phases_to_last_decision == 1


@pytest.mark.parametrize(
    "cls,b,f,expected_n",
    [
        (AlgorithmClass.CLASS_1, 2, 0, 11),
        (AlgorithmClass.CLASS_1, 0, 2, 7),
        (AlgorithmClass.CLASS_2, 2, 0, 9),
        (AlgorithmClass.CLASS_2, 0, 2, 5),
        (AlgorithmClass.CLASS_3, 2, 0, 7),
        (AlgorithmClass.CLASS_3, 0, 2, 5),  # 3b + 2f = 4 → 5
    ],
)
def test_n_bound_formula(cls, b, f, expected_n):
    """The n column generalizes: n > 5b+3f / 4b+2f / 3b+2f."""
    assert cls.min_processes(b, f) == expected_n


def test_benign_collapse_of_classes_2_and_3(benchmark):
    """Table 1's remark: with b = 0, classes 2 and 3 coincide (history
    adds nothing) — both decide identically at n = 2f + 1."""
    model = FaultModel(3, 0, 1)
    values = {0: "a", 1: "b", 2: "c"}
    p2 = build_class_parameters(AlgorithmClass.CLASS_2, model)
    p3 = build_class_parameters(AlgorithmClass.CLASS_3, model)

    def run_both():
        return (
            run_consensus(p2, values),
            run_consensus(p3, values),
        )

    out2, out3 = benchmark(run_both)
    assert out2.decided_values == out3.decided_values
    assert (
        out2.rounds_to_last_decision == out3.rounds_to_last_decision == 3
    )
