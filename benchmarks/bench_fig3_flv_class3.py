"""Experiment F3 — Figure 3: FLV for class 3 at n=4, b=1, f=0, TD=3.

The figure's configuration: two honest processes hold the locked pair
⟨v1, φ1⟩ with certifying histories, one honest laggard holds
⟨v2, φ2′ < φ1⟩, and the Byzantine forges ⟨v2, φ2 > φ1⟩ with a fabricated
history.  With TD possibly ≤ 3b + f, timestamps cannot settle it; the
history-certification of line 2 (> b independent histories containing the
pair) is what protects v1.
"""

import itertools

from repro.core.flv_class3 import FLVClass3
from repro.core.types import FaultModel, SelectionMessage
from repro.utils.sentinels import NULL_VALUE

MODEL = FaultModel(4, 1, 0)
TD = 3
PHI1 = 2


def msg(vote, ts, history):
    return SelectionMessage(vote, ts, frozenset(history), frozenset())


def figure3_pool():
    lock_cert = {("v1", 0), ("v1", PHI1)}
    return [
        msg("v1", PHI1, lock_cert),                 # history1
        msg("v1", PHI1, lock_cert),                 # history2
        msg("v2", 1, {("v2", 0), ("v2", 1)}),       # history3 (laggard)
        msg("v2", 9, {("v2", 0), ("v2", 9)}),       # history4 (forged)
    ]


def test_figure3_locked_value_always_safe():
    flv = FLVClass3(MODEL, TD)
    pool = figure3_pool()
    for size in range(len(pool) + 1):
        for subset in itertools.combinations(range(len(pool)), size):
            vector = [pool[i] for i in subset]
            result = flv.evaluate(vector)
            assert result in ("v1", NULL_VALUE), (size, result)


def test_figure3_full_vector_returns_locked_value():
    flv = FLVClass3(MODEL, TD)
    assert flv.evaluate(figure3_pool()) == "v1"


def test_figure3_forged_history_needs_b_plus_1_accomplices():
    """If the adversary controlled b + 1 histories the filter would fail —
    which is exactly why the bound is > b and n > 3b."""
    flv = FLVClass3(MODEL, TD)
    forged_cert = {("v2", 9)}
    vector = [
        msg("v1", PHI1, {("v1", PHI1)}),
        msg("v1", PHI1, {("v1", PHI1)}),
        msg("v2", 9, forged_cert),
        msg("v2", 9, forged_cert),  # a second forged history (> b!)
    ]
    # Two certifying histories put v2 into correctVotes alongside v1 —
    # but two Byzantine processes would violate b = 1, so this vector is
    # unreachable in the model; we only document the mechanism.
    result = flv.evaluate(vector)
    assert result is not NULL_VALUE


def test_figure3_bench(benchmark):
    flv = FLVClass3(MODEL, TD)
    vector = figure3_pool()
    result = benchmark(flv.evaluate, vector)
    assert result == "v1"
