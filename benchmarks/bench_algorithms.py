"""Experiments A1-A5 — the named instantiations of Section 5.

For each algorithm: the paper's parameterization, its resilience bound, the
phase structure, and the per-algorithm claims (OneThirdRule/FaB selection
improvements, MQB's no-history property, Paxos/PBFT kinship).
"""

import pytest

from repro.algorithms import (
    build_chandra_toueg,
    build_fab_paxos,
    build_mqb,
    build_one_third_rule,
    build_paxos,
    build_pbft,
)
from repro.algorithms.one_third_rule import OriginalOneThirdRuleProcess
from repro.core.flv_class1 import FLVClass1
from repro.core.flv_variants import FaBPaxosFLV
from repro.core.types import FaultModel, RoundInfo, RoundKind, SelectionMessage
from repro.rounds.engine import SyncEngine
from repro.rounds.policies import ReliablePolicy
from repro.utils.sentinels import NULL_VALUE


def sel(vote):
    return SelectionMessage(vote, 0, frozenset({(vote, 0)}), frozenset())


# ----------------------------------------------------------------- A1: OTR


def test_one_third_rule_decides(benchmark):
    spec = build_one_third_rule(4)
    outcome = benchmark(spec.run, {0: "a", 1: "a", 2: "b", 3: "b"})
    assert outcome.agreement_holds and outcome.all_correct_decided
    assert outcome.rounds_to_last_decision == 2  # class 1: 2 rounds


def test_one_third_rule_improvement_claim():
    """§5.1: the instantiation selects in strictly more cases than Alg. 5."""
    model = FaultModel(6, 0, 1)
    from repro.algorithms.one_third_rule import one_third_rule_threshold

    flv = FLVClass1(model, one_third_rule_threshold(model))
    # 4 messages is NOT more than 2n/3 = 4: Algorithm 5 never selects here…
    vector = [sel("v")] * 4
    assert 3 * len(vector) <= 2 * model.n
    # …while the instantiated FLV does.
    assert flv.evaluate(vector) == "v"


def test_one_third_rule_original_matches_decisions(benchmark):
    """Both versions decide the same value under full synchrony."""
    model = FaultModel(4, 0, 1)
    values = {0: "a", 1: "a", 2: "a", 3: "b"}

    def run_original():
        processes = {
            pid: OriginalOneThirdRuleProcess(pid, values[pid], model)
            for pid in range(4)
        }
        engine = SyncEngine(
            model,
            processes,
            ReliablePolicy(),
            lambda r: RoundInfo(r, r, RoundKind.SELECTION),
        )
        engine.run(3)
        return processes

    processes = benchmark(run_original)
    assert {p.decided for p in processes.values()} == {"a"}
    spec = build_one_third_rule(4)
    outcome = spec.run(values)
    assert outcome.decided_values == {"a"}


# ----------------------------------------------------- A2: FaB Paxos


def test_fab_paxos_two_round_decision(benchmark):
    spec = build_fab_paxos(6)
    values = {pid: f"v{pid % 2}" for pid in range(5)}
    outcome = benchmark(spec.run, values, byzantine={5: "equivocator"})
    assert outcome.agreement_holds and outcome.all_correct_decided
    assert outcome.rounds_to_last_decision == 2


def test_fab_footnote13_improvement():
    """n=7, b=1: original needs 4 matching messages, Algorithm 6 needs 3."""
    model = FaultModel(7, 1, 0)
    flv = FaBPaxosFLV(model)
    original_required = -((model.n - model.b + 1) // -2)  # ⌈(n−b+1)/2⌉ = 4
    assert original_required == 4
    vector = [sel("v")] * 3 + [sel("w")] * 2
    assert flv.evaluate(vector) == "v"  # 3 < 4 suffice for the instantiation


def test_fab_requires_n_gt_5b():
    with pytest.raises(ValueError):
        build_fab_paxos(5, b=1)


# ----------------------------------------------------------- A3: MQB


def test_mqb_decides_in_fab_impossible_territory(benchmark):
    """The headline result: n = 4b + 1 Byzantine consensus w/o history."""
    spec = build_mqb(5)
    values = {pid: f"v{pid % 2}" for pid in range(4)}
    outcome = benchmark(spec.run, values, byzantine={4: "high-ts-liar"})
    assert outcome.agreement_holds and outcome.all_correct_decided
    assert spec.parameters.state_footprint == ("vote", "ts")


def test_mqb_message_size_advantage_over_pbft():
    """MQB ships no history: its selection messages stay O(1) while PBFT's
    grow with the phase count."""
    import random

    from repro.rounds.policies import GoodBadPolicy
    from repro.rounds.schedule import GoodBadSchedule

    policy_args = dict(
        bad_behavior=None,
    )
    for builder, n, expect_history in ((build_mqb, 5, False), (build_pbft, 4, True)):
        spec = builder(n)
        policy = GoodBadPolicy(
            GoodBadSchedule.good_after(10), rng=random.Random(0)
        )
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(n - 1)},
            byzantine={n - 1: "equivocator"},
            policy=policy,
            max_phases=10,
        )
        process = next(iter(outcome.honest_processes.values()))
        message = process.send(RoundInfo(100, 34, RoundKind.SELECTION))
        history_len = len(next(iter(message.values())).history)
        if expect_history:
            assert history_len >= 1
        else:
            assert history_len == 0


# ----------------------------------------------------------- A4: Paxos


def test_paxos_leader_based_decision(benchmark):
    spec = build_paxos(3)
    outcome = benchmark(spec.run, {0: "a", 1: "b", 2: "c"})
    assert outcome.agreement_holds and outcome.all_correct_decided
    assert outcome.phases_to_last_decision == 1


def test_chandra_toueg_rotating_coordinator(benchmark):
    spec = build_chandra_toueg(3)
    outcome = benchmark(spec.run, {0: "a", 1: "b", 2: "c"})
    assert outcome.agreement_holds and outcome.all_correct_decided


# ----------------------------------------------------------- A5: PBFT


def test_pbft_optimal_resilience(benchmark):
    spec = build_pbft(4)
    values = {0: "a", 1: "b", 2: "a"}
    outcome = benchmark(spec.run, values, byzantine={3: "fake-history-liar"})
    assert outcome.agreement_holds and outcome.all_correct_decided
    assert outcome.phases_to_last_decision == 1


def test_pbft_and_paxos_share_the_class3_selection_rule():
    """§5.3: both selection rounds derive from the class-3 FLV — on benign
    vectors Paxos's FLV and PBFT's FLV agree whenever both are defined."""
    from repro.core.flv_variants import PaxosFLV, PBFTFLV

    paxos_model = FaultModel(4, 0, 1)
    pbft_model = FaultModel(4, 1, 0)
    paxos_flv = PaxosFLV(paxos_model)
    pbft_flv = PBFTFLV(pbft_model)
    cert = frozenset({("x", 2)})
    vectors = [
        [SelectionMessage("x", 2, cert, frozenset())] * 3,
        [SelectionMessage("x", 0, frozenset({("x", 0)}), frozenset())] * 3,
    ]
    for vector in vectors:
        p = paxos_flv.evaluate(vector)
        q = pbft_flv.evaluate(vector)
        if p is not NULL_VALUE and q is not NULL_VALUE:
            from repro.utils.sentinels import ANY_VALUE

            assert p == q or p is ANY_VALUE or q is ANY_VALUE


def test_resilience_ladder():
    """n required for b = 1: FaB 6 > MQB 5 > PBFT 4 — the paper's ladder."""
    assert build_fab_paxos(6).parameters.model.n == 6
    assert build_mqb(5).parameters.model.n == 5
    assert build_pbft(4).parameters.model.n == 4
    for builder, n in ((build_fab_paxos, 5), (build_mqb, 4), (build_pbft, 3)):
        with pytest.raises(ValueError):
            builder(n, b=1)
