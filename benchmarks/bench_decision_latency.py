"""Experiment X2 — decision latency across the three classes.

Derived metric (the paper has no testbed): simulated time-to-decision over
the discrete-event runtime, fault-free and under Byzantine attack, plus the
GST sensitivity curve.  The shape to reproduce: class 1 (2 rounds/phase)
decides fastest per phase; everything stalls until the GST; one clean phase
after stabilization suffices.
"""

import pytest

from repro.algorithms import build_fab_paxos, build_mqb, build_paxos, build_pbft
from repro.eventsim import (
    PartialSynchronyNetwork,
    UniformLatency,
    run_timed_consensus,
)

ROUND = 2.5


def sync_network(seed=7):
    return PartialSynchronyNetwork(
        UniformLatency(0.5, 2.0), gst=0.0, delta=2.0, seed=seed
    )


@pytest.mark.parametrize(
    "builder,n,expected_rounds",
    [
        (build_fab_paxos, 6, 2),
        (build_mqb, 5, 3),
        (build_pbft, 4, 3),
        (build_paxos, 3, 3),
    ],
)
def test_latency_fault_free(benchmark, builder, n, expected_rounds):
    spec = builder(n)
    values = {pid: f"v{pid % 2}" for pid in range(n)}

    def run():
        return run_timed_consensus(
            spec.parameters, values, sync_network(), round_duration=ROUND
        )

    outcome = benchmark(run)
    assert outcome.agreement_holds and outcome.all_decided
    assert outcome.rounds_executed == expected_rounds
    assert outcome.last_decision_time == pytest.approx(expected_rounds * ROUND)


def test_class1_beats_class3_per_phase(report):
    fab = run_timed_consensus(
        build_fab_paxos(6).parameters,
        {pid: "v" for pid in range(6)},
        sync_network(),
        round_duration=ROUND,
    )
    pbft = run_timed_consensus(
        build_pbft(4).parameters,
        {pid: "v" for pid in range(4)},
        sync_network(),
        round_duration=ROUND,
    )
    report(
        f"time to decide, fault-free: FaB {fab.last_decision_time:.1f} vs "
        f"PBFT {pbft.last_decision_time:.1f} (simulated units)"
    )
    assert fab.last_decision_time < pbft.last_decision_time


def test_gst_sensitivity_curve(report):
    """Decision time tracks the GST: the curve the model predicts.

    Runs as a campaign (networks axis = the GST values, repetitions = 5
    seeds per point) so the curve is a mean over derived-seed runs instead
    of a single trajectory.
    """
    from repro.campaigns import CampaignSpec, FaultSpec, NetworkSpec, run_campaign
    from repro.campaigns.aggregate import summarize

    gsts = (0.0, 15.0, 30.0)
    spec = CampaignSpec(
        name="gst-sensitivity",
        algorithms=("pbft",),
        models=((4, 1, 0),),
        engines=("timed",),
        faults=(FaultSpec(byzantine="equivocator"),),
        networks=tuple(
            NetworkSpec(gst=gst, pre_gst_delay_prob=0.85, round_duration=ROUND)
            for gst in gsts
        ),
        repetitions=5,
        seed=11,
        max_phases=40,
    )
    rows = run_campaign(spec, workers=2)
    assert all(row["status"] == "ok" for row in rows)
    assert all(row["agreement"] and row["termination"] for row in rows)
    summaries = summarize(rows, group_keys=("network",))
    by_network = {summary.key[0]: summary for summary in summaries}
    times = [
        by_network[network.describe()].mean_latency for network in spec.networks
    ]
    report(f"PBFT mean decision time vs GST {gsts}: {times}")
    assert times[0] < times[1] < times[2]
    # After the GST at most a few phases pass before deciding.
    assert times[2] < 30.0 + 6 * 3 * ROUND


def test_byzantine_attack_does_not_slow_good_phases(report):
    """Under synchrony a scripted adversary cannot delay decision."""
    spec = build_pbft(4)
    clean = run_timed_consensus(
        spec.parameters,
        {pid: f"v{pid % 2}" for pid in range(4)},
        sync_network(),
        round_duration=ROUND,
    )
    attacked = run_timed_consensus(
        spec.parameters,
        {pid: f"v{pid % 2}" for pid in range(3)},
        sync_network(),
        round_duration=ROUND,
        byzantine={3: "equivocator"},
    )
    report(
        f"PBFT decision time clean {clean.last_decision_time:.1f} vs "
        f"attacked {attacked.last_decision_time:.1f}"
    )
    assert attacked.last_decision_time == clean.last_decision_time
