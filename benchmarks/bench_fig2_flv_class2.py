"""Experiment F2 — Figure 2: FLV for class 2 at n=5, b=1, f=0, TD=4.

The figure's configuration: three honest processes hold the locked pair
⟨v1, φ1⟩, one honest process lags with ⟨v2, φ2′ < φ1⟩, and the Byzantine
process claims ⟨v2, φ2 > φ1⟩.  Timestamps alone (line 1) admit the
Byzantine lie into ``possibleVotes``; the ``> b`` support filter (line 2)
removes it.  We check every subset and benchmark the full vector.
"""

import itertools

from repro.core.flv_class2 import FLVClass2
from repro.core.types import FaultModel, SelectionMessage
from repro.utils.sentinels import NULL_VALUE

MODEL = FaultModel(5, 1, 0)
TD = 4
PHI1 = 3


def msg(vote, ts):
    return SelectionMessage(vote, ts, frozenset({(vote, ts)}), frozenset())


def figure2_pool():
    return [
        msg("v1", PHI1),
        msg("v1", PHI1),
        msg("v1", PHI1),       # TD − b locked messages
        msg("v2", 1),          # honest laggard, φ2′ < φ1
        msg("v2", 10**6),      # Byzantine: huge timestamp
    ]


def test_figure2_locked_value_always_safe():
    flv = FLVClass2(MODEL, TD)
    pool = figure2_pool()
    for size in range(len(pool) + 1):
        for subset in itertools.combinations(range(len(pool)), size):
            vector = [pool[i] for i in subset]
            result = flv.evaluate(vector)
            assert result in ("v1", NULL_VALUE), (size, result)
            # Figure's bar: |μ| > n − TD + 2b = 3 exposes v1.
            if len(vector) > 3:
                assert result == "v1"


def test_figure2_byzantine_timestamp_dominates_line1_only():
    """The attack works on line 1 (the lie survives) but dies at line 2."""
    from repro.core.flv_class2 import survivors

    pool = figure2_pool()
    kept = survivors(pool, MODEL.n - TD + MODEL.b)
    assert msg("v2", 10**6) in kept          # line 1 admits the lie
    assert FLVClass2(MODEL, TD).evaluate(pool) == "v1"  # line 2 kills it


def test_figure2_bench(benchmark):
    flv = FLVClass2(MODEL, TD)
    vector = figure2_pool()
    result = benchmark(flv.evaluate, vector)
    assert result == "v1"
