"""Experiment X1 — Pcons out of Pgood (Section 2.2).

Measured claims: the authenticated implementation costs 2 rounds per
selection round, the signature-free one 3; both give Pcons exactly when the
phase coordinator is correct; a Byzantine coordinator delays but never
corrupts; message complexity differs accordingly.
"""

import pytest

from repro.algorithms import build_mqb, build_pbft
from repro.network import (
    AuthenticatedCoordinatorEcho,
    SignatureFreeCoordinatorEcho,
    run_with_pcons_stack,
)


@pytest.mark.parametrize(
    "wic_cls,extra_rounds",
    [(AuthenticatedCoordinatorEcho, 2), (SignatureFreeCoordinatorEcho, 3)],
)
def test_round_cost_per_phase(benchmark, wic_cls, extra_rounds):
    spec = build_pbft(4)
    model = spec.parameters.model
    values = {pid: f"v{pid % 2}" for pid in range(3)}

    def run():
        return run_with_pcons_stack(
            spec.parameters,
            values,
            wic_cls(model),
            byzantine={3: "equivocator"},
        )

    outcome = benchmark(run)
    assert outcome.agreement_holds and outcome.all_correct_decided
    # One phase: Pcons implementation + validation + decision.
    assert outcome.micro_rounds_used == extra_rounds + 2
    assert outcome.pcons_held_in_phase(1)


def test_signature_free_costs_more_messages(report):
    spec = build_mqb(5)
    model = spec.parameters.model
    values = {pid: f"v{pid % 2}" for pid in range(4)}
    auth = run_with_pcons_stack(
        spec.parameters, values, AuthenticatedCoordinatorEcho(model),
        byzantine={4: "equivocator"},
    )
    free = run_with_pcons_stack(
        spec.parameters, values, SignatureFreeCoordinatorEcho(model),
        byzantine={4: "equivocator"},
    )
    report(
        f"MQB n=5: authenticated Pcons {auth.messages_sent} msgs / "
        f"{auth.micro_rounds_used} rounds; signature-free "
        f"{free.messages_sent} msgs / {free.micro_rounds_used} rounds"
    )
    assert free.messages_sent > auth.messages_sent
    assert free.micro_rounds_used > auth.micro_rounds_used


def test_byzantine_coordinator_recovery():
    """Phase 1's coordinator is Byzantine: Pcons fails there, the rotation
    recovers, agreement is never at risk."""
    spec = build_pbft(4)
    model = spec.parameters.model
    outcome = run_with_pcons_stack(
        spec.parameters,
        {pid: f"v{pid % 2}" for pid in (1, 2, 3)},
        SignatureFreeCoordinatorEcho(model),
        byzantine={0: "equivocator"},  # coordinates phase 1
        max_phases=6,
    )
    assert outcome.agreement_holds
    assert outcome.all_correct_decided
