"""Experiment A3/T1 — resilience sweep: where each class lives and dies.

Sweeps n for b ∈ {1, 2} across all three classes: configurations above the
Table-1 bound must survive the full adversarial battery; configurations at
or below the bound must be rejected by the constraint checker.  This is the
constructive reproduction of the paper's headline (FaB n > 5b, MQB n > 4b,
PBFT n > 3b) and of MQB's existence claim.

The grid runs on the campaign engine (``repro.campaigns``): the sweep is a
declarative :class:`CampaignSpec`, below-bound cells come back as
``inadmissible`` rows, and the printed table is the campaign's aggregated
per-cell report.
"""

import pytest

from repro.analysis.resilience import sweep_class
from repro.campaigns import (
    CampaignSpec,
    FaultSpec,
    format_report,
    run_campaign,
    summarize,
)
from repro.campaigns.presets import BYZANTINE_SCENARIOS
from repro.core.classification import AlgorithmClass
from repro.core.types import FaultModel

BOUND_FACTOR = {
    AlgorithmClass.CLASS_1: 5,
    AlgorithmClass.CLASS_2: 4,
    AlgorithmClass.CLASS_3: 3,
}


def sweep_campaign(cls: AlgorithmClass, b: int) -> CampaignSpec:
    factor = BOUND_FACTOR[cls]
    return CampaignSpec(
        name=f"resilience-class{cls.value}-b{b}",
        algorithms=(f"class-{cls.value}",),
        models=tuple(
            (n, b, 0)
            for n in range(max(b + 1, factor * b - 1), factor * b + 3)
        ),
        faults=tuple(FaultSpec(byzantine=name) for name in BYZANTINE_SCENARIOS),
        max_phases=8,
    )


@pytest.mark.parametrize("cls", list(AlgorithmClass))
@pytest.mark.parametrize("b", [1, 2])
def test_sweep(cls, b, report):
    factor = BOUND_FACTOR[cls]
    rows = run_campaign(sweep_campaign(cls, b))
    report(
        f"{cls.name}, b={b} (bound n > {factor}b):\n"
        + format_report(summarize(rows))
    )
    for row in rows:
        cell = f"n={row['n']} {row['fault']}"
        if row["n"] > factor * b:
            assert row["status"] == "ok", f"{cell} should be admitted"
            assert row["agreement"], f"{cell}: agreement broke"
            assert row["termination"], f"{cell}: stuck"
        else:
            assert row["status"] == "inadmissible", f"{cell} should be rejected"


def test_mqb_exists_exactly_in_the_gap(benchmark):
    """The paper's discovery: class 2 fills 4b < n ≤ 5b for f = 0."""

    def sweep_gap():
        b = 1
        gap_rows = sweep_class(
            AlgorithmClass.CLASS_2, [FaultModel(5, b, 0)], max_phases=8
        )
        fab_rows = sweep_class(
            AlgorithmClass.CLASS_1, [FaultModel(5, b, 0)], max_phases=8
        )
        return gap_rows, fab_rows

    gap_rows, fab_rows = benchmark(sweep_gap)
    assert all(row.admitted and row.agreement and row.termination for row in gap_rows)
    assert all(not row.admitted for row in fab_rows)


def test_benign_frontier():
    """b = 0: classes 2/3 at n > 2f, class 1 at n > 3f."""
    rows2 = sweep_class(
        AlgorithmClass.CLASS_2, [FaultModel(3, 0, 1), FaultModel(2, 0, 1)]
    )
    assert rows2[0].admitted and rows2[0].termination
    assert not rows2[1].admitted
    rows1 = sweep_class(
        AlgorithmClass.CLASS_1, [FaultModel(4, 0, 1), FaultModel(3, 0, 1)]
    )
    assert rows1[0].admitted and rows1[0].termination
    assert not rows1[1].admitted
