"""Experiment X6 — state machine replication throughput (Section 5.3 context).

Derived metric: slots committed, phases and messages per slot for a
Paxos-replicated and a PBFT-replicated key-value store, with replica-state
digest agreement checked at the end.
"""


from repro.algorithms import build_paxos, build_pbft
from repro.smr import KeyValueStore, ReplicatedService

WORKLOAD = [("set", f"key{i}", i) for i in range(8)]


def drive(spec, byzantine=None):
    service = ReplicatedService(spec, KeyValueStore, byzantine=byzantine)
    for command in WORKLOAD:
        service.submit(command)
    return service.run_until_drained(max_slots=20)


def test_paxos_smr_throughput(benchmark, report):
    report_obj = benchmark(drive, build_paxos(3))
    assert report_obj.slots_committed == len(WORKLOAD)
    assert report_obj.digests_agree
    report(
        f"Paxos SMR: {report_obj.slots_committed} slots, "
        f"{report_obj.phases_per_slot:.2f} phases/slot, "
        f"{report_obj.total_messages} messages"
    )


def test_pbft_smr_throughput_under_attack(benchmark, report):
    report_obj = benchmark(drive, build_pbft(4), {3: "equivocator"})
    assert report_obj.slots_committed == len(WORKLOAD)
    assert report_obj.digests_agree
    report(
        f"PBFT SMR (equivocator): {report_obj.slots_committed} slots, "
        f"{report_obj.phases_per_slot:.2f} phases/slot, "
        f"{report_obj.total_messages} messages"
    )


def test_pbft_costs_more_messages_than_paxos(report):
    paxos = drive(build_paxos(3))
    pbft = drive(build_pbft(4))
    per_slot_paxos = paxos.total_messages / paxos.slots_committed
    per_slot_pbft = pbft.total_messages / pbft.slots_committed
    report(
        f"messages/slot: Paxos {per_slot_paxos:.0f}, PBFT {per_slot_pbft:.0f}"
    )
    assert per_slot_pbft > per_slot_paxos


def test_state_convergence_is_checked():
    service = ReplicatedService(build_pbft(4), KeyValueStore,
                                byzantine={3: "vote-flipper"})
    service.submit(("set", "x", 1))
    report_obj = service.run_until_drained()
    assert report_obj.digests_agree
    digests = {m.digest() for m in service.machines.values()}
    assert len(digests) == 1
