"""SMR serving throughput: batched + pipelined vs slot-at-a-time.

Usage::

    python benchmarks/bench_smr.py                      # full measurement
    python benchmarks/bench_smr.py --budget 3           # CI smoke
    python benchmarks/bench_smr.py --check --budget 3   # perf gate

Each cell drains one fixed backlog of client commands through
``repro.smr.serve.run_serve`` twice: the ``slot`` arm decides one command
per consensus instance (``batch=1, depth=1`` — the classic
one-instance-per-command reading of Section 5.3), the ``pipelined`` arm
batches up to :data:`BATCH` commands per slot with :data:`DEPTH` slots in
flight.  Both arms must produce digest-equal state machines and identical
log digests (asserted on every measurement — the optimization is not
allowed to change what the service commits), and the pipelined arm must
sustain at least :data:`ACCEPTANCE_SPEEDUP` x the slot arm's command
throughput on the acceptance cell.

The report is *merged into* ``BENCH_engine.json`` as its ``smr`` section —
other sections (the engine-throughput cells) are preserved.  ``--check``
diffs every measured arm's commands/sec against the committed report
(override with ``--baseline``) and fails when one falls below
``(1 − tolerance) ×`` its committed figure; like the engine bench, the
gate writes ``BENCH_smr.check.json`` so it never clobbers its own
baseline.
"""

import argparse
import json
import sys
from time import perf_counter
from typing import Dict, List, Optional

sys.path.insert(0, "src")

from repro.smr import ServeConfig, run_serve  # noqa: E402

#: Pipelined-arm knobs: max commands per slot, slots in flight.
BATCH = 16
DEPTH = 4

#: Commands in the drained backlog (all arrive at t=0 — pure throughput).
BACKLOG = 64

#: name, algorithm, n, b, scenario
CELLS = [
    ("smr-pbft-n4", "pbft", 4, 1, "fault-free"),
    ("smr-pbft-n4-byz", "pbft", 4, 1, "worst_case"),
]

ARMS = {
    "slot": {"batch": 1, "depth": 1},
    "pipelined": {"batch": BATCH, "depth": DEPTH},
}

ACCEPTANCE_CELL = "smr-pbft-n4"
ACCEPTANCE_SPEEDUP = 5.0


def serve_once(name: str, algorithm: str, n: int, b: int, scenario: str,
               arm: str):
    """One backlog drain; returns the ServeReport (digests checked)."""
    arrivals = [
        (0.0, ("set", f"key{i % 8}", i)) for i in range(BACKLOG)
    ]
    config = ServeConfig(
        algorithm=algorithm, n=n, b=b, scenario=scenario,
        seed=0, **ARMS[arm],
    )
    report = run_serve(config, arrivals=arrivals)
    assert not report.stalled, f"{name}/{arm} stalled"
    assert report.committed_commands == BACKLOG, f"{name}/{arm} dropped commands"
    assert report.digests_agree, f"{name}/{arm} replica divergence"
    return report


def measure(name: str, algorithm: str, n: int, b: int, scenario: str,
            arm: str, *, budget: Optional[int], seconds: float) -> Dict:
    """Commands/sec for one arm (best of 3 windows, or a fixed budget)."""

    def window(runs: int) -> tuple:
        start = perf_counter()
        for _ in range(runs):
            serve_once(name, algorithm, n, b, scenario, arm)
        elapsed = perf_counter() - start
        return (runs * BACKLOG) / elapsed, runs, elapsed

    if budget is not None:
        rate, runs, elapsed = window(budget)
        best = (rate, runs, elapsed)
    else:
        serve_once(name, algorithm, n, b, scenario, arm)  # warm-up
        best = (0.0, 0, 0.0)
        for _ in range(3):
            runs = 0
            start = perf_counter()
            while perf_counter() - start < seconds:
                serve_once(name, algorithm, n, b, scenario, arm)
                runs += 1
            elapsed = perf_counter() - start
            rate = (runs * BACKLOG) / elapsed
            if rate > best[0]:
                best = (rate, runs, elapsed)
    rate, runs, elapsed = best
    reference = serve_once(name, algorithm, n, b, scenario, arm)
    return {
        "cell": name,
        "arm": arm,
        "batch": ARMS[arm]["batch"],
        "depth": ARMS[arm]["depth"],
        "backlog": BACKLOG,
        "runs": runs,
        "seconds": round(elapsed, 4),
        "commands_per_sec": round(rate, 2),
        "slots": reference.slots_committed,
        "retries": reference.retries,
        "log_digest": reference.log_digest,
        "digest": reference.digest,
        "latency_p50": round(reference.latency["p50"], 4),
        "latency_p99": round(reference.latency["p99"], 4),
    }


def arm_key(sample: Dict) -> str:
    return f"{sample['cell']}/{sample['arm']}"


def load_baseline(path: str) -> Dict[str, float]:
    """``cell/arm`` → committed commands/sec from a report's smr section."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    rates: Dict[str, float] = {}
    for sample in report.get("smr", {}).get("cells", ()):
        rate = sample.get("commands_per_sec")
        if rate:
            rates[arm_key(sample)] = rate
    return rates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=int, default=None,
        help="fixed backlog drains per arm (default: time-window mode)",
    )
    parser.add_argument(
        "--seconds-per-arm", "--seconds", dest="seconds", type=float,
        default=1.0, metavar="S",
        help="measurement window per arm in time-window mode (default 1.0)",
    )
    parser.add_argument(
        "--cells", default=None, metavar="NAME[,NAME...]",
        help="measure only these cells (default: all)",
    )
    parser.add_argument(
        "--out", default=None,
        help="report path (default BENCH_engine.json, merged into its smr "
        "section; with --check, BENCH_smr.check.json so the gate never "
        "clobbers its own baseline)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="committed bench report to diff against (implied as "
        "BENCH_engine.json by --check)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5, metavar="FRAC",
        help="--check fails when a measured arm drops below "
        "(1 - FRAC) x its baseline commands/sec (default 0.5)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="regression gate: diff measured commands/sec against the "
        f"baseline report and assert the acceptance cell keeps "
        f"{ACCEPTANCE_SPEEDUP}x",
    )
    parser.add_argument(
        "--sessions", type=int, default=1, metavar="N",
        help="repeat the whole measurement N times and keep each arm's "
        "best session",
    )
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error("--sessions must be >= 1")

    known = {name for name, *_ in CELLS}
    selected = known
    if args.cells is not None:
        selected = {name.strip() for name in args.cells.split(",") if name.strip()}
        if not selected:
            parser.error(f"--cells selected no cells; known: {sorted(known)}")
        unknown = selected - known
        if unknown:
            parser.error(
                f"unknown cells {sorted(unknown)}; known: {sorted(known)}"
            )
    if args.check and args.baseline is None:
        args.baseline = "BENCH_engine.json"
    if args.out is None:
        partial = args.check or args.cells is not None
        args.out = "BENCH_smr.check.json" if partial else "BENCH_engine.json"
    baseline = load_baseline(args.baseline) if args.baseline else None

    best: Dict[tuple, Dict] = {}
    for _session in range(args.sessions):
        for name, algorithm, n, b, scenario in CELLS:
            if name not in selected:
                continue
            for arm in ARMS:
                sample = measure(
                    name, algorithm, n, b, scenario, arm,
                    budget=args.budget, seconds=args.seconds,
                )
                key = (name, arm)
                rate = sample["commands_per_sec"] or 0
                if key not in best or rate > (best[key]["commands_per_sec"] or 0):
                    best[key] = sample

    results: List[Dict] = []
    speedups: Dict[str, float] = {}
    for name, algorithm, n, b, scenario in CELLS:
        if name not in selected:
            continue
        rates = {}
        digests = {}
        for arm in ARMS:
            sample = best[(name, arm)]
            results.append(sample)
            rates[arm] = sample["commands_per_sec"]
            digests[arm] = (sample["log_digest"], sample["digest"])
        # The optimization must be invisible to the state machine: both
        # arms committed the identical command sequence and state.
        assert digests["slot"] == digests["pipelined"], (
            f"{name}: pipelined arm diverged from slot-at-a-time: {digests}"
        )
        if rates["slot"] and rates["pipelined"]:
            speedup = round(rates["pipelined"] / rates["slot"], 2)
            speedups[name] = speedup
            print(
                f"{name:18s} slot={rates['slot']:9.1f} cmd/s "
                f"pipelined={rates['pipelined']:9.1f} cmd/s "
                f"speedup={speedup:.2f}x digests-equal=True"
            )

    acceptance = {
        "cell": ACCEPTANCE_CELL,
        "required_speedup": ACCEPTANCE_SPEEDUP,
        "measured_speedup": speedups.get(ACCEPTANCE_CELL),
        "pass": (
            speedups.get(ACCEPTANCE_CELL) is not None
            and speedups[ACCEPTANCE_CELL] >= ACCEPTANCE_SPEEDUP
        ),
    }
    smr_section = {
        "benchmark": "smr_serving",
        "budget": args.budget,
        "seconds_per_arm": None if args.budget else args.seconds,
        "merged_sessions": args.sessions,
        "batch": BATCH,
        "depth": DEPTH,
        "backlog": BACKLOG,
        "cells": results,
        "speedups": speedups,
        "acceptance": acceptance,
    }

    regressions: List[str] = []
    if baseline is not None:
        arms: Dict[str, Dict[str, float]] = {}
        for sample in results:
            rate = sample["commands_per_sec"]
            if not rate:
                continue
            key = arm_key(sample)
            committed = baseline.get(key)
            if committed is None:
                if args.check:
                    regressions.append(f"{key}: no baseline entry")
                else:
                    print(
                        f"warning: no baseline entry for {key}",
                        file=sys.stderr,
                    )
                continue
            arms[key] = {
                "baseline": committed,
                "measured": rate,
                "ratio": round(rate / committed, 2),
            }
            if rate < (1.0 - args.tolerance) * committed:
                regressions.append(
                    f"{key}: {rate:.1f}/s < (1 - {args.tolerance:g}) x "
                    f"{committed:.1f}/s committed"
                )
        smr_section["baseline"] = {"path": args.baseline, "arms": arms}

    # Merge, never overwrite: the engine-throughput sections of an existing
    # report survive an smr refresh (and vice versa).
    report: Dict = {}
    try:
        with open(args.out, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    report["smr"] = smr_section
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}; acceptance: {acceptance}")

    if args.check:
        for line in regressions:
            print(f"REGRESSION {line}", file=sys.stderr)
        if regressions:
            return 1
        # Unlike a raw rate, the speedup ratio survives slow hosts (both
        # arms share the window), so even a --budget smoke gates on it.
        if (
            acceptance["measured_speedup"] is not None
            and not acceptance["pass"]
        ):
            print("acceptance speedup not reached", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
