"""Experiment X3 — message complexity per phase across the classes.

Derived metric: with the Π selector every round is all-to-all (n² messages),
so a class-1 phase costs 2n² and a class-2/3 phase costs up to 3n² (the
validation round only carries validator messages).  Leader-based benign
algorithms are cheaper: selection sends n messages to the leader, only the
leader speaks in validation.
"""


from repro.algorithms import build_fab_paxos, build_mqb, build_paxos, build_pbft
from repro.analysis.metrics import RunMetrics


def messages_for(spec, byzantine=None):
    model = spec.parameters.model
    byzantine = byzantine or {}
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }
    outcome = spec.run(values, byzantine=byzantine)
    assert outcome.agreement_holds and outcome.all_correct_decided
    return RunMetrics.from_outcome(outcome), outcome


def test_class1_phase_cost(benchmark, report):
    spec = build_fab_paxos(6)
    metrics, _ = benchmark(messages_for, spec)
    n = 6
    report(f"FaB Paxos n=6 fault-free: {metrics.messages_sent} messages")
    # 2 all-to-all rounds: selection n² + decision n².
    assert metrics.messages_sent == 2 * n * n


def test_class3_phase_cost(benchmark, report):
    spec = build_pbft(4)
    metrics, _ = benchmark(messages_for, spec)
    n = 4
    report(f"PBFT n=4 fault-free: {metrics.messages_sent} messages")
    # Selection n² + validation n·n (all validators under Π) + decision n².
    assert metrics.messages_sent == 3 * n * n


def test_leader_based_is_cheaper(report):
    paxos_metrics, _ = messages_for(build_paxos(5))
    n = 5
    # Selection: n messages to the leader; validation: leader to all (n);
    # decision: all-to-all (n²).
    expected = n + n + n * n
    report(f"Paxos n=5 fault-free: {paxos_metrics.messages_sent} messages "
           f"(expected {expected})")
    assert paxos_metrics.messages_sent == expected


def test_mqb_messages_smaller_than_pbft_bytes(report):
    """Same count shape as PBFT but no history payloads (size advantage)."""
    mqb_metrics, mqb_out = messages_for(
        build_mqb(5), byzantine={4: "equivocator"}
    )
    pbft_metrics, pbft_out = messages_for(
        build_pbft(4), byzantine={3: "equivocator"}
    )
    # Histories on the wire: MQB none, PBFT at least the initial pairs.
    from repro.core.types import RoundInfo, RoundKind

    mqb_msg = next(iter(mqb_out.honest_processes.values())).send(
        RoundInfo(4, 2, RoundKind.SELECTION)
    )
    pbft_msg = next(iter(pbft_out.honest_processes.values())).send(
        RoundInfo(4, 2, RoundKind.SELECTION)
    )
    mqb_hist = len(next(iter(mqb_msg.values())).history)
    pbft_hist = len(next(iter(pbft_msg.values())).history)
    report(f"history entries on the wire: MQB {mqb_hist}, PBFT {pbft_hist}")
    assert mqb_hist == 0
    assert pbft_hist >= 1


def test_per_round_accounting():
    spec = build_pbft(4)
    metrics, outcome = messages_for(spec)
    per_round = [r.sent_count for r in outcome.result.trace.records]
    assert per_round == [16, 16, 16]
