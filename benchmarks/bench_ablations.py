"""Experiment X4 — ablations of the design choices called out in DESIGN.md.

* **skip-first-selection** (Section 3.1 optimization): saves one round when
  inputs already agree, harmless otherwise;
* **static-selector optimization** (Section 3.1): suppresses the selector
  exchange (lines 15/21) — identical decisions, and required message fields
  stay empty;
* **line-26 history variant** (DESIGN.md §4): recording validated pairs in
  the history does not change outcomes in any scenario the scripted
  adversaries produce, but removes the "no matching pair" revert ambiguity;
* **bounded history** (footnote 5): truncation caps state while synchrony
  holds.
"""

import random

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.parameters import GenericConsensusConfig
from repro.core.run import run_consensus
from repro.core.types import FaultModel
from repro.rounds.policies import GoodBadPolicy
from repro.rounds.schedule import GoodBadSchedule


@pytest.fixture
def pbft_params():
    return build_class_parameters(AlgorithmClass.CLASS_3, FaultModel(4, 1, 0))


def test_skip_first_selection_saves_a_round(benchmark, pbft_params, report):
    values = {pid: "same" for pid in range(4)}
    plain = run_consensus(pbft_params, values)

    def run_skipped():
        return run_consensus(
            pbft_params,
            values,
            config=GenericConsensusConfig(skip_first_selection=True),
        )

    skipped = benchmark(run_skipped)
    report(
        f"rounds to decide: plain {plain.rounds_to_last_decision}, "
        f"skip-first-selection {skipped.rounds_to_last_decision}"
    )
    assert skipped.agreement_holds and skipped.all_correct_decided
    assert (
        skipped.rounds_to_last_decision
        == plain.rounds_to_last_decision - 1
    )


def test_static_selector_optimization_is_transparent(pbft_params):
    values = {pid: f"v{pid % 2}" for pid in range(3)}
    with_opt = run_consensus(
        pbft_params,
        values,
        byzantine={3: "equivocator"},
        config=GenericConsensusConfig(static_selector_optimization=True),
    )
    without_opt = run_consensus(
        pbft_params,
        values,
        byzantine={3: "equivocator"},
        config=GenericConsensusConfig(static_selector_optimization=False),
    )
    assert with_opt.decided_values == without_opt.decided_values
    assert (
        with_opt.rounds_to_last_decision == without_opt.rounds_to_last_decision
    )


def test_line26_history_variant_matches_paper_mode(pbft_params):
    """The ablation switch never changes decisions under our adversaries."""
    for strategy in ("equivocator", "high-ts-liar", "fake-history-liar"):
        for seed in range(3):
            values = {pid: f"v{pid % 2}" for pid in range(3)}
            policy = GoodBadPolicy(
                GoodBadSchedule.good_after(7), rng=random.Random(seed)
            )
            paper = run_consensus(
                pbft_params,
                values,
                byzantine={3: strategy},
                policy=policy,
                max_phases=8,
            )
            policy = GoodBadPolicy(
                GoodBadSchedule.good_after(7), rng=random.Random(seed)
            )
            variant = run_consensus(
                pbft_params,
                values,
                byzantine={3: strategy},
                policy=policy,
                max_phases=8,
                config=GenericConsensusConfig(record_validation_in_history=True),
            )
            assert paper.agreement_holds and variant.agreement_holds
            assert paper.decided_values == variant.decided_values, (
                strategy,
                seed,
            )


def test_bounded_history_caps_state(pbft_params, report):
    values = {pid: f"v{pid % 2}" for pid in range(3)}
    policy = GoodBadPolicy(GoodBadSchedule.good_after(13), rng=random.Random(2))
    unbounded = run_consensus(
        pbft_params,
        values,
        byzantine={3: "equivocator"},
        policy=policy,
        max_phases=12,
    )
    policy = GoodBadPolicy(GoodBadSchedule.good_after(13), rng=random.Random(2))
    bounded = run_consensus(
        pbft_params,
        values,
        byzantine={3: "equivocator"},
        policy=policy,
        max_phases=12,
        config=GenericConsensusConfig(max_history_size=2),
    )
    big = max(len(p.state.history) for p in unbounded.honest_processes.values())
    small = max(len(p.state.history) for p in bounded.honest_processes.values())
    report(f"max history entries: unbounded {big}, bounded {small}")
    assert small <= 2
    assert bounded.agreement_holds and bounded.all_correct_decided
