"""Execution-kernel throughput: ``observe="full"`` vs ``observe="metrics"``.

Measures end-to-end runs/sec of the unified kernel on Table-1 cells under
both schedulers and both observation modes.  The metrics-only mode skips
``RoundRecord`` construction, predicate evaluation and per-round snapshot
dicts entirely — this bench quantifies what that buys campaign sweeps.

The acceptance cell (``table1-otr-n30``) is a sweep-scale point on Table 1
row 1 (OneThirdRule, benign model, ``n > 2f``): campaigns run resilience
sweeps at exactly this kind of size, and the kernel's metrics mode must
deliver ≥ 2x the full-observation throughput there.  The classic minimal
cells (PBFT ``(4,1,0)`` under an equivocator, FaB Paxos ``(6,1,0)``) are
reported alongside; their per-round cost is dominated by FLV semantics, so
their observation overhead — and therefore the speedup — is smaller.

Usage::

    python benchmarks/bench_engine_throughput.py                     # full run
    python benchmarks/bench_engine_throughput.py --budget 1          # CI smoke
    python benchmarks/bench_engine_throughput.py --cells table1-otr-n30 \
        --seconds-per-arm 0.5 --check                                # perf gate

``--check`` diffs every measured arm's runs/sec against the committed
``BENCH_engine.json`` (override with ``--baseline``) and fails when one
falls below ``(1 − tolerance) ×`` its committed figure — the CI perf-smoke
job calls this on the acceptance cell.  ``--baseline`` without ``--check``
just embeds the before/after comparison in the report (how the committed
file records each optimization pass).  Emits ``BENCH_engine.json``
(override with ``--out``).

Each cell additionally runs **backend arms**: the same coordinate as a
64-repetition campaign cell dispatched through
:func:`~repro.campaigns.runner.execute_chunk` under ``backend="scalar"``
(the per-run oracle) and ``backend="batch"`` (the PR-7 tiered batch
kernel), metrics observation, reported as rows/sec under the baseline keys
``cell/engine/metrics/{scalar,batch}``.  The batch acceptance gate requires
``batch ≥ 10x scalar`` on the acceptance cell (time-window mode only —
replicated execution makes whole-cell dispatch nearly free).

When the acceptance cell is measured, the report additionally carries a
``"profile"`` section (the ``profile-otr-n30`` arm): the cell's
phase-level span breakdown under ``observe="profile"`` on both engines.
It is informational and never consulted by the ``--check`` gate.

The ``cstate-*`` cells are **columnar-state arms**: timed sweep-scale
coordinates with seed-dependent delivery that the PR-9 planner routes to
the columnar-state tier (the whole generic algorithm as one
``(runs × processes)`` array program).  Each batch sample records the tier
the planner assigned (``"tier"``), and when ``--check`` diffs a
columnar-state arm against a committed figure produced by a *different*
tier — e.g. ``benchmarks/baselines/BENCH_engine_pr8.json``, the parent
commit's per-run columnar figures — the arm must reach
``COLUMNAR_STATE_SPEEDUP`` (3x) its committed rate instead of the ordinary
tolerance rule.  Same-tier baselines gate on ``--tolerance`` as usual.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.algorithms import build_fab_paxos, build_one_third_rule, build_pbft
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_FULL, OBSERVE_METRICS, run_instance
from repro.engine.scheduler import LockstepScheduler, TimedScheduler
from repro.eventsim.network import PartialSynchronyNetwork, UniformLatency
from repro.scenarios import compile_scenario, get_scenario

#: The acceptance cell: metrics mode must be ≥ 2x full observation here.
ACCEPTANCE_CELL = "table1-otr-n30"
ACCEPTANCE_SPEEDUP = 2.0

#: The batch-backend gate: whole-cell batch dispatch must be ≥ 10x the
#: scalar per-run oracle on the acceptance cell (metrics observation).
BATCH_ACCEPTANCE_SPEEDUP = 10.0

CELLS = (
    # (name, builder, n, byzantine strategy for the last b processes,
    #  registered scenario — compiled per run when set, as campaigns do)
    ("table1-otr-n30", build_one_third_rule, 30, None, None),
    ("table1-pbft-n4-byz", build_pbft, 4, "equivocator", None),
    ("table1-fab-n6-byz", build_fab_paxos, 6, "equivocator", None),
    # The adversarial cell: a compiled partition/GST scenario at sweep
    # scale, proving scenario compilation stays off the hot path.
    ("scenario-partition-pbft-n10", build_pbft, 10, None, "partition_heal"),
)

#: Runs per backend arm: one campaign cell's worth of repetitions per
#: ``execute_chunk`` dispatch.
BACKEND_RUNS = 64

BACKENDS = ("scalar", "batch")

#: Campaign-axis coordinates matching each bench cell: the same algorithm
#: and fault model, under a registered scenario, so the backend arms
#: measure exactly what campaign sweeps dispatch.
BACKEND_CELLS = {
    "table1-otr-n30": ("one-third-rule", (30, 0, 9), "fault-free"),
    "table1-pbft-n4-byz": ("pbft", (4, 1, 0), "worst_case"),
    "table1-fab-n6-byz": ("fab-paxos", (6, 1, 0), "worst_case"),
    "scenario-partition-pbft-n10": ("pbft", (10, 3, 0), "partition_heal"),
}

#: Columnar-state cells: timed-engine sweep-scale coordinates whose
#: delivery is seed-dependent but whose generic algorithm the planner can
#: prove expressible as one (runs × processes) array program.  Backend
#: arms only (scalar oracle vs batch), timed engine only — their lockstep
#: siblings would replicate.  The same coordinates ran on the per-run
#: columnar tier before PR 9, so diffing their batch arms against a
#: columnar-tier baseline measures the array program itself.
COLUMNAR_STATE_CELLS = {
    "cstate-otr-n30-flaky": ("one-third-rule", (30, 0, 9), "flaky_gst"),
    "cstate-otr-n30-lossy": ("one-third-rule", (30, 0, 9), "lossy_channel"),
    "cstate-class2-n21-flaky": ("class-2", (21, 2, 2), "flaky_gst"),
    "cstate-class3-n21-lossy": ("class-3", (21, 2, 2), "lossy_channel"),
}

#: The columnar-state gate: a batch arm the planner runs columnar-state
#: must reach 3x a committed figure that a *different* tier produced
#: (recorded per sample under ``"tier"``; absent in pre-PR-9 reports,
#: which also counts as a different tier).
COLUMNAR_STATE_SPEEDUP = 3.0


def make_runner(
    builder,
    n: int,
    byz: Optional[str],
    engine: str,
    observe: str,
    scenario: Optional[str] = None,
    telemetry=None,
) -> Callable[[], None]:
    """One closure executing the cell once (assembly included, as sweeps do)."""
    spec = builder(n)
    model = spec.parameters.model
    parameters, config = spec.parameters, spec.config

    if scenario is not None:
        scenario_spec = get_scenario(scenario)

        def run() -> None:
            compiled = compile_scenario(scenario_spec, model, engine, 7)
            instance = build_instance(
                parameters,
                compiled.honest_values(),
                config=config,
                byzantine=compiled.byzantine,
            )
            outcome = run_instance(
                instance,
                compiled.scheduler,
                max_phases=compiled.max_phases(),
                observe=observe,
                crash_schedule=compiled.crash_schedule,
                telemetry=telemetry,
            )
            assert outcome.agreement_holds

        return run

    byzantine = {model.n - 1 - i: byz for i in range(model.b)} if byz else {}
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }

    def run() -> None:
        instance = build_instance(
            parameters, values, config=config, byzantine=byzantine
        )
        if engine == "lockstep":
            scheduler = LockstepScheduler()
        else:
            scheduler = TimedScheduler(
                PartialSynchronyNetwork(
                    UniformLatency(0.5, 2.0), gst=0.0, delta=2.0, seed=7
                ),
                round_duration=2.5,
            )
        outcome = run_instance(
            instance, scheduler, max_phases=12, observe=observe,
            telemetry=telemetry,
        )
        assert outcome.agreement_holds

    return run


def make_backend_runner(cell: str, engine: str, backend: str):
    """One closure dispatching a 64-run campaign cell through a backend.

    Returns ``(run, tier)`` where ``tier`` is the batch tier the planner
    assigns the cell (``None`` for the scalar oracle arm, which bypasses
    the planner entirely).  Recording the tier per sample lets baseline
    diffs see which executor produced a committed figure — the
    columnar-state gate keys off it.
    """
    from repro.campaigns import CampaignSpec
    from repro.campaigns.runner import execute_chunk
    from repro.engine.batch import plan_for_run

    algorithm, model, scenario = (
        BACKEND_CELLS.get(cell) or COLUMNAR_STATE_CELLS[cell]
    )
    spec = CampaignSpec(
        name=f"bench-{cell}",
        algorithms=(algorithm,),
        models=(model,),
        engines=(engine,),
        scenarios=(scenario,),
        repetitions=BACKEND_RUNS,
        seed=7,
    )
    runs = tuple(spec.iter_runs())
    assert len(runs) == BACKEND_RUNS
    tier = plan_for_run(runs[0]).mode if backend == "batch" else None

    def run() -> None:
        rows = execute_chunk(runs, False, backend)
        assert len(rows) == BACKEND_RUNS
        assert all(row["status"] == "ok" for row in rows)

    return run, tier


def measure_backend(
    cell: str, engine: str, backend: str, *, budget: Optional[int], seconds: float
) -> Dict:
    """Rows/sec of one backend arm (each ``run()`` executes a whole cell).

    In budget mode the budget counts *rows*, so a ``--budget 150`` smoke
    dispatches ⌈150 / 64⌉ chunks per arm rather than 150 × 64 rows.
    """
    chunks = max(1, round(budget / BACKEND_RUNS)) if budget is not None else None
    runner, tier = make_backend_runner(cell, engine, backend)
    sample = measure(runner, budget=chunks, seconds=seconds)
    sample["runs"] *= BACKEND_RUNS
    if sample["runs_per_sec"]:
        sample["runs_per_sec"] = round(sample["runs_per_sec"] * BACKEND_RUNS, 2)
    sample.update(cell=cell, engine=engine, observe="metrics", backend=backend)
    if tier is not None:
        sample["tier"] = tier
    return sample


def profile_breakdown(runs: int = 5) -> Dict:
    """The ``profile-otr-n30`` arm: phase spans of the acceptance cell.

    Runs the acceptance cell under ``observe="profile"`` on both engines,
    folding every run's spans into one shared telemetry registry, and
    returns the per-phase call counts and total/self milliseconds.  The
    section is informational — it lands in the report under ``"profile"``,
    *outside* the ``cells`` list the ``--check`` gate consumes, so the
    committed baseline never gates on phase timings.
    """
    name, builder, n, byz, scenario = CELLS[0]
    assert name == ACCEPTANCE_CELL
    from repro.observability import Telemetry

    section: Dict[str, object] = {
        "arm": f"profile-{name.removeprefix('table1-')}",
        "cell": name,
        "runs_per_engine": runs,
        "engines": {},
    }
    for engine in ("lockstep", "timed"):
        telemetry = Telemetry()
        run = make_runner(
            builder, n, byz, engine, "profile", scenario, telemetry=telemetry
        )
        for _ in range(runs):
            run()
        breakdown = {}
        for span in telemetry.span_names:
            stats = telemetry.span_stats(span)
            breakdown[span] = {
                "calls": stats["calls"],
                "total_ms": round(stats["total_s"] * 1000, 3),
                "self_ms": round(stats["self_s"] * 1000, 3),
            }
        section["engines"][engine] = breakdown
    return section


def measure(run: Callable[[], None], *, budget: Optional[int], seconds: float) -> Dict:
    """Runs/sec of ``run``, by fixed run count (``budget``) or a time window.

    Time-window mode takes the best of three windows: machine noise only
    ever slows a window down, so the maximum is the least-biased estimate
    (and it biases both observation modes identically).
    """
    run()  # warmup (also primes shared structure / coercion caches)
    if budget is not None:
        start = time.perf_counter()
        for _ in range(budget):
            run()
        elapsed = time.perf_counter() - start
        return {
            "runs": budget,
            "seconds": round(elapsed, 4),
            "runs_per_sec": round(budget / elapsed, 2) if elapsed else None,
        }
    best = None
    window = seconds / 3
    for _ in range(3):
        executed = 0
        start = time.perf_counter()
        while time.perf_counter() - start < window:
            run()
            executed += 1
        elapsed = time.perf_counter() - start
        rate = executed / elapsed
        if best is None or rate > best[0]:
            best = (rate, executed, elapsed)
    return {
        "runs": best[1],
        "seconds": round(best[2], 4),
        "runs_per_sec": round(best[0], 2),
    }


def arm_key(sample: Dict) -> str:
    """``cell/engine/observe[/backend]`` — backend arms get the suffix so
    the classic keys (and their committed baselines) stay stable."""
    key = f"{sample['cell']}/{sample['engine']}/{sample['observe']}"
    backend = sample.get("backend")
    return f"{key}/{backend}" if backend else key


def load_baseline(path: str):
    """``cell/engine/observe[/backend]`` → committed (runs/sec, tier).

    ``tier`` is the batch tier recorded with the committed sample, or
    ``None`` when the report predates tier recording (pre-PR-9) or the
    arm is not a batch arm.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    rates: Dict[str, tuple] = {}
    for sample in report.get("cells", ()):
        rate = sample.get("runs_per_sec")
        if rate:
            rates[arm_key(sample)] = (rate, sample.get("tier"))
    return rates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=int, default=None,
        help="fixed number of runs per arm (default: time-window mode)",
    )
    parser.add_argument(
        "--seconds-per-arm", "--seconds", dest="seconds", type=float,
        default=1.5, metavar="S",
        help="measurement window per arm in time-window mode (default 1.5)",
    )
    parser.add_argument(
        "--cells", default=None, metavar="NAME[,NAME...]",
        help="measure only these cells (default: all)",
    )
    parser.add_argument(
        "--out", default=None,
        help="report path (default BENCH_engine.json; with --check, "
        "BENCH_engine.check.json so the gate never clobbers its own "
        "baseline)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="committed bench report to diff against (embedded in the "
        "output report; implied as BENCH_engine.json by --check)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5, metavar="FRAC",
        help="--check fails when a measured arm drops below "
        "(1 - FRAC) x its baseline runs/sec (default 0.5)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="regression gate: diff measured runs/sec against the baseline "
        f"report and assert the acceptance cell keeps {ACCEPTANCE_SPEEDUP}x",
    )
    parser.add_argument(
        "--sessions", type=int, default=1, metavar="N",
        help="repeat the whole measurement N times and keep each arm's "
        "best session (noise only ever slows a window down; how the "
        "committed figures are produced on shared hosts)",
    )
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error("--sessions must be >= 1")

    known = {name for name, *_ in CELLS} | set(COLUMNAR_STATE_CELLS)
    selected = known
    if args.cells is not None:
        selected = {name.strip() for name in args.cells.split(",") if name.strip()}
        if not selected:
            # An empty selection would measure nothing and turn --check
            # into a vacuous pass.
            parser.error(f"--cells selected no cells; known: {sorted(known)}")
        unknown = selected - known
        if unknown:
            parser.error(
                f"unknown cells {sorted(unknown)}; known: {sorted(known)}"
            )
    if args.check and args.baseline is None:
        args.baseline = "BENCH_engine.json"
    if args.out is None:
        # Only a full-cell measurement run defaults onto the committed
        # report; --check and --cells subsets must never clobber the very
        # baseline later --check runs gate against.
        partial = args.check or args.cells is not None
        args.out = "BENCH_engine.check.json" if partial else "BENCH_engine.json"
    baseline = load_baseline(args.baseline) if args.baseline else None

    best: Dict[tuple, Dict] = {}
    for session in range(args.sessions):
        for name, builder, n, byz, scenario in CELLS:
            if name not in selected:
                continue
            for engine in ("lockstep", "timed"):
                for observe in (OBSERVE_FULL, OBSERVE_METRICS):
                    sample = measure(
                        make_runner(builder, n, byz, engine, observe, scenario),
                        budget=args.budget,
                        seconds=args.seconds,
                    )
                    sample.update(cell=name, engine=engine, observe=observe)
                    key = (name, engine, observe)
                    rate = sample["runs_per_sec"] or 0
                    if key not in best or rate > (best[key]["runs_per_sec"] or 0):
                        best[key] = sample
                for backend in BACKENDS:
                    sample = measure_backend(
                        name, engine, backend,
                        budget=args.budget, seconds=args.seconds,
                    )
                    key = (name, engine, OBSERVE_METRICS, backend)
                    rate = sample["runs_per_sec"] or 0
                    if key not in best or rate > (best[key]["runs_per_sec"] or 0):
                        best[key] = sample
        for name in COLUMNAR_STATE_CELLS:
            if name not in selected:
                continue
            for backend in BACKENDS:
                sample = measure_backend(
                    name, "timed", backend,
                    budget=args.budget, seconds=args.seconds,
                )
                key = (name, "timed", OBSERVE_METRICS, backend)
                rate = sample["runs_per_sec"] or 0
                if key not in best or rate > (best[key]["runs_per_sec"] or 0):
                    best[key] = sample

    results: List[Dict] = []
    speedups: Dict[str, float] = {}
    for name, builder, n, byz, scenario in CELLS:
        if name not in selected:
            continue
        for engine in ("lockstep", "timed"):
            rates = {}
            for observe in (OBSERVE_FULL, OBSERVE_METRICS):
                sample = best[(name, engine, observe)]
                results.append(sample)
                rates[observe] = sample["runs_per_sec"]
            if rates[OBSERVE_FULL] and rates[OBSERVE_METRICS]:
                speedup = round(rates[OBSERVE_METRICS] / rates[OBSERVE_FULL], 2)
                speedups[f"{name}/{engine}"] = speedup
                print(
                    f"{name:22s} {engine:9s} "
                    f"full={rates[OBSERVE_FULL]:9.1f}/s "
                    f"metrics={rates[OBSERVE_METRICS]:9.1f}/s "
                    f"speedup={speedup:.2f}x"
                )
            backend_rates = {}
            for backend in BACKENDS:
                sample = best[(name, engine, OBSERVE_METRICS, backend)]
                results.append(sample)
                backend_rates[backend] = sample["runs_per_sec"]
            if backend_rates["scalar"] and backend_rates["batch"]:
                speedup = round(
                    backend_rates["batch"] / backend_rates["scalar"], 2
                )
                speedups[f"{name}/{engine}/batch"] = speedup
                print(
                    f"{name:22s} {engine:9s} "
                    f"scalar={backend_rates['scalar']:9.1f}/s "
                    f"batch={backend_rates['batch']:9.1f}/s "
                    f"speedup={speedup:.2f}x"
                )

    for name in COLUMNAR_STATE_CELLS:
        if name not in selected:
            continue
        backend_rates = {}
        for backend in BACKENDS:
            sample = best[(name, "timed", OBSERVE_METRICS, backend)]
            results.append(sample)
            backend_rates[backend] = sample["runs_per_sec"]
        if backend_rates["scalar"] and backend_rates["batch"]:
            speedup = round(
                backend_rates["batch"] / backend_rates["scalar"], 2
            )
            speedups[f"{name}/timed/batch"] = speedup
            tier = best[(name, "timed", OBSERVE_METRICS, "batch")].get(
                "tier", "?"
            )
            print(
                f"{name:22s} {'timed':9s} "
                f"scalar={backend_rates['scalar']:9.1f}/s "
                f"batch={backend_rates['batch']:9.1f}/s "
                f"speedup={speedup:.2f}x [{tier}]"
            )

    acceptance_key = f"{ACCEPTANCE_CELL}/lockstep"
    acceptance = {
        "cell": acceptance_key,
        "required_speedup": ACCEPTANCE_SPEEDUP,
        "measured_speedup": speedups.get(acceptance_key),
        "pass": (
            speedups.get(acceptance_key) is not None
            and speedups[acceptance_key] >= ACCEPTANCE_SPEEDUP
        ),
    }
    batch_key = f"{ACCEPTANCE_CELL}/lockstep/batch"
    batch_acceptance = {
        "cell": batch_key,
        "required_speedup": BATCH_ACCEPTANCE_SPEEDUP,
        "measured_speedup": speedups.get(batch_key),
        "pass": (
            speedups.get(batch_key) is not None
            and speedups[batch_key] >= BATCH_ACCEPTANCE_SPEEDUP
        ),
    }
    report = {
        "benchmark": "engine_throughput",
        "budget": args.budget,
        "seconds_per_arm": None if args.budget else args.seconds,
        "merged_sessions": args.sessions,
        "cells": results,
        "speedups": speedups,
        "acceptance": acceptance,
        "batch_acceptance": batch_acceptance,
    }
    if ACCEPTANCE_CELL in selected:
        report["profile"] = profile_breakdown(runs=args.budget or 5)

    regressions: List[str] = []
    if baseline is not None:
        # Before/after arms: every measured arm next to its committed figure.
        arms: Dict[str, Dict[str, float]] = {}
        cstate_arms: Dict[str, Dict] = {}
        for sample in results:
            rate = sample["runs_per_sec"]
            if not rate:
                continue
            key = arm_key(sample)
            entry = baseline.get(key)
            if entry is None:
                # A measured arm the baseline never recorded cannot be
                # gated; under --check that is a gate failure (refresh the
                # committed report), never a vacuous pass.
                if args.check:
                    regressions.append(f"{key}: no baseline entry")
                else:
                    print(
                        f"warning: no baseline entry for {key}",
                        file=sys.stderr,
                    )
                continue
            committed, committed_tier = entry
            arms[key] = {
                "baseline": committed,
                "measured": rate,
                "ratio": round(rate / committed, 2),
            }
            # A columnar-state arm diffed against a figure produced by a
            # different tier (or a pre-tier report that recorded none) is
            # the tier's acceptance measurement: it must *gain* 3x, not
            # merely avoid losing --tolerance.
            cstate = (
                sample.get("tier") == "columnar-state"
                and committed_tier != "columnar-state"
            )
            if cstate:
                ok = rate >= COLUMNAR_STATE_SPEEDUP * committed
                cstate_arms[key] = {
                    **arms[key],
                    "baseline_tier": committed_tier,
                    "required_speedup": COLUMNAR_STATE_SPEEDUP,
                    "pass": ok,
                }
                if args.check and not ok:
                    regressions.append(
                        f"{key}: {rate:.1f}/s < {COLUMNAR_STATE_SPEEDUP:g} x "
                        f"{committed:.1f}/s committed "
                        f"{committed_tier or 'pre-tier'} figure"
                    )
            elif rate < (1.0 - args.tolerance) * committed:
                regressions.append(
                    f"{key}: {rate:.1f}/s < (1 - {args.tolerance:g}) x "
                    f"{committed:.1f}/s committed"
                )
        report["baseline"] = {"path": args.baseline, "arms": arms}
        if cstate_arms:
            report["columnar_state_acceptance"] = {
                "required_speedup": COLUMNAR_STATE_SPEEDUP,
                "arms": cstate_arms,
                "pass": all(a["pass"] for a in cstate_arms.values()),
            }

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}; acceptance: {acceptance}")

    if args.check:
        for line in regressions:
            print(f"REGRESSION {line}", file=sys.stderr)
        if regressions:
            return 1
        # A 1-run --budget smoke has no meaningful rate; only time-window
        # measurements gate on the acceptance speedup.
        if (
            args.budget is None
            and acceptance["measured_speedup"] is not None
            and not acceptance["pass"]
        ):
            print("acceptance speedup not reached", file=sys.stderr)
            return 1
        if (
            args.budget is None
            and batch_acceptance["measured_speedup"] is not None
            and not batch_acceptance["pass"]
        ):
            print("batch acceptance speedup not reached", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
