"""Experiment A6 — Ben-Or randomized consensus (Section 6).

Measured claims: termination with probability 1 under a Prel-only adversary
(no good periods ever), in both the benign (TD = f + 1, n > 2f) and the
Byzantine (TD = 3b + 1, n > 4b) variants; agreement in every run; and the
Section-6 statement that class-3 parameter sets cannot be randomized.
"""

import statistics

import pytest

from repro.algorithms import build_ben_or
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.randomized import (
    check_randomizable,
    run_randomized_consensus,
)
from repro.core.types import FaultModel


def test_benign_ben_or_terminates(benchmark):
    spec = build_ben_or(3)

    def run(seed=0):
        return run_randomized_consensus(
            spec.parameters, {0: 1, 1: 0, 2: 1}, seed=seed, max_phases=400
        )

    outcome = benchmark(run)
    assert outcome.agreement_holds
    assert outcome.all_correct_decided


def test_byzantine_ben_or_terminates(benchmark):
    spec = build_ben_or(8, b=1)
    values = {pid: pid % 2 for pid in range(7)}

    def run(seed=1):
        return run_randomized_consensus(
            spec.parameters,
            values,
            seed=seed,
            byzantine={7: "equivocator"},
            max_phases=400,
        )

    outcome = benchmark(run)
    assert outcome.agreement_holds
    assert outcome.all_correct_decided


def test_phase_distribution_is_geometric_like(report):
    """Split inputs at n = 3: phases-to-decide spread over several values
    with a decreasing tail (the coin at work), every seed agreeing."""
    spec = build_ben_or(3)
    phases = []
    for seed in range(40):
        outcome = run_randomized_consensus(
            spec.parameters, {0: 1, 1: 0, 2: 1}, seed=seed, max_phases=400
        )
        assert outcome.agreement_holds, seed
        assert outcome.all_correct_decided, seed
        phases.append(outcome.phases_to_last_decision)
    report(
        "Ben-Or phases to decide over 40 seeds: "
        f"mean={statistics.mean(phases):.2f}, max={max(phases)}"
    )
    assert min(phases) == 1
    assert max(phases) > 1          # the adversary does force retries
    assert statistics.mean(phases) < 10  # …but expectation stays small


def test_unanimous_inputs_decide_immediately():
    """Unanimity: all-same inputs decide in phase 1 regardless of the coin."""
    spec = build_ben_or(3)
    for seed in range(10):
        outcome = run_randomized_consensus(
            spec.parameters, {0: 1, 1: 1, 2: 1}, seed=seed
        )
        assert outcome.decided_values == {1}
        assert outcome.phases_to_last_decision == 1


def test_class3_cannot_be_randomized():
    """Section 6: Algorithm 4 fails the strengthened FLV-liveness."""
    params = build_class_parameters(
        AlgorithmClass.CLASS_3, FaultModel(4, 1, 0)
    )
    assert not check_randomizable(params)
    with pytest.raises(ValueError):
        run_randomized_consensus(params, {pid: 0 for pid in range(4)})


def test_classes_1_and_2_can_be_randomized():
    for cls, model in (
        (AlgorithmClass.CLASS_1, FaultModel(6, 1, 0)),
        (AlgorithmClass.CLASS_2, FaultModel(5, 1, 0)),
    ):
        params = build_class_parameters(cls, model)
        assert check_randomizable(params)
