"""Experiment F1 — Figure 1: FLV for class 1 at n=6, b=1, f=0, TD=5.

The figure illustrates why ``2(n − TD + b)`` is the ``?`` bar: with v1
locked, TD − b = 4 honest processes vote v1 and at most n − TD + b = 2
messages can differ, so any vector of more than 4 messages exposes v1.
We regenerate the scenario across every subset size and benchmark the
function on the figure's full vector.
"""

import itertools

from repro.core.flv_class1 import FLVClass1
from repro.core.types import FaultModel, SelectionMessage
from repro.utils.sentinels import NULL_VALUE

MODEL = FaultModel(6, 1, 0)
TD = 5


def msg(vote):
    return SelectionMessage(vote, 0, frozenset({(vote, 0)}), frozenset())


def figure1_pool():
    """TD − b = 4 locked votes v1, n − TD + b = 2 stray votes v2."""
    return [msg("v1")] * 4 + [msg("v2")] * 2


def test_figure1_locked_value_always_safe():
    flv = FLVClass1(MODEL, TD)
    pool = figure1_pool()
    for size in range(len(pool) + 1):
        for subset in itertools.combinations(range(len(pool)), size):
            vector = [pool[i] for i in subset]
            result = flv.evaluate(vector)
            # FLV-agreement: only v1 or null, never v2 and never ?.
            assert result in ("v1", NULL_VALUE), (size, result)
            # The figure's bar: > 2(n − TD + b) = 4 messages expose v1.
            if len(vector) > 4:
                assert result == "v1"


def test_figure1_threshold_is_tight():
    """One message fewer than the bar may legitimately answer null."""
    flv = FLVClass1(MODEL, TD)
    vector = [msg("v1")] * 2 + [msg("v2")] * 2  # 4 = 2(n − TD + b)
    assert flv.evaluate(vector) is NULL_VALUE


def test_figure1_bench(benchmark):
    flv = FLVClass1(MODEL, TD)
    vector = figure1_pool()
    result = benchmark(flv.evaluate, vector)
    assert result == "v1"
