"""Experiment X5 — footnote 10: classes ↔ Byzantine quorum families.

Measured claims: the decision thresholds of the three classes are exactly
the minimal quorum sizes of the opaque / masking / dissemination families at
the canonical configurations, and the availability frontiers match the
Table-1 ``n`` bounds.
"""

import pytest

from repro.core.classification import AlgorithmClass
from repro.core.flv_class2 import mqb_threshold
from repro.core.flv_variants import fab_paxos_threshold, pbft_threshold
from repro.core.types import FaultModel
from repro.quorums import (
    DisseminationQuorumSystem,
    MaskingQuorumSystem,
    OpaqueQuorumSystem,
    quorum_system_for_class,
)


@pytest.mark.parametrize("b", [1, 2, 3])
def test_threshold_equals_quorum_size_at_minimal_n(b, report):
    rows = []
    for cls, n, td_fn in (
        (AlgorithmClass.CLASS_1, 5 * b + 1, fab_paxos_threshold),
        (AlgorithmClass.CLASS_2, 4 * b + 1, mqb_threshold),
        (AlgorithmClass.CLASS_3, 3 * b + 1, pbft_threshold),
    ):
        model = FaultModel(n, b, 0)
        qs = quorum_system_for_class(cls, model)
        rows.append((cls.name, qs.name, td_fn(model), qs.min_quorum_size()))
        assert td_fn(model) == qs.min_quorum_size()
    report(f"b={b}: " + ", ".join(f"{c}≡{q}(TD={t}={m})" for c, q, t, m in rows))


@pytest.mark.parametrize(
    "family,factor",
    [
        (DisseminationQuorumSystem, 3),
        (MaskingQuorumSystem, 4),
        (OpaqueQuorumSystem, 5),
    ],
)
@pytest.mark.parametrize("b", [1, 2])
def test_availability_frontier_matches_table1(family, factor, b):
    """Family availability begins exactly at n = factor·b + 1."""
    assert family(FaultModel(factor * b + 1, b, 0)).is_available()
    assert not family(FaultModel(factor * b, b, 0)).is_available()


def test_intersection_property_ladder(benchmark):
    """Opaque ⊂ masking ⊂ dissemination at the respective minimal sizes."""

    def check():
        results = []
        opaque = OpaqueQuorumSystem(FaultModel(6, 1, 0))
        masking = MaskingQuorumSystem(FaultModel(5, 1, 0))
        dissemination = DisseminationQuorumSystem(FaultModel(4, 1, 0))
        results.append(opaque.intersection_is_opaque())
        results.append(opaque.intersection_masks_faults())
        results.append(masking.intersection_masks_faults())
        results.append(not masking.intersection_is_opaque())
        results.append(dissemination.intersection_contains_correct())
        results.append(not dissemination.intersection_masks_faults())
        return results

    assert all(benchmark(check))


def test_enumerated_quorums_confirm_arithmetic():
    """Brute-force over all minimal quorums at small n."""
    import itertools

    qs = DisseminationQuorumSystem(FaultModel(4, 1, 0))
    quorums = list(qs.minimal_quorums())
    for q1, q2 in itertools.combinations(quorums, 2):
        assert len(q1 & q2) >= qs.model.b + 1
