"""Discrete-event timed execution (partial synchrony with a GST).

The lockstep discipline measures progress in *rounds*; this package
measures it in *simulated time*.  Processes still run the round model, but
rounds are paced by a round duration Δ and messages take sampled latencies;
before the global stabilization time (GST) latencies are unbounded (the
asynchronous period of [7]), after GST they are bounded by δ < Δ, so rounds
become good.  Execution goes through the unified kernel
(:mod:`repro.engine`) under a
:class:`~repro.engine.scheduler.TimedScheduler`; this package provides the
network/latency models and the :func:`run_timed_consensus` compatibility
wrapper, which with ``observe="full"`` now also reports the execution trace
and invariant results.
"""

from repro.eventsim.events import EventQueue, TimedEvent
from repro.eventsim.network import (
    FixedLatency,
    LatencyModel,
    PartialSynchronyNetwork,
    UniformLatency,
)
from repro.eventsim.runtime import TimedOutcome, run_timed_consensus

__all__ = [
    "EventQueue",
    "FixedLatency",
    "LatencyModel",
    "PartialSynchronyNetwork",
    "TimedEvent",
    "TimedOutcome",
    "UniformLatency",
    "run_timed_consensus",
]
