"""A minimal discrete-event queue (heap-ordered, deterministic tie-break).

Event-driven simulations that genuinely need ordered arrival use this
directly.  The timed round scheduler no longer does: within one round each
edge carries at most one message, so delivery is order-independent and the
fast path compares deadlines per message instead (see
``repro.engine.scheduler``; ``REPRO_SLOW_SCHEDULER=1`` restores the heap
path, which still delivers through this queue).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True, order=True)
class TimedEvent:
    """An event at simulated ``time``; ``seq`` makes ordering total."""

    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """Priority queue of :class:`TimedEvent` with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[TimedEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> TimedEvent:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = TimedEvent(time=time, seq=next(self._counter), payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> TimedEvent:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def clear(self) -> int:
        """Drop every pending event, returning how many were dropped.

        Used by communication-closed rounds to discard late messages in one
        O(1) step (the heap invariant need not be maintained event by event).
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
