"""Latency models and the partially synchronous timed network.

Before GST, each message independently suffers either an unbounded extra
delay (with probability ``pre_gst_delay_prob``) or the normal sampled
latency; after GST every latency sample is clamped to the synchronous bound
δ.  This is the classic Dwork-Lynch-Stockmeyer partial synchrony shape the
paper's model (good/bad periods) abstracts.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.types import ProcessId
from repro.utils.accel import block_stream

__all__ = [
    "FixedLatency",
    "LatencyModel",
    "NetworkSpec",
    "PartialSynchronyNetwork",
    "UniformLatency",
]


#: A message edge for batched sampling: tuples whose first two items are
#: ``(sender, dest)`` — longer tuples are allowed and the extra items ignored,
#: so callers can pass their own ``(sender, dest, payload)`` records directly.
Edge = Tuple[ProcessId, ProcessId]


class LatencyModel(abc.ABC):
    """Samples one-way message latencies."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, sender: ProcessId, dest: ProcessId) -> float:
        """A latency in simulated time units (must be positive)."""

    def sample_many(
        self, rng: random.Random, edges: Sequence[Edge]
    ) -> List[float]:
        """One latency per edge, drawn in sequence order.

        Draw-for-draw identical to calling :meth:`sample` once per edge:
        overrides may hoist per-call overhead out of the loop but must
        consume the RNG stream in exactly the same order, or seeded runs
        diverge between the batched and per-message paths.
        """
        sample = self.sample
        return [sample(rng, edge[0], edge[1]) for edge in edges]

    def sample_fan(
        self, rng: random.Random, sender: ProcessId, dests: Sequence[ProcessId]
    ) -> List[float]:
        """One latency per destination of a single sender's fan-out.

        Same RNG-stream contract as :meth:`sample_many`; ``dests`` may be
        any sized iterable of destination ids (a dict of outbound messages
        iterates its keys, so schedulers pass it directly).
        """
        sample = self.sample
        return [sample(rng, sender, dest) for dest in dests]

    def sample_matrix(
        self, rngs: Sequence[random.Random], edges: Sequence[Edge]
    ) -> List[List[float]]:
        """A (runs × edges) latency matrix, one row per RNG stream.

        Row *b* is exactly ``sample_many(rngs[b], edges)`` — each run keeps
        its own independent stream (the per-run RNG contract), so the batch
        backend vectorizes *within* a row, never across rows.  Overrides
        inherit :meth:`sample_many`'s draw-for-draw stream contract.
        """
        return [self.sample_many(rng, edges) for rng in rngs]

    def max_latency(self) -> Optional[float]:
        """An upper bound on every sample, or ``None`` if unbounded.

        Lets the network skip the post-GST δ-clamp entirely when the model
        cannot exceed δ anyway.
        """
        return None


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant latency."""

    latency: float = 1.0

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError(
                f"latency must be positive, got {self.latency}"
            )

    def sample(self, rng: random.Random, sender: ProcessId, dest: ProcessId) -> float:
        return self.latency

    def sample_many(
        self, rng: random.Random, edges: Sequence[Edge]
    ) -> List[float]:
        return [self.latency] * len(edges)

    def sample_fan(
        self, rng: random.Random, sender: ProcessId, dests: Sequence[ProcessId]
    ) -> List[float]:
        return [self.latency] * len(dests)

    def max_latency(self) -> float:
        return self.latency


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform latency in ``[low, high]``."""

    low: float = 0.5
    high: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError(f"need 0 < low ≤ high, got [{self.low}, {self.high}]")

    def sample(self, rng: random.Random, sender: ProcessId, dest: ProcessId) -> float:
        return rng.uniform(self.low, self.high)

    # The batched draws inline ``Random.uniform``'s exact expression
    # ``a + (b - a) * random()`` — bit-identical results, one Python call
    # fewer per message (test_sample_round_matches_per_message_stream pins
    # the equivalence draw for draw).  When the stream is a block-capable
    # BlockRng the whole batch is one array op: float64 ``low + span * u``
    # is the same IEEE expression per element, and ``.tolist()`` hands back
    # plain Python floats so downstream arithmetic and JSON never see numpy
    # scalars.

    def sample_many(
        self, rng: random.Random, edges: Sequence[Edge]
    ) -> List[float]:
        low, span = self.low, self.high - self.low
        blk = block_stream(rng)
        if blk is not None:
            return (low + span * blk.block(len(edges))).tolist()
        rand = rng.random
        return [low + span * rand() for _ in edges]

    def sample_fan(
        self, rng: random.Random, sender: ProcessId, dests: Sequence[ProcessId]
    ) -> List[float]:
        low, span = self.low, self.high - self.low
        blk = block_stream(rng)
        if blk is not None:
            return (low + span * blk.block(len(dests))).tolist()
        rand = rng.random
        return [low + span * rand() for _ in dests]

    def max_latency(self) -> float:
        return self.high


class PartialSynchronyNetwork:
    """Latency assignment under partial synchrony with a GST.

    * ``t < gst``: with probability ``pre_gst_delay_prob`` the message is
      delayed by ``chaos_factor ×`` the sampled latency (typically pushing it
      past its round deadline — the round-model equivalent of a loss);
    * ``t ≥ gst``: the sampled latency is clamped to ``delta`` (the
      synchronous bound).
    """

    def __init__(
        self,
        latency_model: LatencyModel,
        *,
        gst: float = 0.0,
        delta: float = 2.0,
        pre_gst_delay_prob: float = 0.5,
        chaos_factor: float = 50.0,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        if not 0.0 <= pre_gst_delay_prob <= 1.0:
            raise ValueError("pre_gst_delay_prob must be in [0, 1]")
        self._latency = latency_model
        self.gst = gst
        self.delta = delta
        self._delay_prob = pre_gst_delay_prob
        self._chaos = chaos_factor
        self._rng = rng if rng is not None else random.Random(seed)
        # The model's sample bound (None if unbounded); a frozen-dataclass
        # property, so cached once.  δ stays a per-call read: ``delta`` is
        # public and Δ-sensitivity sweeps may retune it between runs.
        self._max_latency = latency_model.max_latency()

    @property
    def _clamp_free(self) -> bool:
        """True when every sample is already ≤ δ, making the post-GST
        clamp a no-op the batched paths skip (min(x, δ) == x always)."""
        return self._max_latency is not None and self._max_latency <= self.delta

    def reseed(self, seed: int) -> None:
        """Reset the latency RNG to a fresh stream derived from ``seed``.

        Campaign workers call this with per-run derived seeds so that no two
        runs — and no two worker processes — ever share RNG state.
        """
        self._rng = random.Random(seed)

    def transit_time(
        self, send_time: float, sender: ProcessId, dest: ProcessId
    ) -> float:
        """The latency this particular message experiences."""
        base = self._latency.sample(self._rng, sender, dest)
        if send_time >= self.gst:
            return min(base, self.delta)
        if self._rng.random() < self._delay_prob:
            return base * self._chaos
        return base

    def constant_transit(self, send_time: float) -> Optional[float]:
        """The transit every message sent at ``send_time`` experiences, when
        that is one constant requiring zero RNG draws; ``None`` otherwise.

        Only a post-GST :class:`FixedLatency` (the exact class, not a
        subclass that might consume randomness) qualifies: its ``sample``
        never touches the stream, so short-circuiting it leaves the RNG
        state — and therefore every later draw of the run — untouched.
        """
        if send_time >= self.gst and type(self._latency) is FixedLatency:
            return min(self._latency.latency, self.delta)
        return None

    def sample_round(
        self, send_time: float, edges: Sequence[Edge]
    ) -> List[float]:
        """Transit times for one round's send step, batched over ``edges``.

        Same distribution and same RNG stream as calling
        :meth:`transit_time` once per edge in sequence order — the GST
        branch and the latency-model dispatch are hoisted out of the
        per-message loop instead.  ``edges`` holds tuples whose first two
        items are ``(sender, dest)``; extra items are ignored, so the timed
        scheduler passes its ``(sender, dest, payload)`` records directly.
        """
        if send_time >= self.gst:
            samples = self._latency.sample_many(self._rng, edges)
            if self._clamp_free:
                return samples
            delta = self.delta
            return [base if base <= delta else delta for base in samples]
        # Pre-GST the chaos coin interleaves with the latency draw message
        # by message; batching the bases first would reorder the stream.
        transits = self._pre_gst_block(len(edges))
        if transits is not None:
            return transits
        rng = self._rng
        sample = self._latency.sample
        rand = rng.random
        prob = self._delay_prob
        chaos = self._chaos
        transits = []
        append = transits.append
        for edge in edges:
            base = sample(rng, edge[0], edge[1])
            append(base * chaos if rand() < prob else base)
        return transits

    def sample_fan(
        self, send_time: float, sender: ProcessId, dests: Sequence[ProcessId]
    ) -> List[float]:
        """Transit times for one sender's fan-out, batched over ``dests``.

        The per-sender sibling of :meth:`sample_round`, with the same
        stream contract; the timed scheduler's filter-free hot loop calls
        it with each sender's outbound message dict (iterating a dict
        yields its destination keys), avoiding any intermediate edge list.
        """
        if send_time >= self.gst:
            samples = self._latency.sample_fan(self._rng, sender, dests)
            if self._clamp_free:
                return samples
            delta = self.delta
            return [base if base <= delta else delta for base in samples]
        transits = self._pre_gst_block(len(dests))
        if transits is not None:
            return transits
        rng = self._rng
        sample = self._latency.sample
        rand = rng.random
        prob = self._delay_prob
        chaos = self._chaos
        transits = []
        append = transits.append
        for dest in dests:
            base = sample(rng, sender, dest)
            append(base * chaos if rand() < prob else base)
        return transits

    def _pre_gst_block(self, count: int) -> Optional[List[float]]:
        """Pre-GST transits via bulk draws, or ``None`` for the scalar loop.

        Only the two built-in latency models have a known draw pattern the
        interleaved (base, coin) stream can be reconstructed from: uniform
        consumes two draws per message, fixed consumes only the coin.  Any
        other model — or a non-block RNG — falls back to the scalar loop.
        The array expressions mirror the scalar branch op for op
        (``low + span * u`` then a selective ``* chaos``), so results are
        bit-identical; ``.tolist()`` returns plain Python floats.
        """
        blk = block_stream(self._rng)
        if blk is None:
            return None
        prob = self._delay_prob
        chaos = self._chaos
        latency = self._latency
        if type(latency) is UniformLatency:
            draws = blk.block(2 * count)
            bases = latency.low + (latency.high - latency.low) * draws[0::2]
            bases[draws[1::2] < prob] *= chaos
            return bases.tolist()
        if type(latency) is FixedLatency:
            base = latency.latency
            delayed = base * chaos
            return [
                delayed if coin < prob else base
                for coin in blk.block(count).tolist()
            ]
        return None


@dataclass(frozen=True)
class NetworkSpec:
    """Declarative timed-network conditions (ignored by the lockstep engine).

    ``kind`` selects the latency model: ``"uniform"`` samples in
    ``[low, high]``; ``"fixed"`` always takes ``low``.  The remaining fields
    mirror :class:`PartialSynchronyNetwork`.  Scenario and campaign specs
    embed this object; :meth:`build` instantiates the network with a per-run
    RNG stream.
    """

    kind: str = "uniform"
    low: float = 0.5
    high: float = 2.0
    gst: float = 0.0
    delta: float = 2.0
    pre_gst_delay_prob: float = 0.5
    chaos_factor: float = 50.0
    round_duration: float = 2.5

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "fixed"):
            raise ValueError(f"unknown latency kind {self.kind!r}")
        # Validate the latency parameters up front, exactly as building the
        # model would: LatencyModel.sample promises positive latencies.
        if self.kind == "fixed":
            if self.low <= 0:
                raise ValueError(
                    f"fixed latency must be positive, got {self.low}"
                )
        elif not 0 < self.low <= self.high:
            raise ValueError(
                f"need 0 < low ≤ high, got [{self.low}, {self.high}]"
            )
        if self.round_duration <= 0:
            raise ValueError("round_duration must be positive")

    def build(
        self, seed: int, *, rng: Optional[random.Random] = None
    ) -> PartialSynchronyNetwork:
        """Instantiate the timed network with a per-run RNG stream.

        ``rng`` overrides the ``random.Random(seed)`` stream with a
        caller-supplied one — the batch backend passes a block-capable
        stream seeded identically, keeping draw order byte-compatible.
        """
        if self.kind == "fixed":
            latency = FixedLatency(self.low)
        else:
            latency = UniformLatency(self.low, self.high)
        return PartialSynchronyNetwork(
            latency,
            gst=self.gst,
            delta=self.delta,
            pre_gst_delay_prob=self.pre_gst_delay_prob,
            chaos_factor=self.chaos_factor,
            seed=seed,
            rng=rng,
        )

    def describe(self) -> str:
        # Every field appears: two distinct specs must never alias, or they
        # would share derived seeds and merge into one aggregation cell.
        if self.kind == "fixed":
            base = f"fixed[{self.low:g}]"
        else:
            base = f"uniform[{self.low:g},{self.high:g}]"
        return (
            f"{base} gst={self.gst:g} δ={self.delta:g} "
            f"Δ={self.round_duration:g} p={self.pre_gst_delay_prob:g} "
            f"chaos={self.chaos_factor:g}"
        )
