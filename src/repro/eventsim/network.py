"""Latency models and the partially synchronous timed network.

Before GST, each message independently suffers either an unbounded extra
delay (with probability ``pre_gst_delay_prob``) or the normal sampled
latency; after GST every latency sample is clamped to the synchronous bound
δ.  This is the classic Dwork-Lynch-Stockmeyer partial synchrony shape the
paper's model (good/bad periods) abstracts.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.types import ProcessId

__all__ = [
    "FixedLatency",
    "LatencyModel",
    "NetworkSpec",
    "PartialSynchronyNetwork",
    "UniformLatency",
]


class LatencyModel(abc.ABC):
    """Samples one-way message latencies."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, sender: ProcessId, dest: ProcessId) -> float:
        """A latency in simulated time units (must be positive)."""


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant latency."""

    latency: float = 1.0

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError(
                f"latency must be positive, got {self.latency}"
            )

    def sample(self, rng: random.Random, sender: ProcessId, dest: ProcessId) -> float:
        return self.latency


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform latency in ``[low, high]``."""

    low: float = 0.5
    high: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError(f"need 0 < low ≤ high, got [{self.low}, {self.high}]")

    def sample(self, rng: random.Random, sender: ProcessId, dest: ProcessId) -> float:
        return rng.uniform(self.low, self.high)


class PartialSynchronyNetwork:
    """Latency assignment under partial synchrony with a GST.

    * ``t < gst``: with probability ``pre_gst_delay_prob`` the message is
      delayed by ``chaos_factor ×`` the sampled latency (typically pushing it
      past its round deadline — the round-model equivalent of a loss);
    * ``t ≥ gst``: the sampled latency is clamped to ``delta`` (the
      synchronous bound).
    """

    def __init__(
        self,
        latency_model: LatencyModel,
        *,
        gst: float = 0.0,
        delta: float = 2.0,
        pre_gst_delay_prob: float = 0.5,
        chaos_factor: float = 50.0,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        if not 0.0 <= pre_gst_delay_prob <= 1.0:
            raise ValueError("pre_gst_delay_prob must be in [0, 1]")
        self._latency = latency_model
        self.gst = gst
        self.delta = delta
        self._delay_prob = pre_gst_delay_prob
        self._chaos = chaos_factor
        self._rng = rng if rng is not None else random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Reset the latency RNG to a fresh stream derived from ``seed``.

        Campaign workers call this with per-run derived seeds so that no two
        runs — and no two worker processes — ever share RNG state.
        """
        self._rng = random.Random(seed)

    def transit_time(
        self, send_time: float, sender: ProcessId, dest: ProcessId
    ) -> float:
        """The latency this particular message experiences."""
        base = self._latency.sample(self._rng, sender, dest)
        if send_time >= self.gst:
            return min(base, self.delta)
        if self._rng.random() < self._delay_prob:
            return base * self._chaos
        return base


@dataclass(frozen=True)
class NetworkSpec:
    """Declarative timed-network conditions (ignored by the lockstep engine).

    ``kind`` selects the latency model: ``"uniform"`` samples in
    ``[low, high]``; ``"fixed"`` always takes ``low``.  The remaining fields
    mirror :class:`PartialSynchronyNetwork`.  Scenario and campaign specs
    embed this object; :meth:`build` instantiates the network with a per-run
    RNG stream.
    """

    kind: str = "uniform"
    low: float = 0.5
    high: float = 2.0
    gst: float = 0.0
    delta: float = 2.0
    pre_gst_delay_prob: float = 0.5
    chaos_factor: float = 50.0
    round_duration: float = 2.5

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "fixed"):
            raise ValueError(f"unknown latency kind {self.kind!r}")
        # Validate the latency parameters up front, exactly as building the
        # model would: LatencyModel.sample promises positive latencies.
        if self.kind == "fixed":
            if self.low <= 0:
                raise ValueError(
                    f"fixed latency must be positive, got {self.low}"
                )
        elif not 0 < self.low <= self.high:
            raise ValueError(
                f"need 0 < low ≤ high, got [{self.low}, {self.high}]"
            )
        if self.round_duration <= 0:
            raise ValueError("round_duration must be positive")

    def build(self, seed: int) -> PartialSynchronyNetwork:
        """Instantiate the timed network with a per-run RNG stream."""
        if self.kind == "fixed":
            latency = FixedLatency(self.low)
        else:
            latency = UniformLatency(self.low, self.high)
        return PartialSynchronyNetwork(
            latency,
            gst=self.gst,
            delta=self.delta,
            pre_gst_delay_prob=self.pre_gst_delay_prob,
            chaos_factor=self.chaos_factor,
            seed=seed,
        )

    def describe(self) -> str:
        # Every field appears: two distinct specs must never alias, or they
        # would share derived seeds and merge into one aggregation cell.
        if self.kind == "fixed":
            base = f"fixed[{self.low:g}]"
        else:
            base = f"uniform[{self.low:g},{self.high:g}]"
        return (
            f"{base} gst={self.gst:g} δ={self.delta:g} "
            f"Δ={self.round_duration:g} p={self.pre_gst_delay_prob:g} "
            f"chaos={self.chaos_factor:g}"
        )
