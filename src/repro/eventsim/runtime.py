"""Timed execution of the generic consensus algorithm.

Rounds are paced by a common round duration Δ: round ``r`` spans simulated
time ``[(r−1)·Δ, r·Δ)``.  Messages sent at a round's start arrive after a
network-sampled latency and are delivered only if they arrive before the
round's deadline (rounds are communication-closed — late messages are
discarded, exactly as an implementation over the partial synchrony model
does [7]).  Before the GST latencies are unbounded, so rounds starve; after
GST (with ``Δ ≥ δ``) every message meets its deadline and rounds are good.

:func:`run_timed_consensus` is a thin compatibility wrapper over the
unified execution kernel (:mod:`repro.engine`) with a
:class:`~repro.engine.scheduler.TimedScheduler`, which owns the Δ-paced
deadline delivery and the selection-round equivocation canonicalization
(model the cost of an implemented ``Pcons`` by inflating
``selection_round_factor`` — e.g. 3 for the authenticated 2-extra-rounds
variant is ``1 + 2``).

The runtime reports *time-to-decision*, the metric the lockstep engine
cannot produce, and powers ``benchmarks/bench_decision_latency.py``.  With
``observe="full"`` it now also returns the execution trace (per-round
predicate evaluations) and an invariant report — previously exclusive to
the lockstep path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.analysis.trace import ExecutionTrace
from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.types import ProcessId, Value
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_METRICS, run_instance
from repro.engine.scheduler import TimedScheduler
from repro.eventsim.network import PartialSynchronyNetwork
from repro.faults.crash import CrashSchedule
from repro.faults.registry import ByzantineSpec
from repro.rounds.base import RunContext


@dataclass
class TimedOutcome:
    """Result of a timed run."""

    parameters: ConsensusParameters
    #: pid → simulated time of its decision.
    decision_times: Dict[ProcessId, float]
    #: pid → decided value.
    decided_values: Dict[ProcessId, Value]
    rounds_executed: int
    simulated_time: float
    messages_sent: int
    messages_delivered: int
    #: messages discarded because they missed their round deadline.
    messages_dropped: int = 0
    #: Execution trace with per-round predicates (``observe="full"`` only).
    trace: Optional[ExecutionTrace] = None
    #: Honest proposals (for the invariant report).
    initial_values: Dict[ProcessId, Value] = field(default_factory=dict)
    #: Fault bookkeeping of the run (for the invariant report).
    context: Optional[RunContext] = None

    @property
    def agreement_holds(self) -> bool:
        return len(set(self.decided_values.values())) <= 1

    @property
    def all_decided(self) -> bool:
        """True when every correct process of the run has decided.

        Correct means honest and not crashed *in this execution*, read from
        the run's ``context`` (processes that decided before crashing stay
        counted in ``decision_times`` but are no longer required) — the
        same reference set :meth:`invariant_report`'s termination column
        uses.  Note a process a crash schedule dooms for a round the run
        never reached counts as correct here, while the kernel's
        early-stop condition excludes it; a run can therefore stop
        "successfully" with ``all_decided`` still false.  A hand-built
        outcome without a context falls back to the historical "anyone
        decided" reading, since no reference set exists;
        :func:`run_timed_consensus` always attaches the context.
        """
        if self.context is None:
            return bool(self.decision_times)
        return self.context.correct <= self.decision_times.keys()

    @property
    def last_decision_time(self) -> Optional[float]:
        return max(self.decision_times.values()) if self.decision_times else None

    @property
    def first_decision_time(self) -> Optional[float]:
        return min(self.decision_times.values()) if self.decision_times else None

    def invariant_report(self) -> Mapping[str, bool]:
        """Boolean summary of agreement/validity/unanimity/termination."""
        from repro.analysis.invariants import evaluate_properties

        if self.context is None:
            raise ValueError(
                "this TimedOutcome carries no run context; build it via "
                "run_timed_consensus to get an invariant report"
            )
        return evaluate_properties(
            decided_values=self.decided_values,
            initial_values=self.initial_values,
            byzantine=self.context.byzantine,
            correct=self.context.correct,
        )


def run_timed_consensus(
    parameters: ConsensusParameters,
    initial_values: Mapping[ProcessId, Value],
    network: PartialSynchronyNetwork,
    *,
    round_duration: float = 2.5,
    selection_round_factor: float = 1.0,
    config: Optional[GenericConsensusConfig] = None,
    byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
    max_phases: int = 40,
    seed: Optional[int] = None,
    observe: str = OBSERVE_METRICS,
    crash_schedule: Optional[CrashSchedule] = None,
    record_snapshots: bool = False,
) -> TimedOutcome:
    """Run one consensus instance under the timed partial-synchrony network.

    ``selection_round_factor`` stretches selection rounds (to model the
    extra micro-rounds of an implemented ``Pcons``).  A non-``None`` ``seed``
    reseeds ``network`` before the run, making the whole timed execution a
    pure function of its arguments — campaign workers rely on this to stay
    deterministic without sharing any global RNG state.  ``observe="full"``
    additionally records the execution trace (default ``"metrics"`` skips
    all per-round record construction — the campaign hot path);
    ``record_snapshots`` adds per-round state snapshots to that trace, the
    same flag :func:`repro.core.run.run_consensus` takes.
    """
    if seed is not None:
        network.reseed(seed)
    instance = build_instance(
        parameters, initial_values, config=config, byzantine=byzantine
    )
    outcome = run_instance(
        instance,
        TimedScheduler(
            network,
            round_duration=round_duration,
            selection_round_factor=selection_round_factor,
        ),
        max_phases=max_phases,
        observe=observe,
        crash_schedule=crash_schedule,
        record_snapshots=record_snapshots,
    )
    return TimedOutcome(
        parameters=parameters,
        decision_times=outcome.decision_times,
        decided_values=outcome.decided_value_by_process,
        rounds_executed=outcome.rounds_executed,
        simulated_time=outcome.simulated_time or 0.0,
        messages_sent=outcome.messages_sent,
        messages_delivered=outcome.messages_delivered,
        messages_dropped=outcome.messages_dropped,
        trace=outcome.trace,
        initial_values=instance.initial_values,
        context=instance.context,
    )
