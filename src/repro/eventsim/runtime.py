"""Timed execution of the generic consensus algorithm.

Rounds are paced by a common round duration Δ: round ``r`` spans simulated
time ``[(r−1)·Δ, r·Δ)``.  Messages sent at a round's start arrive after a
network-sampled latency and are delivered only if they arrive before the
round's deadline (rounds are communication-closed — late messages are
discarded, exactly as an implementation over the partial synchrony model
does [7]).  Before the GST latencies are unbounded, so rounds starve; after
GST (with ``Δ ≥ δ``) every message meets its deadline and rounds are good.

Byzantine equivocation in selection rounds is canonicalized (one payload per
sender, as the ``Pcons`` implementations of Section 2.2 would enforce); the
cost of those implementations can be modelled by inflating
``selection_round_factor`` — e.g. 3 for the authenticated 2-extra-rounds
variant is ``1 + 2``.

The runtime reports *time-to-decision*, the metric the lockstep engine
cannot produce, and powers ``benchmarks/bench_decision_latency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.run import ByzantineSpec, _build_byzantine
from repro.core.types import ProcessId, RoundKind, Value
from repro.eventsim.events import EventQueue
from repro.eventsim.network import PartialSynchronyNetwork
from repro.rounds.base import RoundProcess, RunContext


@dataclass
class TimedOutcome:
    """Result of a timed run."""

    parameters: ConsensusParameters
    #: pid → simulated time of its decision.
    decision_times: Dict[ProcessId, float]
    #: pid → decided value.
    decided_values: Dict[ProcessId, Value]
    rounds_executed: int
    simulated_time: float
    messages_sent: int
    messages_delivered: int
    #: messages discarded because they missed their round deadline.
    messages_dropped: int = 0

    @property
    def agreement_holds(self) -> bool:
        return len(set(self.decided_values.values())) <= 1

    @property
    def all_decided(self) -> bool:
        return bool(self.decision_times)

    @property
    def last_decision_time(self) -> Optional[float]:
        return max(self.decision_times.values()) if self.decision_times else None

    @property
    def first_decision_time(self) -> Optional[float]:
        return min(self.decision_times.values()) if self.decision_times else None


def run_timed_consensus(
    parameters: ConsensusParameters,
    initial_values: Mapping[ProcessId, Value],
    network: PartialSynchronyNetwork,
    *,
    round_duration: float = 2.5,
    selection_round_factor: float = 1.0,
    config: Optional[GenericConsensusConfig] = None,
    byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
    max_phases: int = 40,
    seed: Optional[int] = None,
) -> TimedOutcome:
    """Run one consensus instance under the timed partial-synchrony network.

    ``selection_round_factor`` stretches selection rounds (to model the
    extra micro-rounds of an implemented ``Pcons``).  A non-``None`` ``seed``
    reseeds ``network`` before the run, making the whole timed execution a
    pure function of its arguments — campaign workers rely on this to stay
    deterministic without sharing any global RNG state.
    """
    if seed is not None:
        network.reseed(seed)
    model = parameters.model
    config = config or GenericConsensusConfig()
    byzantine = dict(byzantine or {})
    structure = RoundStructure(
        parameters.flag, skip_first_selection=config.skip_first_selection
    )
    ctx = RunContext(model, byzantine=frozenset(byzantine))

    processes: Dict[ProcessId, RoundProcess] = {}
    for pid in model.processes:
        if pid in byzantine:
            processes[pid] = _build_byzantine(pid, byzantine[pid], parameters)
        else:
            if pid not in initial_values:
                raise ValueError(f"missing initial value for honest process {pid}")
            processes[pid] = GenericConsensusProcess(
                pid, initial_values[pid], parameters, config
            )

    queue = EventQueue()
    decision_times: Dict[ProcessId, float] = {}
    decided_values: Dict[ProcessId, Value] = {}
    messages_sent = 0
    messages_delivered = 0
    messages_dropped = 0

    now = 0.0
    rounds_executed = 0
    total_rounds = structure.rounds_for_phases(max_phases)

    for round_number in range(1, total_rounds + 1):
        info = structure.info(round_number)
        duration = round_duration
        if info.kind is RoundKind.SELECTION:
            duration *= selection_round_factor
        deadline = now + duration

        # Send step at the round's start; sample per-message transit times.
        arrivals: Dict[ProcessId, Dict[ProcessId, object]] = {}
        canonical: Dict[ProcessId, object] = {}
        for pid, process in processes.items():
            out = process.send(info)
            for dest, payload in out.items():
                if not 0 <= dest < model.n:
                    continue
                messages_sent += 1
                if info.kind is RoundKind.SELECTION and pid in ctx.byzantine:
                    # Pcons canonicalization: one payload per Byzantine
                    # sender within a selection round.
                    payload = canonical.setdefault(pid, payload)
                transit = network.transit_time(now, pid, dest)
                if now + transit <= deadline or dest in ctx.byzantine:
                    queue.push(now + transit, (dest, pid, payload))
                else:
                    messages_dropped += 1

        # Deliver everything that makes the deadline.
        while queue and queue.peek_time() is not None and queue.peek_time() <= deadline:
            event = queue.pop()
            dest, sender, payload = event.payload
            arrivals.setdefault(dest, {})[sender] = payload
            messages_delivered += 1
        # Late messages are dropped: communication-closed rounds.
        messages_dropped += queue.clear()

        for pid, process in processes.items():
            process.receive(info, arrivals.get(pid, {}))
            if (
                pid not in decision_times
                and isinstance(process, GenericConsensusProcess)
                and process.has_decided
            ):
                decision_times[pid] = deadline
                decided_values[pid] = process.decided

        now = deadline
        rounds_executed += 1
        if set(ctx.correct) <= set(decision_times):
            break

    return TimedOutcome(
        parameters=parameters,
        decision_times=decision_times,
        decided_values=decided_values,
        rounds_executed=rounds_executed,
        simulated_time=now,
        messages_sent=messages_sent,
        messages_delivered=messages_delivered,
        messages_dropped=messages_dropped,
    )
