"""The batch kernel: execute one campaign cell's runs as a unit.

:func:`run_batch` takes B runs of **one cell** (same algorithm, model,
engine and scenario — differing only in repetition and derived seed) and
produces exactly the rows the scalar oracle
(:func:`~repro.campaigns.runner.execute_run`) would, in input order:

* replicate tier — execute one representative, clone its row per run with
  only the per-run coordinates (``run_id``, ``rep``, ``seed``) patched;
* columnar-state tier — execute the whole cell as one array program over
  ``(B runs × n processes)`` state (:mod:`repro.engine.batch
  .columnar_state`), the per-run seed entering only through delivery
  masks; any build-time surprise demotes the cell to the columnar tier;
* columnar tier — drive B timed kernels round by round in lockstep, each
  over its own block-capable RNG streams (bulk latency draws), finalizing
  each run the moment its stop condition fires;
* scalar tier — per-run oracle execution, byte for byte.

Fallback discipline: any batch-path surprise that the scalar oracle would
report as an ``error`` row (an exception inside compilation, assembly or
the round loop) re-executes that run through the oracle itself instead of
fabricating the row — error tracebacks embed frame names, and only the
oracle's frames are byte-stable across backends.  Rows that carry no
traceback (``inadmissible`` / ``inapplicable`` and resolution failures,
whose text is a plain message) are emitted directly.

Every row is tagged with a volatile ``_backend`` field (``replicate`` /
``columnar-state`` / ``columnar`` / ``scalar``) for the events sidecar and
progress display; volatile fields never reach the canonical JSONL.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.campaigns.spec import RunSpec
from repro.core.types import FaultModel
from repro.engine.assembly import build_instance
from repro.engine.batch.columnar_state import columnar_state_rows
from repro.engine.batch.plan import (
    MODE_COLUMNAR,
    MODE_COLUMNAR_STATE,
    MODE_REPLICATE,
    BatchPlan,
    plan_for_run,
)
from repro.engine.batch.scheduler import compile_batch_scenario
from repro.engine.kernel import OBSERVE_METRICS, ExecutionKernel, kernel_outcome
from repro.observability.telemetry import Telemetry
from repro.scenarios.compile import ScenarioInapplicable
from repro.scenarios.spec import split_values

__all__ = ["cell_key", "run_batch"]

Row = Dict[str, object]


def cell_key(run: RunSpec) -> Tuple:
    """The campaign-cell coordinate of a run: everything but (rep, seed).

    Runs sharing this key differ only in repetition index and derived
    seed — the precondition for batching them through :func:`run_batch`.
    """
    return (run.algorithm, run.n, run.b, run.f, run.engine, run.scenario)


def run_batch(
    runs: Sequence[RunSpec],
    *,
    timings: bool = False,
    telemetry: Optional[Telemetry] = None,
    plan: Optional[BatchPlan] = None,
) -> List[Row]:
    """Execute one cell's runs through the planned batch tier (never raises).

    Returns one row per run, in input order, byte-identical (after
    volatile-field stripping) to mapping the scalar oracle over ``runs``.
    ``plan`` defaults to :func:`~repro.engine.batch.plan.plan_for_run` on
    the first run; ``timings=True`` stamps each row with the batch's
    equal-share wall time (volatile, like the oracle's own timing fields).
    """
    if not runs:
        return []
    if timings:
        started = perf_counter()
        rows = run_batch(runs, telemetry=telemetry, plan=plan)
        share = round((perf_counter() - started) * 1000 / len(rows), 3)
        pid = os.getpid()
        for row in rows:
            row["_elapsed_ms"] = share
            row["_pid"] = pid
        return rows
    if plan is None:
        plan = plan_for_run(runs[0])
    if telemetry is not None:
        telemetry.count("batch.rows", len(runs))

    rows: Optional[List[Optional[Row]]] = None
    tier = "batch.columnar_rows"
    # Tier production is demotion-safe: a tier that cannot hold its
    # oracle-identity contract returns ``None`` rows, and a tier that
    # *raises* (a broken template assumption surfacing at execution
    # rather than build time) demotes the same way — the cell re-executes
    # on the per-run oracle, so ``run_batch`` keeps its never-raises,
    # byte-identical contract no matter how a tier fails.
    try:
        if plan.mode == MODE_REPLICATE:
            rows = _replicate_rows(runs)
            tier = "batch.replicated_rows"
        elif plan.mode in (MODE_COLUMNAR, MODE_COLUMNAR_STATE):
            if telemetry is not None:
                with telemetry.span("scheduler.batch"):
                    rows, tier = _timed_rows(runs, plan.mode)
            else:
                rows, tier = _timed_rows(runs, plan.mode)
    except Exception:
        rows = None

    if rows is None:
        rows = [None] * len(runs)

    # Scalar completion: the planner's scalar tier, a replicate
    # representative that errored, or individual columnar rows that fell
    # back — all re-execute through the per-run oracle.
    from repro.campaigns.runner import execute_run

    pending = [index for index, row in enumerate(rows) if row is None]
    if telemetry is not None:
        produced = len(runs) - len(pending)
        if pending:
            telemetry.count("batch.fallback_scalar", len(pending))
        if produced:
            telemetry.count(tier, produced)
    for index in pending:
        row = execute_run(runs[index])
        row["_backend"] = "scalar"
        rows[index] = row
    return rows  # type: ignore[return-value]


def _timed_rows(
    runs: Sequence[RunSpec], mode: str
) -> Tuple[Optional[List[Optional[Row]]], str]:
    """The timed tiers' row production, with the telemetry counter earned.

    The columnar-state tier may demote the whole cell (``None`` result —
    numpy absent or a template assumption failed at build time), in which
    case the cell runs — and is counted — as the per-run columnar tier.
    """
    if mode == MODE_COLUMNAR_STATE:
        rows = columnar_state_rows(runs)
        if rows is not None:
            return rows, "batch.columnar_state_rows"
    return _columnar_rows(runs), "batch.columnar_rows"


def _replicate_rows(runs: Sequence[RunSpec]) -> Optional[List[Optional[Row]]]:
    """One representative execution, cloned across the cell's runs.

    Valid only under the planner's seed-independence proof.  A
    representative ``error`` row aborts the tier (``None`` → full scalar
    fallback): errors may be transient, and their traceback text is only
    byte-stable when each run produces its own.
    """
    from repro.campaigns.runner import STATUS_ERROR, execute_run

    representative = execute_run(runs[0])
    if representative["status"] == STATUS_ERROR:
        return None
    rows: List[Optional[Row]] = []
    for run in runs:
        row = dict(representative)
        row["run_id"] = run.run_id
        row["rep"] = run.rep
        row["seed"] = run.seed
        row["_backend"] = "replicate"
        rows.append(row)
    return rows


class _RowState:
    """One in-flight run of a columnar sweep."""

    __slots__ = ("index", "run", "row", "instance", "kernel", "max_rounds", "target")

    def __init__(self, index, run, row, instance, kernel, max_rounds, target):
        self.index = index
        self.run = run
        self.row = row
        self.instance = instance
        self.kernel = kernel
        self.max_rounds = max_rounds
        self.target = target


def _columnar_rows(runs: Sequence[RunSpec]) -> List[Optional[Row]]:
    """Advance every run's timed kernel in lockstep, one round per pass.

    The per-run prologue mirrors the scalar oracle's step for step (same
    exception-to-status mapping, same messages); the round loop then
    replays :meth:`ExecutionKernel.run`'s step-then-check semantics per
    kernel, so early-stopping runs finalize on exactly the same round.
    ``None`` entries mark rows the caller must complete through the
    oracle.
    """
    from repro.campaigns.runner import (
        STATUS_ERROR,
        STATUS_INADMISSIBLE,
        STATUS_INAPPLICABLE,
        _base_row,
        _resolve_algorithm_memo,
    )

    rows: List[Optional[Row]] = [None] * len(runs)
    states: List[_RowState] = []
    for index, run in enumerate(runs):
        row = _base_row(run)
        try:
            model = FaultModel(run.n, run.b, run.f)
        except ValueError as exc:
            row.update(status=STATUS_INADMISSIBLE, error=str(exc))
            rows[index] = _tag(row)
            continue
        try:
            parameters, config = _resolve_algorithm_memo(run.algorithm, model)
        except ValueError as exc:
            row.update(status=STATUS_INADMISSIBLE, error=str(exc))
            rows[index] = _tag(row)
            continue
        except Exception as exc:
            # Head only, exactly like the oracle: memoized rejections
            # replay with their traceback reset.
            row.update(
                status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
            )
            rows[index] = _tag(row)
            continue
        hosted = parameters.model
        if hosted.b < model.b or hosted.f < model.f:
            row.update(
                status=STATUS_INADMISSIBLE,
                error=(
                    f"{run.algorithm} hosts (b={hosted.b}, f={hosted.f}), "
                    f"grid point wants (b={model.b}, f={model.f})"
                ),
            )
            rows[index] = _tag(row)
            continue
        try:
            compiled = compile_batch_scenario(run.scenario, model, run.seed)
        except ScenarioInapplicable as exc:
            row.update(status=STATUS_INAPPLICABLE, error=str(exc))
            rows[index] = _tag(row)
            continue
        except Exception:
            continue  # oracle fallback: traceback rows must be its own
        initial_values = split_values(model, compiled.byzantine)
        max_phases = max(run.max_phases, compiled.max_phases(run.max_phases))
        try:
            instance = build_instance(
                parameters,
                initial_values,
                config=config,
                byzantine=compiled.byzantine,
            )
            kernel = ExecutionKernel(
                instance.parameters.model,
                instance.processes,
                compiled.scheduler,
                instance.structure.info,
                context=instance.context,
                crash_schedule=compiled.crash_schedule,
                snapshot_fn=instance.snapshot,
                decision_probe=instance.decision_probe,
                record_snapshots=False,
                observe=OBSERVE_METRICS,
            )
            max_rounds = instance.structure.rounds_for_phases(max_phases)
        except Exception:
            continue  # oracle fallback
        states.append(
            _RowState(
                index,
                run,
                row,
                instance,
                kernel,
                max_rounds,
                kernel.eventually_correct,
            )
        )

    active = states
    while active:
        survivors: List[_RowState] = []
        for state in active:
            kernel = state.kernel
            try:
                kernel.step()
            except Exception:
                continue  # oracle fallback for this run
            if (
                kernel.rounds_executed >= state.max_rounds
                or state.target <= _decided(kernel)
            ):
                rows[state.index] = _finalize(state)
            else:
                survivors.append(state)
        active = survivors
    # Zero-round horizons (max_rounds ≤ 0) never enter the loop above;
    # finalize them without stepping, as ExecutionKernel.run would.
    for state in states:
        if state.max_rounds <= 0 and rows[state.index] is None:
            rows[state.index] = _finalize(state)
    return rows


def _decided(kernel: ExecutionKernel) -> Set:
    return set(kernel.decisions)


def _finalize(state: _RowState) -> Optional[Row]:
    """Fold one finished kernel into its result row (oracle field set)."""
    row = state.row
    try:
        outcome = kernel_outcome(state.instance, state.kernel)
        row.update(
            decided=len(outcome.decisions),
            rounds=outcome.rounds_executed,
            phases=None,  # columnar is timed-only; phases is a lockstep metric
            time_to_decision=outcome.last_decision_time,
            messages_sent=outcome.messages_sent,
            messages_delivered=outcome.messages_delivered,
            messages_dropped=outcome.messages_dropped,
            **outcome.invariant_report(),
        )
    except Exception:
        return None  # oracle fallback
    return _tag(row)


def _tag(row: Row) -> Row:
    row["_backend"] = "columnar"
    return row
