"""Columnar batched execution: whole campaign cells as array programs.

One campaign *cell* is B runs differing only in repetition index and
derived seed.  This package executes a cell as a unit — see
:mod:`repro.engine.batch.plan` for the four execution tiers (replicate /
columnar-state / columnar / scalar), :mod:`repro.engine.batch.scheduler`
for the block-stream timed scheduler, :mod:`repro.engine.batch.kernel`
for the lockstep sweep that drives B kernels round by round, and
:mod:`repro.engine.batch.columnar_state` for the top tier, which runs the
generic algorithm itself as one array program over ``(B runs × n
processes)`` state.

The columnar-state contracts
============================

The columnar-state tier rests on two cell-level encodings, both proven at
template-build time and demoted (never fudged) when unprovable:

* **Value encoding** — a cell's value alphabet is *closed*: honest initial
  values plus every payload its (inbox-free, run-invariant) Byzantine
  strategies can utter across the round horizon.
  :func:`repro.core.columnar.encode_alphabet` assigns each value a small
  int code in :func:`repro.utils.det._sort_key` order, so every
  ``deterministic_choice`` of the algorithm is a plain ``min`` over codes;
  ``-1`` is the paper's ``null``, and the ``?`` (ANY) outcome travels as a
  separate boolean mask.  A value outside the alphabet, or two values
  whose sort keys collide, demotes the cell.

* **Mask contract** — the per-run seed enters the array program **only**
  through ``(B, n, n)`` boolean delivery masks (dest-major:
  ``mask[b, dest, sender]``).  Each round's mask is produced by mirroring
  the scalar scheduler draw for draw on the run's own two ``BlockRng``
  streams: scenario-filter coins first (policy stream), then latency
  samples against the round deadline (network stream).  Everything else —
  payloads, suggestion sets, validator sets, edge lists, wall-clock
  windows — is a per-cell template shared by all runs.

The per-run RNG-stream contract
===============================

Batch row *b* consumes **exactly the streams of the scalar run with the
same coordinate-derived seed** — never a shared batch stream, never a
re-partitioned one:

* the timed network stream of run *b* is seeded ``seed_b``, and the
  policy/filter stream of run *b* is an independent generator also seeded
  ``seed_b`` — precisely the two streams scalar compilation builds;
* bulk draws (:meth:`~repro.utils.accel.BlockRng.block`) return the next
  *k* values of that run's own stream, bit-identical to *k* successive
  ``random.Random.random()`` calls (``BlockRng`` transplants the MT19937
  state into ``numpy.random.RandomState``, which implements the same
  53-bit double derivation; :func:`~repro.utils.accel.get_numpy`
  self-checks this once per process and disables numpy on any mismatch);
* array arithmetic mirrors the scalar expressions op for op
  (``low + span * u``, selective ``* chaos``, ``min(·, δ)``), so the
  floats — not just the draws — are bit-identical.

Consequences: result JSONL is byte-identical at any ``(workers, chunk,
backend)`` combination; resuming a campaign with the backend switched
changes nothing (each row depends only on its own seed); and removing any
subset of runs from a batch leaves the remaining rows' bytes untouched.
``tests/engine/test_batch_backend.py`` pins each clause.
"""

from repro.engine.batch.kernel import cell_key, run_batch
from repro.engine.batch.plan import (
    COLUMNAR_STATE_STRATEGIES,
    DETERMINISTIC_STRATEGIES,
    MODE_COLUMNAR,
    MODE_COLUMNAR_STATE,
    MODE_REPLICATE,
    MODE_SCALAR,
    BatchPlan,
    plan_cell,
    plan_for_run,
)
from repro.engine.batch.scheduler import (
    ColumnarTimedScheduler,
    compile_batch_scenario,
)

__all__ = [
    "COLUMNAR_STATE_STRATEGIES",
    "DETERMINISTIC_STRATEGIES",
    "MODE_COLUMNAR",
    "MODE_COLUMNAR_STATE",
    "MODE_REPLICATE",
    "MODE_SCALAR",
    "BatchPlan",
    "ColumnarTimedScheduler",
    "cell_key",
    "compile_batch_scenario",
    "plan_cell",
    "plan_for_run",
    "run_batch",
]
