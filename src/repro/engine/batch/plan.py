"""Batch planning: classify a campaign cell's executions into one of four
execution tiers.

One :class:`~repro.campaigns.spec.CampaignSpec` cell is B runs of one
``(algorithm, model, engine, scenario)`` coordinate differing only in their
repetition index and derived seed.  :func:`plan_cell` decides, *before* any
run executes, how much of that structure the batch kernel may exploit:

* :data:`MODE_REPLICATE` — the run outcome is provably seed-independent
  (no stochastic communication, no randomized coin, only deterministic
  Byzantine strategies, and — on the timed engine — delivery that cannot
  miss a deadline).  One representative run executes; its row is cloned
  per repetition with only ``run_id`` / ``rep`` / ``seed`` patched.  This
  is the dominant tier for the paper's Table-1 sweeps and delivers the
  order-of-magnitude batch speedup.
* :data:`MODE_COLUMNAR_STATE` — seed-dependent timed cells whose *entire
  generic algorithm* is provably expressible as an array program over
  ``(B runs × n processes)`` state: the value alphabet is closed and
  encodable as small ints, the FLV is one of the paper's classes 1–3, the
  Selector is pid-independent, Byzantine payloads are run-invariant, and
  the per-run seed enters only through ``(B, n, n)`` delivery masks.  One
  array program advances every run's votes/timestamps/decisions at once
  (:mod:`repro.engine.batch.columnar_state`); the scalar kernel remains
  the oracle it is checked against.
* :data:`MODE_COLUMNAR` — other timed-engine cells whose outcome depends
  on the seed: each run keeps its own RNG streams (the per-run contract),
  but they are block-capable (:class:`~repro.utils.accel.BlockRng`), so
  every round's latency draws collapse into a handful of array ops while
  the B kernels advance in lockstep.
* :data:`MODE_SCALAR` — everything else (stochastic lockstep policies,
  ``async-prel``, randomized coins, unknown Byzantine strategies, the
  ``REPRO_SLOW_SCHEDULER`` escape hatch): fall back to the per-run scalar
  oracle, byte for byte.

The classification is deliberately conservative: anything the rules cannot
prove seed-independent or block-safe drops a tier.  Misclassifying *down*
costs only speed; the byte-identity suite exists to prove the tiers above
never misclassify *up*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.campaigns.spec import RunSpec
from repro.engine.scheduler import SLOW_SCHEDULER_ENV
from repro.eventsim.network import NetworkSpec
from repro.scenarios.spec import CommSpec, ScenarioSpec

__all__ = [
    "COLUMNAR_STATE_STRATEGIES",
    "DETERMINISTIC_STRATEGIES",
    "MODE_COLUMNAR",
    "MODE_COLUMNAR_STATE",
    "MODE_REPLICATE",
    "MODE_SCALAR",
    "BatchPlan",
    "plan_cell",
    "plan_for_run",
]

MODE_REPLICATE = "replicate"
MODE_COLUMNAR_STATE = "columnar-state"
MODE_COLUMNAR = "columnar"
MODE_SCALAR = "scalar"

#: Registered Byzantine strategies whose payloads do not depend on the
#: per-run seed.  Every strategy in :data:`repro.faults.STRATEGY_REGISTRY`
#: today qualifies — even ``noise`` seeds its garbage stream from the
#: process id, not the run seed — but the whitelist is explicit so a future
#: seed-driven adversary degrades to the scalar tier instead of silently
#: replicating one run's luck across a cell.
DETERMINISTIC_STRATEGIES = frozenset(
    {
        "silent",
        "noise",
        "equivocator",
        "vote-flipper",
        "high-ts-liar",
        "fake-history-liar",
        "adaptive-liar",
    }
)

#: The strategies whose per-round payloads are additionally *inbox-free* —
#: computable from ``(pid, round)`` alone, before any delivery happens.
#: The columnar-state tier precomputes each strategy's outbound payloads
#: once per cell, so an adversary that reads its inbox (``adaptive-liar``)
#: must stay on the per-run columnar tier.
COLUMNAR_STATE_STRATEGIES = DETERMINISTIC_STRATEGIES - {"adaptive-liar"}


@dataclass(frozen=True)
class BatchPlan:
    """How the batch kernel should execute one cell's runs."""

    mode: str
    reason: str


def _never_bad(comm: CommSpec) -> bool:
    """True when the good/bad schedule provably has no bad round ≥ 1."""
    if comm.schedule == "always":
        return True
    if comm.schedule == "after":
        # Rounds are 1-based: good from round ``good_from`` onwards means
        # round 1 is already good whenever ``good_from <= 1``.
        return comm.good_from <= 1
    if comm.schedule == "alternating":
        return comm.bad_len == 0
    return False


def _comm_deterministic(comm: CommSpec) -> bool:
    """True when delivery under ``comm`` consumes no per-run randomness."""
    if comm.kind in ("reliable", "silent"):
        return True
    if comm.kind == "good-bad":
        if comm.bad in ("partition", "silence"):
            return True
        # bad="drop" draws a coin per edge in bad rounds only.
        return _never_bad(comm)
    return False  # lossy / async-prel draw per edge.


def _timed_delivery_deterministic(timing: NetworkSpec) -> bool:
    """True when no timed latency draw can ever miss a round deadline.

    With GST at time 0 every sample is clamped to δ, so when
    ``min(max_latency, δ) ≤ Δ`` the deadline test passes for every possible
    draw — delivery (and therefore the outcome) is independent of the
    latency stream, even though the stream is still consumed.
    """
    if timing.gst > 0:
        return False
    max_latency = timing.low if timing.kind == "fixed" else timing.high
    return min(max_latency, timing.delta) <= timing.round_duration


def _columnar_state_eligible(
    scenario: ScenarioSpec, parameters: object, config: object
) -> bool:
    """True when a seed-dependent timed cell can run as one array program.

    Every clause guards an assumption the columnar-state executor bakes
    into its per-cell templates; anything unprovable here demotes to the
    per-run columnar tier (cost: speed, never bytes):

    * no crashes — the array program has no crash schedule;
    * only inbox-free Byzantine strategies — payloads precompute per cell;
    * a comm kind whose per-round filter reduces to per-edge booleans
      (``async-prel`` is timed-inapplicable anyway);
    * an FLV that is exactly one of the paper's classes 1–3 — the columnar
      evaluators in :mod:`repro.core.columnar` mirror Algorithms 2–4 only;
    * a pid-independent Selector (suggestion sets depend on the phase, not
      the asking process), so suggestions become per-phase templates;
    * when the FLAG needs a validation round, the static-selector
      optimization must be active — validator sets are then per-phase
      templates instead of per-message quorum scans;
    * none of the config switches that grow or reshape state
      (``skip_first_selection``, history bounding, the line-26 ablation).
    """
    from repro.core.flv_class1 import FLVClass1
    from repro.core.flv_class2 import FLVClass2
    from repro.core.flv_class3 import FLVClass3
    from repro.core.selector import (
        AllProcessesSelector,
        FixedSelector,
        RotatingCoordinatorSelector,
        RotatingSubsetSelector,
    )

    if scenario.crashes != 0:
        return False
    if any(
        name not in COLUMNAR_STATE_STRATEGIES for name in scenario.byzantine
    ):
        return False
    if scenario.comm.kind not in ("reliable", "lossy", "silent", "good-bad"):
        return False
    flv = getattr(parameters, "flv", None)
    if type(flv) not in (FLVClass1, FLVClass2, FLVClass3):
        return False
    selector = getattr(parameters, "selector", None)
    if type(selector) not in (
        AllProcessesSelector,
        FixedSelector,
        RotatingSubsetSelector,
        RotatingCoordinatorSelector,
    ):
        return False
    if getattr(config, "skip_first_selection", False):
        return False
    if getattr(config, "record_validation_in_history", False):
        return False
    if getattr(config, "max_history_size", None) is not None:
        return False
    if parameters.flag.needs_validation_round:
        static = (
            config.uses_static_selector(selector)
            if config is not None
            else selector.is_static
        )
        if not static:
            return False
    return True


def plan_cell(
    scenario: ScenarioSpec,
    engine: str,
    config: object = None,
    parameters: object = None,
) -> BatchPlan:
    """Classify one ``(scenario, engine, config)`` cell into a batch tier.

    ``config`` is the resolved algorithm's
    :class:`~repro.core.parameters.GenericConsensusConfig` (or ``None``
    when unresolved); a randomized coin forces the scalar tier.
    ``parameters`` is the resolved
    :class:`~repro.core.parameters.ConsensusParameters` — required for the
    columnar-state tier (without it the planner cannot prove the FLV /
    Selector expressible as reductions, so seed-dependent timed cells stay
    on the per-run columnar tier).
    """
    if getattr(config, "coin", None) is not None:
        return BatchPlan(MODE_SCALAR, "randomized coin consumes per-run seed")
    unknown = [
        name
        for name in scenario.byzantine
        if name not in DETERMINISTIC_STRATEGIES
    ]
    if unknown:
        return BatchPlan(
            MODE_SCALAR, f"strategy {unknown[0]!r} not proven seed-independent"
        )
    comm_det = _comm_deterministic(scenario.comm)
    if comm_det and engine == "lockstep":
        return BatchPlan(MODE_REPLICATE, "deterministic lockstep delivery")
    if engine == "timed":
        if comm_det and _timed_delivery_deterministic(scenario.timing):
            return BatchPlan(
                MODE_REPLICATE, "timed delivery cannot miss a deadline"
            )
        if os.environ.get(SLOW_SCHEDULER_ENV, "") not in ("", "0"):
            return BatchPlan(
                MODE_SCALAR, "REPRO_SLOW_SCHEDULER forces the heap oracle"
            )
        if parameters is not None and _columnar_state_eligible(
            scenario, parameters, config
        ):
            return BatchPlan(
                MODE_COLUMNAR_STATE,
                "generic algorithm runs as one (runs × processes) "
                "array program over delivery masks",
            )
        return BatchPlan(MODE_COLUMNAR, "seed-dependent timed delivery")
    return BatchPlan(MODE_SCALAR, "stochastic lockstep policy")


def plan_for_run(run: RunSpec) -> BatchPlan:
    """The plan for a cell, keyed by one of its runs.

    Resolves the algorithm (through the runner's worker memo, so campaign
    chunks pay nothing extra) to inspect its config; any resolution or
    model failure yields the scalar tier, whose per-run oracle produces
    the proper ``inadmissible`` / ``error`` rows.
    """
    from repro.campaigns.runner import _resolve_algorithm_memo
    from repro.core.types import FaultModel

    try:
        model = FaultModel(run.n, run.b, run.f)
        parameters, config = _resolve_algorithm_memo(run.algorithm, model)
    except Exception:
        return BatchPlan(MODE_SCALAR, "algorithm/model resolution failed")
    return plan_cell(run.scenario, run.engine, config, parameters=parameters)
