"""The columnar member of the batch scheduler family.

:class:`ColumnarTimedScheduler` *is* a
:class:`~repro.engine.scheduler.TimedScheduler` — same deadline sweep, same
filter semantics, same telemetry spans — whose network and policy streams
are :class:`~repro.utils.accel.BlockRng` instances.  The timed delivery hot
path (``_deliver_fast``) already routes every latency draw through
``sample_fan`` / ``sample_round``, and those methods detect a block-capable
stream and collapse the round's draws into array ops.  Sharing the sweep
code — instead of re-implementing it in matrix form — is what makes the
byte-identity guarantee structural: there is no second delivery algorithm
to diverge.

:func:`compile_batch_scenario` is the per-cell specialization pass: it runs
ordinary scenario compilation (placement, crash schedule and the per-round
delivery filter are resolved **once per batch**, then shared by every run
of the cell via the compilation memos) and swaps the scheduler for the
columnar subclass, seeded identically to the scalar one.
"""

from __future__ import annotations

from repro.core.types import FaultModel
from repro.engine.scheduler import TimedScheduler
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.utils.accel import BlockRng

__all__ = ["ColumnarTimedScheduler", "compile_batch_scenario"]


class ColumnarTimedScheduler(TimedScheduler):
    """Δ-paced deadline delivery over block-capable RNG streams.

    Pins the heap off regardless of ``REPRO_SLOW_SCHEDULER`` — the batch
    planner already routes slow-scheduler sessions to the scalar tier, and
    the columnar tier's array paths live on the fast sweep.
    """

    def __init__(self, network, *, round_duration=2.5, delivery_filter=None):
        super().__init__(
            network,
            round_duration=round_duration,
            delivery_filter=delivery_filter,
            use_heap=False,
        )


def compile_batch_scenario(
    spec: ScenarioSpec, model: FaultModel, seed: int
) -> CompiledScenario:
    """Compile ``spec`` for the timed engine with block-capable streams.

    Stream-for-stream the scalar compilation: the scalar path seeds the
    network with ``random.Random(seed)`` and the policy/filter stream with
    an independent ``random.Random(seed)``; this builds both as
    :class:`BlockRng` objects transplanted from identically seeded
    generators, so every draw — bulk or scalar — continues the exact same
    Mersenne-Twister sequences.
    """
    network = spec.timing.build(seed, rng=BlockRng(seed))
    compiled = compile_scenario(
        spec,
        model,
        "timed",
        seed,
        network=network,
        policy_rng=BlockRng(seed),
    )
    scalar_scheduler = compiled.scheduler
    compiled.scheduler = ColumnarTimedScheduler(
        network,
        round_duration=spec.timing.round_duration,
        delivery_filter=scalar_scheduler.delivery_filter,
    )
    return compiled
