"""The columnar-state executor: one array program per campaign cell.

The columnar tier (:mod:`repro.engine.batch.kernel`) vectorizes the
RNG/latency layer but still advances B separate kernel objects — every
send/receive/FLV evaluation of the generic algorithm runs as per-run
Python.  This module lifts the *algorithm state itself* into arrays for
cells the planner proved eligible (:data:`~repro.engine.batch.plan
.MODE_COLUMNAR_STATE`):

* the cell's value alphabet is closed and encoded as small ints
  (:func:`repro.core.columnar.encode_alphabet`);
* votes, timestamps, histories, selections and decisions live in
  ``(B runs × n processes)`` arrays;
* the per-run seed enters **only** through ``(B, n, n)`` delivery masks,
  produced by mirroring the timed scheduler's fast sweep
  (:meth:`TimedScheduler._deliver_fast`), the scenario delivery filters
  and the partial-synchrony sampling paths draw for draw on two fresh
  :class:`~repro.utils.accel.BlockRng` streams per run — exactly the
  streams :func:`~repro.engine.batch.scheduler.compile_batch_scenario`
  builds (nothing is drawn at compile time, so fresh streams are equal
  streams);
* FLV classes 1–3, ANY-resolution, validation quorums and decision
  thresholds evaluate as the counting/argmax reductions of
  :mod:`repro.core.columnar`.

Everything that is *not* seed-dependent is a per-cell template computed
once: Byzantine outbound payloads (the eligible strategies are inbox-free,
so each strategy instance is driven through rounds ``1..max_rounds`` once
and its real dict/frozenset iteration orders recorded), per-round edge
lists, selector suggestions and validator sets, and coercion verdicts.

Fallback discipline mirrors the columnar tier: the per-run prologue maps
resolution failures to the oracle's exact status rows; any surprise while
building or running the array program demotes — the whole cell to the
per-run columnar tier (``None`` return), or a single run to the scalar
oracle (``None`` row).  Demotion costs speed, never bytes: the scalar
kernel remains the oracle the identity suite diffs this executor against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.campaigns.spec import RunSpec
from repro.core.columnar import (
    NULL_CODE,
    counts_by_value,
    encode_alphabet,
    flv_class1_columnar,
    flv_class2_columnar,
    flv_class3_columnar,
    pick_min_code,
    resolve_any_columnar,
    threshold_pick,
)
from repro.core.types import (
    FaultModel,
    RoundKind,
    coerce_decision_message,
    coerce_selection_message,
    coerce_validation_message,
)
from repro.engine.batch.scheduler import compile_batch_scenario
from repro.faults.registry import build_byzantine
from repro.scenarios.compile import (
    ScenarioInapplicable,
    _memoized_schedule,
    _partition_edges,
    _partition_groups,
)
from repro.scenarios.spec import split_values
from repro.utils.accel import BlockRng, get_numpy
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE

__all__ = ["columnar_state_rows"]

Row = Dict[str, object]


class _Demote(Exception):
    """The cell cannot run as an array program; drop to the columnar tier."""


def _require(condition: bool, why: str) -> None:
    if not condition:
        raise _Demote(why)


class _RoundTemplate:
    """The seed-independent description of one global round of the cell."""

    __slots__ = (
        "number",
        "phase",
        "kind",
        "e_send",
        "e_dest",
        "coin_idx",
        "sent",
        "ok_row",
        "svote_row",
        "sts_row",
        "shist",
        "vsel",
        "vok",
        "val_mask",
        "val_len",
        "dvote",
        "dts",
        "dok",
        # Run-invariant delivery precomputation: the wall-clock window, the
        # zero-draw constant-latency verdict, the admission base of the
        # scenario filter and — when no coin is drawn — its nonzero edges.
        "now",
        "deadline",
        "pre_gst",
        "constant",
        "delivers_all",
        "admit_base",
        "use_coins",
        "pending_idx",
        "all_idx",
        "none_idx",
    )


class _CellProgram:
    """One campaign cell compiled to templates + array-program parameters."""

    def __init__(self, np, run: RunSpec, model, parameters, config, byzantine):
        self.np = np
        self.model = model
        self.parameters = parameters
        self.byzantine = dict(byzantine)
        scenario = run.scenario
        self.timing = scenario.timing
        self.comm = scenario.comm

        from repro.core.flv_class1 import FLVClass1
        from repro.core.flv_class2 import FLVClass2
        from repro.core.flv_class3 import FLVClass3
        from repro.core.process import RoundStructure
        from repro.core.types import Flag

        n = model.n
        self.n = n
        self.b = model.b
        self.threshold = parameters.threshold
        flv = parameters.flv
        self.slack = flv._slack
        self.flv_class = {FLVClass1: 1, FLVClass2: 2, FLVClass3: 3}[type(flv)]
        self.ensure_unanimity = (
            flv.ensure_unanimity if self.flv_class == 3 else True
        )
        self.uses_ts = flv.requirements.uses_ts
        self.phase_gated = parameters.flag is Flag.CURRENT_PHASE
        # History is consulted by the validation round's line-26 revert and
        # (class 3) by FLV history support; FLAG = * cells need neither.
        self.need_hist = self.phase_gated or self.flv_class == 3
        self.structure = RoundStructure(parameters.flag)
        self.max_phases = max(run.max_phases, _suggested_phases(run))
        self.max_rounds = self.structure.rounds_for_phases(self.max_phases)

        self.byz_pids = sorted(self.byzantine)
        self.honest_pids = [
            pid for pid in range(n) if pid not in self.byzantine
        ]
        self.byz_col = np.zeros(n, dtype=bool)
        for pid in self.byz_pids:
            self.byz_col[pid] = True
        self.honest_col = ~self.byz_col
        self.initial_values = split_values(model, self.byzantine)

        self._compile_filter()
        self._compile_timing()
        self._compile_templates(config)

    # ------------------------------------------------------------ filters

    def _compile_filter(self) -> None:
        comm = self.comm
        kind = comm.kind
        _require(
            kind in ("reliable", "lossy", "silent", "good-bad"),
            f"comm kind {kind!r} has no mask form",
        )
        self.filter_kind = kind
        self.drop_prob = comm.drop_prob
        self.is_good = None
        self.partition = None
        if kind == "good-bad":
            self.is_good = _memoized_schedule(comm).is_good
            if comm.bad == "partition":
                self.partition = _partition_edges(
                    _partition_groups(comm, self.model)
                )
            self.bad = comm.bad

    def _compile_timing(self) -> None:
        t = self.timing
        _require(t.kind in ("uniform", "fixed"), f"latency kind {t.kind!r}")
        self.gst = t.gst
        self.delta = t.delta
        self.pre_prob = t.pre_gst_delay_prob
        self.chaos = t.chaos_factor
        self.round_duration = t.round_duration
        self.low = t.low
        self.high = t.high
        self.fixed_latency = t.kind == "fixed"
        # Mirrors PartialSynchronyNetwork._clamp_free for the uniform model;
        # the fixed model's post-GST path is the zero-draw constant branch.
        self.clamp_free = (self.low if self.fixed_latency else self.high) <= t.delta

    # ---------------------------------------------------------- templates

    def _compile_templates(self, config) -> None:
        np = self.np
        model = self.model
        parameters = self.parameters
        selector = parameters.selector
        n = self.n
        max_phases = self.max_phases

        # Drive each (inbox-free) strategy through every round once, in
        # ascending order — exactly the rounds any run would execute — and
        # record the *actual* payloads and dict iteration orders.  RandomNoise
        # seeds its garbage stream from its pid, so the sequence of draws is
        # the same in every run of the cell; early-stopping runs consumed a
        # prefix of it, which recording rounds in ascending order preserves.
        strategies = {
            pid: build_byzantine(pid, name, parameters)
            for pid, name in self.byzantine.items()
        }

        suggestions = {}
        validator_sets = {}
        for phase in range(1, max_phases + 1):
            suggestion = selector.select(0, phase)
            suggestions[phase] = list(suggestion)
            validator_sets[phase] = selector.select(0, phase)

        outboxes = {}
        values = set()
        for pid, value in self.initial_values.items():
            values.add(value)
        for number in range(1, self.max_rounds + 1):
            info = self.structure.info(number)
            per_round = {}
            for pid in self.byz_pids:
                out = strategies[pid].send(info)
                per_round[pid] = out
                for payload in out.values():
                    _collect_values(info.kind, payload, values, max_phases)
            outboxes[number] = per_round

        self.alphabet = encode_alphabet(values)
        _require(
            all(
                value is not ANY_VALUE and value is not NULL_VALUE
                for value in self.alphabet
            ),
            "sentinel values cannot be encoded",
        )
        self.n_values = len(self.alphabet)
        code = {value: index for index, value in enumerate(self.alphabet)}
        self.initial_codes = {
            pid: code[value] for pid, value in self.initial_values.items()
        }

        templates: List[_RoundTemplate] = []
        for number in range(1, self.max_rounds + 1):
            info = self.structure.info(number)
            rt = _RoundTemplate()
            rt.number = number
            rt.phase = info.phase
            rt.kind = info.kind
            per_round = outboxes[number]

            senders: List[int] = []
            dests: List[int] = []
            if info.kind is RoundKind.SELECTION:
                rt.ok_row = np.zeros(n, dtype=bool)
                rt.ok_row[self.honest_pids] = True
                rt.svote_row = np.full(n, NULL_CODE, dtype=np.int64)
                rt.sts_row = np.zeros(n, dtype=np.int64)
                rt.shist = {}
            elif info.kind is RoundKind.VALIDATION:
                validators = validator_sets[info.phase]
                rt.val_mask = np.zeros(n, dtype=bool)
                for pid in validators:
                    rt.val_mask[pid] = True
                rt.val_len = len(validators)
                rt.vsel = np.full((n, n), NULL_CODE, dtype=np.int64)
            else:
                rt.dvote = np.full((n, n), NULL_CODE, dtype=np.int64)
                rt.dts = np.zeros((n, n), dtype=np.int64)
                rt.dok = np.zeros((n, n), dtype=bool)
                rt.dok[:, self.honest_pids] = True

            for sender in range(n):
                if sender in self.byzantine:
                    out = per_round[sender]
                    if info.kind is RoundKind.SELECTION and out:
                        # Pcons canonicalization: one payload per Byzantine
                        # sender per selection round — the payload of its
                        # first outbound edge, on both scheduler branches.
                        canonical = next(iter(out.values()))
                        parsed = coerce_selection_message(canonical)
                        if parsed is not None:
                            rt.ok_row[sender] = True
                            rt.svote_row[sender] = _encode(code, parsed.vote)
                            rt.sts_row[sender] = parsed.ts
                            if self.flv_class == 3:
                                rt.shist[sender] = _history_table(
                                    np, parsed.history, code,
                                    self.n_values, max_phases,
                                )
                    for dest, payload in out.items():
                        senders.append(sender)
                        dests.append(dest)
                        if info.kind is RoundKind.VALIDATION:
                            parsed = coerce_validation_message(payload)
                            if parsed is not None and (
                                parsed.select is not NULL_VALUE
                            ):
                                rt.vsel[dest, sender] = _encode(
                                    code, parsed.select
                                )
                        elif info.kind is RoundKind.DECISION:
                            parsed = coerce_decision_message(payload)
                            if parsed is not None:
                                rt.dok[dest, sender] = True
                                rt.dvote[dest, sender] = _encode(
                                    code, parsed.vote
                                )
                                rt.dts[dest, sender] = parsed.ts
                    continue
                if info.kind is RoundKind.SELECTION:
                    for dest in suggestions[info.phase]:
                        senders.append(sender)
                        dests.append(dest)
                elif info.kind is RoundKind.VALIDATION:
                    if rt.val_mask[sender]:
                        for dest in model.processes:
                            senders.append(sender)
                            dests.append(dest)
                else:
                    for dest in model.processes:
                        senders.append(sender)
                        dests.append(dest)

            rt.e_send = np.asarray(senders, dtype=np.intp)
            rt.e_dest = np.asarray(dests, dtype=np.intp)
            rt.sent = len(senders)
            # Which edges consume one policy coin: lossy always, good-bad
            # only when the round is bad and the behaviour is "drop"; the
            # filter short-circuits on Byzantine receivers, which draw none.
            rt.coin_idx = np.nonzero(~self.byz_col[rt.e_dest])[0]
            self._precompute_delivery(rt)
            templates.append(rt)
        self.templates = templates

    def _precompute_delivery(self, rt: _RoundTemplate) -> None:
        """Everything about round ``rt`` that no per-run seed can change.

        The wall clock is run-invariant (every run accumulates the same
        ``deadline = now + round_duration`` float sequence), and so is the
        scenario filter's admission base — only the per-edge drop coins
        differ between runs.  Hoisting both out of :meth:`_delivered_edges`
        leaves coin draws, latency draws and one deadline compare as the
        entire per-run round cost.
        """
        np = self.np
        # Same float accumulation as the scalar scheduler: the round's
        # start is the previous round's deadline.
        now = 0.0
        for _ in range(rt.number - 1):
            now = now + self.round_duration
        rt.now = now
        rt.deadline = now + self.round_duration
        rt.pre_gst = now < self.gst
        rt.constant = (
            min(self.low, self.delta)
            if self.fixed_latency and not rt.pre_gst
            else None
        )
        rt.delivers_all = (
            rt.constant is not None and now + rt.constant <= rt.deadline
        )
        rt.all_idx = np.arange(rt.sent, dtype=np.intp)
        rt.none_idx = np.empty(0, dtype=np.intp)

        kind = self.filter_kind
        byz_dest = self.byz_col[rt.e_dest]
        rt.use_coins = False
        if kind == "reliable":
            rt.admit_base = None  # filter-free: deadline decides alone
        elif kind == "silent":
            rt.admit_base = byz_dest
        elif kind == "lossy":
            rt.admit_base = byz_dest
            rt.use_coins = rt.coin_idx.size > 0
        elif self.is_good(rt.number):
            rt.admit_base = np.ones(rt.sent, dtype=bool)
        elif self.bad == "partition":
            in_group = np.fromiter(
                (
                    (int(s), int(d)) in self.partition
                    for s, d in zip(rt.e_send, rt.e_dest)
                ),
                dtype=bool,
                count=rt.sent,
            )
            rt.admit_base = in_group | byz_dest
        elif self.bad == "silence":
            rt.admit_base = byz_dest
        else:
            # lossy, or good-bad "drop" in a bad round: one coin per edge
            # whose receiver is not Byzantine, in template (sender-major)
            # order, flips each edge of the base on or off per run.
            rt.admit_base = byz_dest
            rt.use_coins = rt.coin_idx.size > 0
        rt.pending_idx = (
            None
            if rt.admit_base is None or rt.use_coins
            else np.nonzero(rt.admit_base)[0]
        )

    # ------------------------------------------------------ mask producer

    def _transits(self, net, rt: _RoundTemplate, count: int):
        """The next ``count`` transit times of one run's network stream.

        Op-for-op the batched paths of
        :meth:`PartialSynchronyNetwork.sample_round` / ``sample_fan`` and
        ``_pre_gst_block`` — per-sender fan calls concatenate into one
        round-wide block because consecutive ``block`` calls continue one
        stream and every segment has even length in the interleaved case.
        """
        np = self.np
        if not rt.pre_gst:
            draws = net.block(count)
            transits = self.low + (self.high - self.low) * draws
            if not self.clamp_free:
                transits = np.minimum(transits, self.delta)
            return transits
        if self.fixed_latency:
            coins = net.block(count)
            return np.where(
                coins < self.pre_prob, self.low * self.chaos, self.low
            )
        draws = net.block(2 * count)
        bases = self.low + (self.high - self.low) * draws[0::2]
        bases[draws[1::2] < self.pre_prob] *= self.chaos
        return bases

    def _delivered_edges(self, rt: _RoundTemplate, net, pol):
        """Indices of the round's delivered edges for one run.

        Only the seed-dependent work happens here: per-edge drop coins
        (policy stream) and latency draws (network stream).  Everything
        else — the admission base, the wall-clock window, the zero-draw
        constant verdict — was precomputed on the template.  Stream
        consumption order matches the scalar scheduler exactly: the
        filter's coins first, then the deadline sweep's latencies.
        """
        np = self.np
        if rt.use_coins:
            coins = pol.block(int(rt.coin_idx.size))
            admitted = rt.admit_base.copy()
            admitted[rt.coin_idx] = coins >= self.drop_prob
            pending = np.nonzero(admitted)[0]
        elif rt.admit_base is None:
            # Filter-free: every edge samples (unless the zero-draw constant
            # branch applies); admissions are decided by the deadline only.
            if rt.constant is not None:
                return rt.all_idx if rt.delivers_all else rt.none_idx
            transits = self._transits(net, rt, rt.sent)
            return np.nonzero(rt.now + transits <= rt.deadline)[0]
        else:
            pending = rt.pending_idx
        if rt.constant is not None:
            return pending if rt.delivers_all else rt.none_idx
        if pending.size == 0:
            return pending
        transits = self._transits(net, rt, int(pending.size))
        return pending[rt.now + transits <= rt.deadline]

    # ------------------------------------------------------ array program

    def execute(self, seeds: Sequence[int]) -> List[Dict[str, object]]:
        """Run every seed's instance at once; one result dict per seed."""
        np = self.np
        n = self.n
        B = len(seeds)
        P = self.max_phases
        V = self.n_values
        honest_col = self.honest_col

        # Per run: a network stream and a policy stream, both seeded with
        # the run seed — exactly compile_batch_scenario's pair (nothing is
        # drawn at compile time, so fresh streams are equal streams).
        streams = [(BlockRng(seed), BlockRng(seed)) for seed in seeds]
        vote = np.zeros((B, n), dtype=np.int64)
        ts = np.zeros((B, n), dtype=np.int64)
        selected = np.full((B, n), NULL_CODE, dtype=np.int64)
        hist = None
        if self.need_hist:
            hist = np.full((B, n, P + 1), NULL_CODE, dtype=np.int64)
        for pid, value_code in self.initial_codes.items():
            vote[:, pid] = value_code
            if hist is not None:
                hist[:, pid, 0] = value_code

        decided = np.zeros((B, n), dtype=bool)
        dec_value = np.full((B, n), NULL_CODE, dtype=np.int64)
        dec_round = np.zeros((B, n), dtype=np.int64)
        dec_time = np.zeros((B, n), dtype=np.float64)
        rounds_exec = np.zeros(B, dtype=np.int64)
        sent = np.zeros(B, dtype=np.int64)
        delivered = np.zeros(B, dtype=np.int64)
        dropped = np.zeros(B, dtype=np.int64)
        active = np.ones(B, dtype=bool)
        if self.max_rounds <= 0:
            active[:] = False

        b_idx = np.arange(B)[:, None, None]
        b_idx2 = np.arange(B)[:, None]
        for rt in self.templates:
            if not active.any():
                break
            deadline = rt.deadline
            deliv = np.zeros((B, n, n), dtype=bool)
            for bi in np.nonzero(active)[0]:
                net, pol = streams[bi]
                on = self._delivered_edges(rt, net, pol)
                if on.size:
                    deliv[bi, rt.e_dest[on], rt.e_send[on]] = True
                sent[bi] += rt.sent
                delivered[bi] += on.size
                dropped[bi] += rt.sent - on.size

            upd = active[:, None] & honest_col[None, :]
            phase = rt.phase
            if rt.kind is RoundKind.SELECTION:
                valid = deliv & rt.ok_row[None, None, :]
                eff_vote = np.where(
                    self.byz_col, rt.svote_row[None, None, :], vote[:, None, :]
                )
                if self.uses_ts:
                    eff_ts = np.where(
                        self.byz_col, rt.sts_row[None, None, :], ts[:, None, :]
                    )
                else:
                    eff_ts = np.where(
                        self.byz_col,
                        rt.sts_row[None, None, :],
                        np.zeros((B, 1, n), dtype=np.int64),
                    )
                if self.flv_class == 1:
                    concrete, any_mask = flv_class1_columnar(
                        np, valid, eff_vote, V, self.slack
                    )
                elif self.flv_class == 2:
                    concrete, any_mask = flv_class2_columnar(
                        np, valid, eff_vote, eff_ts, V, self.slack, self.b
                    )
                else:
                    hsup = self._history_support(
                        rt, valid, eff_vote, eff_ts, hist, b_idx
                    )
                    concrete, any_mask = flv_class3_columnar(
                        np, valid, eff_vote, eff_ts, hsup, V,
                        self.slack, self.b, self.ensure_unanimity,
                    )
                resolved = resolve_any_columnar(np, valid, eff_vote, V)
                sel = np.where(any_mask, resolved, concrete)
                got = sel >= 0
                vote = np.where(upd & got, sel, vote)
                if hist is not None:
                    hist[:, :, phase] = np.where(
                        upd & got, sel, hist[:, :, phase]
                    )
                selected = np.where(upd, sel, selected)
            elif rt.kind is RoundKind.VALIDATION:
                eff_sel = np.where(
                    self.byz_col, rt.vsel[None, :, :], selected[:, None, :]
                )
                valid = deliv & (eff_sel >= 0) & rt.val_mask[None, None, :]
                counts = counts_by_value(np, valid, eff_sel, V)
                winners = 2 * counts > rt.val_len + self.b
                pick = pick_min_code(np, winners)
                success = pick >= 0
                vote = np.where(upd & success, pick, vote)
                ts = np.where(upd & success, phase, ts)
                # Line 26: revert to the (unique) history value at ts, or
                # keep the vote when no selection was logged at that phase.
                reverted = hist[b_idx2, np.arange(n)[None, :], ts]
                revert = upd & ~success & (reverted != NULL_CODE)
                vote = np.where(revert, reverted, vote)
            else:
                eff_vote = np.where(
                    self.byz_col, rt.dvote[None, :, :], vote[:, None, :]
                )
                valid = deliv & rt.dok[None, :, :]
                if self.phase_gated:
                    eff_ts = np.where(
                        self.byz_col, rt.dts[None, :, :], ts[:, None, :]
                    )
                    valid = valid & (eff_ts == phase)
                counts = counts_by_value(np, valid, eff_vote, V)
                win = threshold_pick(np, counts, self.threshold)
                fired = upd & (win >= 0) & ~decided
                dec_value = np.where(fired, win, dec_value)
                dec_round = np.where(fired, rt.number, dec_round)
                dec_time = np.where(fired, deadline, dec_time)
                decided = decided | fired

            rounds_exec[active] = rt.number
            all_decided = (decided | self.byz_col[None, :]).all(axis=1)
            active = active & ~all_decided & (rt.number < self.max_rounds)

        results = []
        byz_set = frozenset(self.byz_pids)
        correct = frozenset(self.honest_pids)
        for bi in range(B):
            decided_values = {
                pid: self.alphabet[int(dec_value[bi, pid])]
                for pid in self.honest_pids
                if decided[bi, pid]
            }
            times = [
                float(dec_time[bi, pid])
                for pid in self.honest_pids
                if decided[bi, pid]
            ]
            results.append(
                {
                    "decided_values": decided_values,
                    "initial_values": self.initial_values,
                    "byzantine": byz_set,
                    "correct": correct,
                    "decided": len(decided_values),
                    "rounds": int(rounds_exec[bi]),
                    "time_to_decision": max(times) if times else None,
                    "messages_sent": int(sent[bi]),
                    "messages_delivered": int(delivered[bi]),
                    "messages_dropped": int(dropped[bi]),
                }
            )
        return results

    def _history_support(self, rt, valid, eff_vote, eff_ts, hist, b_idx):
        """``history_support[b, d, m]``: valid senders whose history holds
        the queried ``(vote_m, ts_m)`` pair (class-3 FLV, Algorithm 4 line 2).
        """
        np = self.np
        P = self.max_phases
        in_range = (eff_ts >= 0) & (eff_ts <= P) & (eff_vote >= 0)
        ts_q = np.clip(eff_ts, 0, P)
        vote_q = np.clip(eff_vote, 0, self.n_values - 1)
        support = np.zeros(valid.shape, dtype=np.int64)
        for sender in self.honest_pids:
            held = hist[:, sender, :][b_idx, ts_q]
            contains = in_range & (held == eff_vote)
            support += np.where(valid[:, :, sender][:, :, None], contains, False)
        for sender, table in rt.shist.items():
            contains = in_range & table[vote_q, ts_q]
            support += np.where(valid[:, :, sender][:, :, None], contains, False)
        return support


def _encode(code: Dict, value) -> int:
    try:
        result = code[value]
    except (KeyError, TypeError):
        raise _Demote(f"value {value!r} escaped the cell alphabet") from None
    return result


def _history_table(np, history, code, n_values: int, max_phases: int):
    """One Byzantine history as a dense ``(V, P+1)`` membership table."""
    table = np.zeros((n_values, max_phases + 1), dtype=bool)
    for value, entry_phase in history:
        _require(
            0 <= entry_phase <= max_phases,
            "byzantine history phase outside the horizon",
        )
        index = code.get(value)
        if index is not None:
            table[index, entry_phase] = True
    return table


def _collect_values(kind, payload, values, max_phases: int) -> None:
    """Add every encodable value a coerced payload can inject to the pool."""
    if kind is RoundKind.SELECTION:
        parsed = coerce_selection_message(payload)
        if parsed is not None:
            values.add(parsed.vote)
    elif kind is RoundKind.VALIDATION:
        parsed = coerce_validation_message(payload)
        if parsed is not None and parsed.select is not NULL_VALUE:
            values.add(parsed.select)
    else:
        parsed = coerce_decision_message(payload)
        if parsed is not None:
            values.add(parsed.vote)


def _suggested_phases(run: RunSpec) -> int:
    suggested = run.scenario.max_phases
    return run.max_phases if suggested is None else suggested


def columnar_state_rows(
    runs: Sequence[RunSpec],
) -> Optional[List[Optional[Row]]]:
    """Execute one cell's runs as a single array program.

    Returns the oracle-identical row list (``None`` entries mark runs the
    caller must complete through the scalar oracle), or ``None`` when the
    whole cell must demote to the per-run columnar tier — numpy absent
    (the pure-python fallback *is* the columnar tier: same per-run
    ``BlockRng`` streams, scalar draws) or a template assumption the
    planner could not see failing at build time.
    """
    np = get_numpy()
    if np is None:
        return None
    from repro.analysis.invariants import evaluate_properties
    from repro.campaigns.runner import (
        STATUS_ERROR,
        STATUS_INADMISSIBLE,
        STATUS_INAPPLICABLE,
        _base_row,
        _resolve_algorithm_memo,
    )

    rows: List[Optional[Row]] = [None] * len(runs)
    viable: List[int] = []
    prepared: List[Row] = []
    program: Optional[_CellProgram] = None
    compiled_outcome = None
    try:
        for index, run in enumerate(runs):
            row = _base_row(run)
            try:
                model = FaultModel(run.n, run.b, run.f)
            except ValueError as exc:
                row.update(status=STATUS_INADMISSIBLE, error=str(exc))
                rows[index] = _tag(row)
                continue
            try:
                parameters, config = _resolve_algorithm_memo(
                    run.algorithm, model
                )
            except ValueError as exc:
                row.update(status=STATUS_INADMISSIBLE, error=str(exc))
                rows[index] = _tag(row)
                continue
            except Exception as exc:
                row.update(
                    status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
                )
                rows[index] = _tag(row)
                continue
            hosted = parameters.model
            if hosted.b < model.b or hosted.f < model.f:
                row.update(
                    status=STATUS_INADMISSIBLE,
                    error=(
                        f"{run.algorithm} hosts (b={hosted.b}, f={hosted.f}), "
                        f"grid point wants (b={model.b}, f={model.f})"
                    ),
                )
                rows[index] = _tag(row)
                continue
            # One compilation serves the whole cell: placement, the crash
            # schedule and the inapplicability verdict are memoized per
            # (spec, model) and provably seed-independent, so every run of
            # the cell gets the same outcome the oracle would hand it.
            if compiled_outcome is None:
                try:
                    compiled_outcome = (
                        "ok",
                        compile_batch_scenario(run.scenario, model, run.seed),
                    )
                except ScenarioInapplicable as exc:
                    compiled_outcome = ("inapplicable", str(exc))
                except Exception:
                    # Oracle fallback: traceback rows must be its own.
                    compiled_outcome = ("oracle", None)
            verdict, compiled = compiled_outcome
            if verdict == "inapplicable":
                row.update(status=STATUS_INAPPLICABLE, error=compiled)
                rows[index] = _tag(row)
                continue
            if verdict == "oracle":
                continue
            if program is None:
                # The planner proved crashes == 0; a schedule appearing
                # anyway means the proof is stale — trust the oracle tiers.
                _require(compiled.crash_schedule is None, "crash schedule")
                program = _CellProgram(
                    np, run, model, parameters, config, compiled.byzantine
                )
            viable.append(index)
            prepared.append(row)

        if program is None or not viable:
            return rows
        results = program.execute([runs[index].seed for index in viable])
    except _Demote:
        return None
    except Exception:
        return None  # any array-program surprise: demote, never fabricate

    for row, result in zip(prepared, results):
        report = evaluate_properties(
            decided_values=result["decided_values"],
            initial_values=result["initial_values"],
            byzantine=result["byzantine"],
            correct=result["correct"],
        )
        row.update(
            decided=result["decided"],
            rounds=result["rounds"],
            phases=None,  # timed-only tier; phases is a lockstep metric
            time_to_decision=result["time_to_decision"],
            messages_sent=result["messages_sent"],
            messages_delivered=result["messages_delivered"],
            messages_dropped=result["messages_dropped"],
            **report,
        )
    for index, row in zip(viable, prepared):
        rows[index] = _tag(row)
    return rows


def _tag(row: Row) -> Row:
    row["_backend"] = "columnar-state"
    return row
