"""Round schedulers: the timing discipline of an execution.

A :class:`RoundScheduler` answers one question per round: given what every
live process put on the wire, what does each receiver's inbox contain — and,
if rounds are timed, when does the round end?

* :class:`LockstepScheduler` wraps a
  :class:`~repro.rounds.policies.DeliveryPolicy`: rounds are untimed and an
  oracle realizes the communication predicate in force (``Pgood``/``Pcons``
  in good periods, adversarial behaviours in bad ones).
* :class:`TimedScheduler` paces rounds with a common duration Δ over a
  :class:`~repro.eventsim.network.PartialSynchronyNetwork`: messages sent at
  the round's start arrive after a sampled latency and are delivered only if
  they meet the round deadline (communication-closed rounds — late messages
  are discarded).  Byzantine equivocation in selection rounds is
  canonicalized to one payload per sender, as an implemented ``Pcons``
  would enforce; stretch ``selection_round_factor`` to model the extra
  micro-rounds such an implementation costs.

Both schedulers inherit the no-impersonation guarantee from the outbound
matrix they receive: a payload delivered as coming from ``q`` was produced
by ``q`` in this round.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.types import ProcessId, RoundInfo, RoundKind
from repro.rounds.base import DeliveryMatrix, OutboundMatrix, RunContext
from repro.rounds.policies import DeliveryPolicy, ReliablePolicy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.eventsim.network import PartialSynchronyNetwork

#: Per-message admission test for timed rounds: ``(info, sender, dest, ctx)``
#: → deliver?  Scenario compilation uses this to host round-schedule
#: behaviours (partitions, loss, GST prefixes) on the timed engine; a
#: rejected message counts as dropped before any latency is sampled.
DeliveryFilter = Callable[[RoundInfo, ProcessId, ProcessId, RunContext], bool]


@dataclass(frozen=True)
class RoundDelivery:
    """What a scheduler decided for one round."""

    #: receiver → (sender → payload).
    matrix: DeliveryMatrix
    #: Messages discarded (timed rounds: missed the deadline).
    dropped: int = 0
    #: Simulated end time of the round; ``None`` for untimed disciplines.
    end_time: Optional[float] = None


class RoundScheduler(abc.ABC):
    """Strategy deciding delivery (and pacing) of each round.

    A scheduler may carry per-run state (the timed scheduler tracks the
    simulated clock and in-flight messages); the kernel calls :meth:`reset`
    when it binds a scheduler, so one scheduler object can safely be reused
    across runs.
    """

    def reset(self) -> None:
        """Clear per-run state; called when a kernel binds this scheduler."""

    @abc.abstractmethod
    def deliver_round(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        """Turn the round's outbound matrix into its delivery outcome."""


class LockstepScheduler(RoundScheduler):
    """Untimed rounds delegated to a delivery policy (oracle predicates)."""

    def __init__(self, policy: Optional[DeliveryPolicy] = None) -> None:
        self._policy = policy or ReliablePolicy()

    @property
    def policy(self) -> DeliveryPolicy:
        return self._policy

    def deliver_round(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        matrix = self._policy.deliver(info, outbound, ctx)
        # A policy withholds by omission; count each sent edge that did not
        # reach its destination as dropped, so sent == delivered + dropped
        # holds on both scheduler branches.  Edge-exact (not a count
        # difference) because a Pcons oracle may also *inject* deliveries —
        # fanning a sender's canonical payload to audience members it never
        # addressed — and dropped must never go negative from that.
        dropped = 0
        get = matrix.get
        empty: Dict[ProcessId, object] = {}
        for sender, messages in outbound.items():
            for dest in messages:
                if sender not in get(dest, empty):
                    dropped += 1
        return RoundDelivery(matrix, dropped=dropped)


class TimedScheduler(RoundScheduler):
    """Δ-paced rounds with deadline delivery over a timed network."""

    def __init__(
        self,
        network: "PartialSynchronyNetwork",
        *,
        round_duration: float = 2.5,
        selection_round_factor: float = 1.0,
        delivery_filter: Optional[DeliveryFilter] = None,
    ) -> None:
        # Imported here: repro.eventsim.runtime (pulled in by the eventsim
        # package init) imports this module, so a module-level import of
        # repro.eventsim.events would be circular.
        from repro.eventsim.events import EventQueue

        if round_duration <= 0:
            raise ValueError(f"round_duration must be positive, got {round_duration}")
        self._network = network
        self._round_duration = round_duration
        self._selection_factor = selection_round_factor
        self._filter = delivery_filter
        self._queue = EventQueue()
        self._now = 0.0

    def reset(self) -> None:
        """Rewind the clock and drop in-flight messages (new run)."""
        self._queue.clear()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time (the deadline of the last round)."""
        return self._now

    def deliver_round(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        duration = self._round_duration
        if info.kind is RoundKind.SELECTION:
            duration *= self._selection_factor
        deadline = self._now + duration

        # Send step at the round's start; sample per-message transit times.
        # The filter branch is hoisted out of the loop: filter-free runs
        # (every pre-scenario caller) pay nothing per message.
        canonical: Dict[ProcessId, object] = {}
        dropped = 0
        flt = self._filter
        if flt is None:
            for sender, messages in outbound.items():
                for dest, payload in messages.items():
                    if info.kind is RoundKind.SELECTION and sender in ctx.byzantine:
                        # Pcons canonicalization: one payload per Byzantine
                        # sender within a selection round.
                        payload = canonical.setdefault(sender, payload)
                    transit = self._network.transit_time(self._now, sender, dest)
                    # Communication closure applies to every receiver,
                    # Byzantine included: a message missing its deadline is
                    # dropped.
                    if self._now + transit <= deadline:
                        self._queue.push(self._now + transit, (dest, sender, payload))
                    else:
                        dropped += 1
        else:
            for sender, messages in outbound.items():
                canonicalize = (
                    info.kind is RoundKind.SELECTION and sender in ctx.byzantine
                )
                for dest, payload in messages.items():
                    if canonicalize:
                        # Canonicalize *before* the delivery filter: the
                        # payload an equivocator is pinned to must not
                        # depend on which edge survives a partition, or the
                        # filtered run diverges from the filter-free one.
                        payload = canonical.setdefault(sender, payload)
                    if not flt(info, sender, dest, ctx):
                        # The scenario's communication schedule suppresses
                        # this edge (partition side, bad-period loss, …).
                        dropped += 1
                        continue
                    transit = self._network.transit_time(self._now, sender, dest)
                    if self._now + transit <= deadline:
                        self._queue.push(self._now + transit, (dest, sender, payload))
                    else:
                        dropped += 1

        # Deliver everything that makes the deadline, in arrival order.
        matrix: DeliveryMatrix = {}
        while self._queue:
            arrival = self._queue.peek_time()
            if arrival is None or arrival > deadline:
                break
            dest, sender, payload = self._queue.pop().payload
            matrix.setdefault(dest, {})[sender] = payload
        # Late messages are dropped: communication-closed rounds.
        dropped += self._queue.clear()

        self._now = deadline
        return RoundDelivery(matrix, dropped=dropped, end_time=deadline)
