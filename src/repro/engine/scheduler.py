"""Round schedulers: the timing discipline of an execution.

A :class:`RoundScheduler` answers one question per round: given what every
live process put on the wire, what does each receiver's inbox contain — and,
if rounds are timed, when does the round end?

* :class:`LockstepScheduler` wraps a
  :class:`~repro.rounds.policies.DeliveryPolicy`: rounds are untimed and an
  oracle realizes the communication predicate in force (``Pgood``/``Pcons``
  in good periods, adversarial behaviours in bad ones).
* :class:`TimedScheduler` paces rounds with a common duration Δ over a
  :class:`~repro.eventsim.network.PartialSynchronyNetwork`: messages sent at
  the round's start arrive after a sampled latency and are delivered only if
  they meet the round deadline (communication-closed rounds — late messages
  are discarded).  Byzantine equivocation in selection rounds is
  canonicalized to one payload per sender, as an implemented ``Pcons``
  would enforce; stretch ``selection_round_factor`` to model the extra
  micro-rounds such an implementation costs.

Within one round every ``(sender, dest)`` edge carries at most one message,
so the delivery matrix is independent of arrival order: the timed scheduler
therefore compares each sampled transit against the deadline directly —
O(m) per round, no event heap — while drawing latencies in exactly the
sender-major, dest-minor order the historical heap path used, so seeded
runs are unchanged.  Set ``REPRO_SLOW_SCHEDULER=1`` to force the legacy
:class:`~repro.eventsim.events.EventQueue` push/pop path (the identity
suite diffs the two); ``eventsim`` users that genuinely need ordered
arrival keep using :class:`EventQueue` directly.

Both schedulers inherit the no-impersonation guarantee from the outbound
matrix they receive: a payload delivered as coming from ``q`` was produced
by ``q`` in this round.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.types import ProcessId, RoundInfo, RoundKind
from repro.rounds.base import DeliveryMatrix, OutboundMatrix, RunContext
from repro.rounds.policies import DeliveryPolicy, ReliablePolicy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.eventsim.network import PartialSynchronyNetwork

#: Per-message admission test for timed rounds: ``(info, sender, dest, ctx)``
#: → deliver?  Scenario compilation uses this to host round-schedule
#: behaviours (partitions, loss, GST prefixes) on the timed engine; a
#: rejected message counts as dropped before any latency is sampled.
DeliveryFilter = Callable[[RoundInfo, ProcessId, ProcessId, RunContext], bool]

#: Environment switch selecting the legacy heap-ordered timed delivery.
SLOW_SCHEDULER_ENV = "REPRO_SLOW_SCHEDULER"


@dataclass(frozen=True)
class RoundDelivery:
    """What a scheduler decided for one round."""

    #: receiver → (sender → payload).
    matrix: DeliveryMatrix
    #: Messages discarded (timed rounds: missed the deadline).
    dropped: int = 0
    #: Simulated end time of the round; ``None`` for untimed disciplines.
    end_time: Optional[float] = None


class RoundScheduler(abc.ABC):
    """Strategy deciding delivery (and pacing) of each round.

    A scheduler may carry per-run state (the timed scheduler tracks the
    simulated clock and in-flight messages); the kernel calls :meth:`reset`
    when it binds a scheduler, so one scheduler object can safely be reused
    across runs.
    """

    #: Bound instrumentation registry, or ``None`` (the un-instrumented hot
    #: path — subclasses branch once per round on this, so the disabled
    #: path executes the exact pre-instrumentation code).
    _telemetry = None

    def set_telemetry(self, telemetry) -> None:
        """Bind (or, with ``None``, clear) the per-run telemetry registry.

        The kernel calls this every time it binds a scheduler, so a
        scheduler reused across runs never reports into a stale registry.
        """
        self._telemetry = telemetry

    def reset(self) -> None:
        """Clear per-run state; called when a kernel binds this scheduler."""

    @abc.abstractmethod
    def deliver_round(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        """Turn the round's outbound matrix into its delivery outcome."""


class LockstepScheduler(RoundScheduler):
    """Untimed rounds delegated to a delivery policy (oracle predicates)."""

    def __init__(self, policy: Optional[DeliveryPolicy] = None) -> None:
        self._policy = policy or ReliablePolicy()

    @property
    def policy(self) -> DeliveryPolicy:
        return self._policy

    def deliver_round(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        tel = self._telemetry
        if tel is None:
            return self._deliver(info, outbound, ctx)
        with tel.span("scheduler.deliver"):
            return self._deliver(info, outbound, ctx)

    def _deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        # A policy withholds by omission; each sent edge that did not reach
        # its destination counts as dropped, so sent == delivered + dropped
        # holds on both scheduler branches.  Exact-delivery policies report
        # the count themselves (deliver_counted); only policies that cannot
        # — an oracle enforcing Pcons may also *inject* deliveries, fanning
        # a sender's canonical payload to audience members it never
        # addressed — leave it to the edge-exact rescan below, which never
        # goes negative from such injections.
        matrix, dropped = self._policy.deliver_counted(info, outbound, ctx)
        if dropped is None:
            dropped = 0
            get = matrix.get
            empty: Dict[ProcessId, object] = {}
            for sender, messages in outbound.items():
                for dest in messages:
                    if sender not in get(dest, empty):
                        dropped += 1
        return RoundDelivery(matrix, dropped=dropped)


class _SampleTimingNetwork:
    """A timing proxy over :class:`PartialSynchronyNetwork` sampling calls.

    Instrumented timed rounds route latency sampling through this wrapper,
    which accounts each batched draw into a ``network.sample`` span (nested
    inside the scheduler's ``scheduler.deliver`` span).  The network object
    itself stays untouched, so the un-instrumented path pays nothing.
    ``constant_transit`` passes through un-timed: it is the zero-draw
    post-GST short-circuit, and timing it would misreport the phase it
    exists to skip.
    """

    __slots__ = ("_network", "_telemetry")

    def __init__(self, network, telemetry) -> None:
        self._network = network
        self._telemetry = telemetry

    def constant_transit(self, send_time: float):
        return self._network.constant_transit(send_time)

    def sample_fan(self, send_time: float, sender: ProcessId, dests):
        with self._telemetry.span("network.sample"):
            return self._network.sample_fan(send_time, sender, dests)

    def sample_round(self, send_time: float, edges):
        with self._telemetry.span("network.sample"):
            return self._network.sample_round(send_time, edges)


class TimedScheduler(RoundScheduler):
    """Δ-paced rounds with deadline delivery over a timed network."""

    def __init__(
        self,
        network: "PartialSynchronyNetwork",
        *,
        round_duration: float = 2.5,
        selection_round_factor: float = 1.0,
        delivery_filter: Optional[DeliveryFilter] = None,
        use_heap: Optional[bool] = None,
    ) -> None:
        if round_duration <= 0:
            raise ValueError(f"round_duration must be positive, got {round_duration}")
        self._network = network
        self._round_duration = round_duration
        self._selection_factor = selection_round_factor
        self._filter = delivery_filter
        # ``use_heap`` selects the legacy EventQueue delivery; it defaults
        # to the REPRO_SLOW_SCHEDULER environment switch so the identity
        # suite (and worried users) can diff the two paths end to end.
        if use_heap is None:
            use_heap = os.environ.get(SLOW_SCHEDULER_ENV, "") not in ("", "0")
        self._queue = None
        if use_heap:
            # Imported here: repro.eventsim.runtime (pulled in by the
            # eventsim package init) imports this module, so a module-level
            # import of repro.eventsim.events would be circular.
            from repro.eventsim.events import EventQueue

            self._queue = EventQueue()
        self._now = 0.0

    def reset(self) -> None:
        """Rewind the clock and drop in-flight messages (new run)."""
        if self._queue is not None:
            self._queue.clear()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time (the deadline of the last round)."""
        return self._now

    @property
    def delivery_filter(self) -> Optional[DeliveryFilter]:
        """The per-message admission test, or ``None`` (filter-free).

        Exposed so scenario compilation post-passes (the batch backend
        swaps in its columnar scheduler subclass) can rebuild an
        equivalent scheduler without reaching into private state.
        """
        return self._filter

    def deliver_round(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> RoundDelivery:
        duration = self._round_duration
        if info.kind is RoundKind.SELECTION:
            duration *= self._selection_factor
        deadline = self._now + duration
        tel = self._telemetry
        if tel is None:
            if self._queue is not None:
                return self._deliver_round_heap(info, outbound, ctx, deadline)
            return self._deliver_fast(
                info, outbound, ctx, deadline, self._network
            )
        with tel.span("scheduler.deliver"):
            if self._queue is not None:
                # The heap path samples through transit_time message by
                # message; attribution stays at the deliver-span level.
                return self._deliver_round_heap(info, outbound, ctx, deadline)
            return self._deliver_fast(
                info, outbound, ctx, deadline,
                _SampleTimingNetwork(self._network, tel),
            )

    def _deliver_fast(
        self,
        info: RoundInfo,
        outbound: OutboundMatrix,
        ctx: RunContext,
        deadline: float,
        network,
    ) -> RoundDelivery:
        """Heap-free deadline delivery; ``network`` may be a timing proxy."""
        now = self._now
        dropped = 0
        matrix: DeliveryMatrix = {}
        setdefault = matrix.setdefault
        is_selection = info.kind is RoundKind.SELECTION
        byzantine = ctx.byzantine
        flt = self._filter

        # Send and deliver in one sweep.  Within one round each edge
        # carries at most one message, so the matrix does not depend on
        # arrival order and the deadline test decides delivery directly —
        # no heap.  Latencies are drawn per sender fan-out in sender-major,
        # dest-minor order: draw-for-draw the order of the heap path.
        # Communication closure applies to every receiver, Byzantine
        # included: a message missing its deadline is dropped.
        constant = network.constant_transit(now)
        delivers_all = constant is not None and now + constant <= deadline
        if flt is None:
            for sender, messages in outbound.items():
                if not messages:
                    continue
                canonicalize = is_selection and sender in byzantine
                if constant is not None:
                    # Post-GST fixed latency: zero RNG draws, one test.
                    if not delivers_all:
                        dropped += len(messages)
                        continue
                    if canonicalize:
                        # Pcons canonicalization: one payload per
                        # Byzantine sender within a selection round.
                        payload = next(iter(messages.values()))
                        for dest in messages:
                            setdefault(dest, {})[sender] = payload
                    else:
                        for dest, payload in messages.items():
                            setdefault(dest, {})[sender] = payload
                    continue
                transits = network.sample_fan(now, sender, messages)
                if canonicalize:
                    payload = next(iter(messages.values()))
                    for dest, transit in zip(messages, transits):
                        if now + transit <= deadline:
                            setdefault(dest, {})[sender] = payload
                        else:
                            dropped += 1
                else:
                    for (dest, payload), transit in zip(messages.items(), transits):
                        if now + transit <= deadline:
                            setdefault(dest, {})[sender] = payload
                        else:
                            dropped += 1
        else:
            # Scenario runs: the filter admits edges *before* any latency
            # is sampled (a suppressed edge draws nothing, as on the heap
            # path).  The admitted (sender, dest, payload) records are
            # collected round-wide in sampling order and batched through
            # one sample_round call.
            canonical: Dict[ProcessId, object] = {}
            pending: List[Tuple[ProcessId, ProcessId, object]] = []
            admit = pending.append
            for sender, messages in outbound.items():
                canonicalize = is_selection and sender in byzantine
                for dest, payload in messages.items():
                    if canonicalize:
                        # Canonicalize *before* the delivery filter: the
                        # payload an equivocator is pinned to must not
                        # depend on which edge survives a partition, or the
                        # filtered run diverges from the filter-free one.
                        payload = canonical.setdefault(sender, payload)
                    if flt(info, sender, dest, ctx):
                        admit((sender, dest, payload))
                    else:
                        # The scenario's communication schedule suppresses
                        # this edge (partition side, bad-period loss, …).
                        dropped += 1
            if constant is not None:
                if delivers_all:
                    for sender, dest, payload in pending:
                        setdefault(dest, {})[sender] = payload
                else:
                    dropped += len(pending)
            elif pending:
                transits = network.sample_round(now, pending)
                for (sender, dest, payload), transit in zip(pending, transits):
                    if now + transit <= deadline:
                        setdefault(dest, {})[sender] = payload
                    else:
                        dropped += 1

        self._now = deadline
        return RoundDelivery(matrix, dropped=dropped, end_time=deadline)

    def _deliver_round_heap(
        self,
        info: RoundInfo,
        outbound: OutboundMatrix,
        ctx: RunContext,
        deadline: float,
    ) -> RoundDelivery:
        """The legacy event-heap delivery (REPRO_SLOW_SCHEDULER=1).

        Samples one transit per message through
        :meth:`~repro.eventsim.network.PartialSynchronyNetwork.transit_time`
        and delivers through the :class:`~repro.eventsim.events.EventQueue`
        in arrival order — O(m log m).  Kept verbatim as the oracle the
        byte-identity suite diffs the fast path against.
        """
        canonical: Dict[ProcessId, object] = {}
        dropped = 0
        flt = self._filter
        if flt is None:
            for sender, messages in outbound.items():
                for dest, payload in messages.items():
                    if info.kind is RoundKind.SELECTION and sender in ctx.byzantine:
                        payload = canonical.setdefault(sender, payload)
                    transit = self._network.transit_time(self._now, sender, dest)
                    if self._now + transit <= deadline:
                        self._queue.push(self._now + transit, (dest, sender, payload))
                    else:
                        dropped += 1
        else:
            for sender, messages in outbound.items():
                canonicalize = (
                    info.kind is RoundKind.SELECTION and sender in ctx.byzantine
                )
                for dest, payload in messages.items():
                    if canonicalize:
                        payload = canonical.setdefault(sender, payload)
                    if not flt(info, sender, dest, ctx):
                        dropped += 1
                        continue
                    transit = self._network.transit_time(self._now, sender, dest)
                    if self._now + transit <= deadline:
                        self._queue.push(self._now + transit, (dest, sender, payload))
                    else:
                        dropped += 1

        matrix: DeliveryMatrix = {}
        while self._queue:
            arrival = self._queue.peek_time()
            if arrival is None or arrival > deadline:
                break
            dest, sender, payload = self._queue.pop().payload
            matrix.setdefault(dest, {})[sender] = payload
        dropped += self._queue.clear()

        self._now = deadline
        return RoundDelivery(matrix, dropped=dropped, end_time=deadline)
