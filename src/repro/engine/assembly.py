"""Instance assembly: build one consensus instance, usable by any scheduler.

:func:`build_instance` performs the setup every execution path used to
duplicate: validate the fault budget, build honest
:class:`~repro.core.process.GenericConsensusProcess` instances and Byzantine
strategies, derive the :class:`~repro.core.process.RoundStructure`, and
create the shared :class:`~repro.rounds.base.RunContext`.  The resulting
:class:`Instance` also carries the canonical decision probe and state
snapshot observer, so equivocation handling and decision detection are
identical under every timing discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Mapping, Optional

from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.types import Decision, Flag, ProcessId, RoundInfo, Value
from repro.faults.registry import ByzantineSpec, build_byzantine
from repro.rounds.base import RoundProcess, RunContext

#: Per-process configuration factory (randomized runs give each process an
#: independent coin, so they cannot share one config object).
ConfigFactory = Callable[[ProcessId], GenericConsensusConfig]


@lru_cache(maxsize=64)
def _shared_structure(flag: Flag, skip_first_selection: bool) -> RoundStructure:
    """One :class:`RoundStructure` per (flag, skip) pair.

    Structures are immutable after construction, and campaign sweeps build
    thousands of instances with the same two parameters — sharing also keeps
    the round-info memo warm across runs.
    """
    return RoundStructure(flag, skip_first_selection=skip_first_selection)


@dataclass
class Instance:
    """One fully-assembled consensus instance, ready for any scheduler."""

    parameters: ConsensusParameters
    config: GenericConsensusConfig
    structure: RoundStructure
    processes: Dict[ProcessId, RoundProcess]
    initial_values: Dict[ProcessId, Value]
    context: RunContext

    @property
    def honest_processes(self) -> Dict[ProcessId, GenericConsensusProcess]:
        return {
            pid: process
            for pid, process in self.processes.items()
            if isinstance(process, GenericConsensusProcess)
        }

    def decision_probe(
        self, pid: ProcessId, process: RoundProcess, info: RoundInfo
    ) -> Optional[Decision]:
        """First decision of an honest process, tagged with round and phase."""
        if isinstance(process, GenericConsensusProcess) and process.has_decided:
            round_number = process.decision_round or info.number
            return Decision(
                process=pid,
                value=process.decided,
                round=round_number,
                phase=self.structure.info(round_number).phase,
            )
        return None

    def snapshot(self, pid: ProcessId, process: RoundProcess) -> object:
        """State snapshot observer for full-trace runs."""
        if isinstance(process, GenericConsensusProcess):
            return process.state.snapshot()
        return None


def build_instance(
    parameters: ConsensusParameters,
    initial_values: Mapping[ProcessId, Value],
    *,
    config: Optional[GenericConsensusConfig] = None,
    byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
    config_for: Optional[ConfigFactory] = None,
) -> Instance:
    """Assemble processes, strategies and context for one instance.

    ``initial_values`` must provide a proposal for every honest process;
    ``byzantine`` maps process ids to strategies (at most ``b`` entries).
    ``config_for`` overrides ``config`` per honest process (``config`` still
    determines the round structure).
    """
    model = parameters.model
    config = config or GenericConsensusConfig()
    byzantine = dict(byzantine or {})
    if len(byzantine) > model.b:
        raise ValueError(
            f"{len(byzantine)} Byzantine processes exceed b={model.b}"
        )

    structure = _shared_structure(parameters.flag, config.skip_first_selection)

    processes: Dict[ProcessId, RoundProcess] = {}
    initials: Dict[ProcessId, Value] = {}
    for pid in model.processes:
        if pid in byzantine:
            processes[pid] = build_byzantine(pid, byzantine[pid], parameters)
            continue
        if pid not in initial_values:
            raise ValueError(f"missing initial value for honest process {pid}")
        initials[pid] = initial_values[pid]
        processes[pid] = GenericConsensusProcess(
            pid,
            initial_values[pid],
            parameters,
            config_for(pid) if config_for is not None else config,
        )

    context = RunContext(model, byzantine=frozenset(byzantine))
    return Instance(
        parameters=parameters,
        config=config,
        structure=structure,
        processes=processes,
        initial_values=initials,
        context=context,
    )
