"""The unified execution kernel: one assembly + scheduler architecture.

The paper's generic algorithm is a single transition system that can be
executed under different *timing disciplines*.  This package factors every
execution path into three orthogonal pieces:

* **Assembly** (:mod:`repro.engine.assembly`) — :func:`build_instance`
  assembles honest processes, Byzantine strategies, and the round structure
  into an :class:`Instance`, exactly once, for every discipline.
* **Scheduling** (:mod:`repro.engine.scheduler`) — a
  :class:`RoundScheduler` decides what each round's send step puts into
  each receiver's inbox: :class:`LockstepScheduler` applies a delivery
  policy (the oracle communication predicates of Section 2.1);
  :class:`TimedScheduler` paces rounds with a duration Δ and delivers only
  the messages whose sampled latency meets the round deadline
  (communication-closed rounds over partial synchrony).
* **Observation** (:mod:`repro.engine.kernel` /
  :mod:`repro.engine.outcome`) — the :class:`ExecutionKernel` runs the
  round loop once for all disciplines and reports a unified
  :class:`Outcome`.  ``observe="full"`` records an execution trace with
  per-round predicate evaluations; ``observe="metrics"`` skips all
  per-round record construction — the hot path for campaign sweeps.
* **Batching** (:mod:`repro.engine.batch`) — whole campaign cells execute
  as array programs: seed-independent cells replicate one representative
  run, seed-dependent timed cells advance B kernels in lockstep over
  block-capable RNG streams, and everything else falls back to the
  per-run scalar oracle, byte for byte.

``repro.core.run.run_consensus`` and
``repro.eventsim.runtime.run_timed_consensus`` are thin compatibility
wrappers over this kernel.
"""

from repro.engine.assembly import Instance, build_instance
from repro.engine.kernel import (
    OBSERVE_FULL,
    OBSERVE_METRICS,
    OBSERVE_PROFILE,
    ExecutionKernel,
    kernel_outcome,
    run_instance,
)
from repro.engine.outcome import Outcome
from repro.engine.scheduler import (
    LockstepScheduler,
    RoundDelivery,
    RoundScheduler,
    TimedScheduler,
)

#: Batch-backend names re-exported lazily (PEP 562): ``repro.engine.batch``
#: imports campaign specs, which import algorithm builders, which import
#: this package — an eager import here would close that cycle during
#: interpreter start-up.
_BATCH_EXPORTS = frozenset(
    {
        "BatchPlan",
        "ColumnarTimedScheduler",
        "cell_key",
        "plan_cell",
        "plan_for_run",
        "run_batch",
    }
)


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.engine import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchPlan",
    "ColumnarTimedScheduler",
    "ExecutionKernel",
    "Instance",
    "LockstepScheduler",
    "OBSERVE_FULL",
    "OBSERVE_METRICS",
    "OBSERVE_PROFILE",
    "Outcome",
    "RoundDelivery",
    "RoundScheduler",
    "TimedScheduler",
    "build_instance",
    "cell_key",
    "kernel_outcome",
    "plan_cell",
    "plan_for_run",
    "run_batch",
    "run_instance",
]
