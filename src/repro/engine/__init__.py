"""The unified execution kernel: one assembly + scheduler architecture.

The paper's generic algorithm is a single transition system that can be
executed under different *timing disciplines*.  This package factors every
execution path into three orthogonal pieces:

* **Assembly** (:mod:`repro.engine.assembly`) — :func:`build_instance`
  assembles honest processes, Byzantine strategies, and the round structure
  into an :class:`Instance`, exactly once, for every discipline.
* **Scheduling** (:mod:`repro.engine.scheduler`) — a
  :class:`RoundScheduler` decides what each round's send step puts into
  each receiver's inbox: :class:`LockstepScheduler` applies a delivery
  policy (the oracle communication predicates of Section 2.1);
  :class:`TimedScheduler` paces rounds with a duration Δ and delivers only
  the messages whose sampled latency meets the round deadline
  (communication-closed rounds over partial synchrony).
* **Observation** (:mod:`repro.engine.kernel` /
  :mod:`repro.engine.outcome`) — the :class:`ExecutionKernel` runs the
  round loop once for all disciplines and reports a unified
  :class:`Outcome`.  ``observe="full"`` records an execution trace with
  per-round predicate evaluations; ``observe="metrics"`` skips all
  per-round record construction — the hot path for campaign sweeps.

``repro.core.run.run_consensus`` and
``repro.eventsim.runtime.run_timed_consensus`` are thin compatibility
wrappers over this kernel.
"""

from repro.engine.assembly import Instance, build_instance
from repro.engine.kernel import (
    OBSERVE_FULL,
    OBSERVE_METRICS,
    OBSERVE_PROFILE,
    ExecutionKernel,
    run_instance,
)
from repro.engine.outcome import Outcome
from repro.engine.scheduler import (
    LockstepScheduler,
    RoundDelivery,
    RoundScheduler,
    TimedScheduler,
)

__all__ = [
    "ExecutionKernel",
    "Instance",
    "LockstepScheduler",
    "OBSERVE_FULL",
    "OBSERVE_METRICS",
    "OBSERVE_PROFILE",
    "Outcome",
    "RoundDelivery",
    "RoundScheduler",
    "TimedScheduler",
    "build_instance",
    "run_instance",
]
