"""The execution kernel: one round loop for every timing discipline.

:class:`ExecutionKernel` advances all processes round by round:

1. ask every live process for its outbound messages (``S_p^r``),
2. apply the crash schedule (a crashing process's last sends may be cut),
3. hand the outbound matrix to the :class:`~repro.engine.scheduler.RoundScheduler`
   (which realizes the communication predicate or the round deadline),
4. deliver and apply transition functions (``T_p^r``),
5. probe for new decisions and — in ``observe="full"`` mode — evaluate the
   communication predicates over what actually happened and append a
   :class:`~repro.analysis.trace.RoundRecord` to the trace.

``observe="metrics"`` skips step 5's record construction entirely: no
:class:`RoundRecord`, no trace, no predicate evaluation, no snapshot dicts —
only decisions and message counters.  This is the hot path campaign sweeps
run on.

The kernel guarantees *no impersonation*: a payload delivered as coming from
``q`` was produced by ``q`` in this round (Byzantine senders choose payloads
freely but cannot relabel them).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.analysis.trace import ExecutionTrace, RoundRecord
from repro.core.types import Decision, FaultModel, ProcessId, Round, RoundInfo
from repro.engine.outcome import Outcome
from repro.engine.scheduler import RoundScheduler
from repro.faults.crash import CrashSchedule
from repro.observability.telemetry import Telemetry
from repro.rounds.base import OutboundMatrix, RoundProcess, RunContext
from repro.rounds.predicates import check_pcons, check_pgood, check_prel

#: Record a full execution trace (one RoundRecord per round, predicates,
#: optional snapshots) — what interactive runs and invariant tests need.
OBSERVE_FULL = "full"
#: Record only decisions and message counters — the campaign hot path.
OBSERVE_METRICS = "metrics"
#: Metrics plus phase-time telemetry spans — no trace objects, but every
#: round's send/deliver/sample/apply/probe phases are wall-timed into the
#: run's :class:`~repro.observability.telemetry.Telemetry` registry.
OBSERVE_PROFILE = "profile"

OBSERVE_MODES = (OBSERVE_FULL, OBSERVE_METRICS, OBSERVE_PROFILE)

#: Maps a global round number to its (phase, kind) description.
RoundInfoFn = Callable[[Round], RoundInfo]

#: Optional observer: (pid, process) → state snapshot for the trace.
SnapshotFn = Callable[[ProcessId, RoundProcess], object]

#: Optional decision probe: (pid, process, info) → Decision or None.
DecisionProbe = Callable[[ProcessId, RoundProcess, RoundInfo], Optional[Decision]]

#: Early-stop test, applied to the kernel after every round.
StopWhen = Callable[["ExecutionKernel"], bool]


class ExecutionKernel:
    """Deterministic execution of round processes under one scheduler."""

    def __init__(
        self,
        model: FaultModel,
        processes: Mapping[ProcessId, RoundProcess],
        scheduler: RoundScheduler,
        round_info_fn: RoundInfoFn,
        *,
        context: Optional[RunContext] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        snapshot_fn: Optional[SnapshotFn] = None,
        decision_probe: Optional[DecisionProbe] = None,
        record_snapshots: bool = False,
        observe: str = OBSERVE_FULL,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if set(processes) != set(model.processes):
            raise ValueError(
                f"processes must cover exactly 0..{model.n - 1}, "
                f"got {sorted(processes)}"
            )
        if observe not in OBSERVE_MODES:
            raise ValueError(
                f"unknown observe mode {observe!r}; known: {OBSERVE_MODES}"
            )
        self._model = model
        self._processes = dict(processes)
        self._scheduler = scheduler
        scheduler.reset()  # schedulers may carry per-run state (clock, queue)
        # Always (re)bound, so a scheduler reused across runs never reports
        # into a stale registry; ``None`` keeps both the kernel and the
        # scheduler on their exact un-instrumented code paths.
        self._telemetry = telemetry
        scheduler.set_telemetry(telemetry)
        self._round_info_fn = round_info_fn
        self._context = context or RunContext(model)
        self._crashes = crash_schedule or CrashSchedule.none(model)
        self._has_crashes = bool(self._crashes.doomed)
        self._pid_set = frozenset(model.processes)
        self._snapshot_fn = snapshot_fn
        self._decision_probe = decision_probe
        self._record_snapshots = record_snapshots
        self._observe = observe
        self._trace: Optional[ExecutionTrace] = (
            ExecutionTrace() if observe == OBSERVE_FULL else None
        )
        self._next_round: Round = 1
        self._rounds_executed = 0
        self._decisions: Dict[ProcessId, Decision] = {}
        self._decision_times: Dict[ProcessId, float] = {}
        # Honest processes whose first decision has not fired yet — the
        # probe scans only these.
        self._undecided: Dict[ProcessId, RoundProcess] = {
            pid: process
            for pid, process in self._processes.items()
            if pid not in self._context.byzantine
        }
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._simulated_time: Optional[float] = None
        # Processes doomed to crash are not "correct" in the model's sense:
        # predicates only protect processes that never crash.
        self._eventually_correct = frozenset(
            pid
            for pid in model.processes
            if pid not in self._context.byzantine and pid not in self._crashes.doomed
        )

    # -- read-only state ---------------------------------------------------

    @property
    def context(self) -> RunContext:
        return self._context

    @property
    def scheduler(self) -> RoundScheduler:
        return self._scheduler

    @property
    def observe(self) -> str:
        return self._observe

    @property
    def trace(self) -> Optional[ExecutionTrace]:
        """The execution trace; ``None`` in metrics mode."""
        return self._trace

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The bound instrumentation registry; ``None`` when disabled."""
        return self._telemetry

    @property
    def decisions(self) -> Dict[ProcessId, Decision]:
        """First decision of each process so far."""
        return self._decisions

    @property
    def decision_times(self) -> Dict[ProcessId, float]:
        """pid → simulated decision time (timed schedulers only)."""
        return self._decision_times

    @property
    def rounds_executed(self) -> int:
        return self._rounds_executed

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped

    @property
    def simulated_time(self) -> Optional[float]:
        """End time of the last executed round; ``None`` if untimed."""
        return self._simulated_time

    @property
    def eventually_correct(self) -> frozenset:
        """Honest processes that never crash during this run."""
        return self._eventually_correct

    # -- the round loop ----------------------------------------------------

    def _collect_outbound(self, info: RoundInfo) -> OutboundMatrix:
        n = self._model.n
        pid_set = self._pid_set
        has_crashes = self._has_crashes
        outbound: OutboundMatrix = {}
        for pid, process in self._processes.items():
            if has_crashes and self._crashes.is_down(pid, info.number):
                continue
            raw = process.send(info)
            if has_crashes:
                raw = self._crashes.filter_outbound(pid, info.number, raw)
            # Drop messages addressed outside Π (defensive); the well-formed
            # common case is kept without copying.
            if raw.keys() <= pid_set:
                outbound[pid] = raw
            else:
                outbound[pid] = {
                    dest: payload
                    for dest, payload in raw.items()
                    if 0 <= dest < n
                }
        return outbound

    def _apply_transitions_fast(self, info: RoundInfo, matrix) -> None:
        """Crash-free transition step (no per-process schedule checks)."""
        empty: Dict[ProcessId, object] = {}
        get = matrix.get
        for pid, process in self._processes.items():
            process.receive(info, get(pid, empty))

    def _apply_transitions(self, info: RoundInfo, matrix) -> None:
        for pid, process in self._processes.items():
            if self._crashes.is_down(pid, info.number):
                continue
            event = self._crashes.event_for(pid)
            if event is not None and info.number >= event.round:
                # The process crashed during its send step this round; it
                # performs no transition and is marked crashed.
                self._context.mark_crashed(pid)
                continue
            process.receive(info, matrix.get(pid, {}))

    def _probe_decisions(
        self, info: RoundInfo, end_time: Optional[float]
    ) -> tuple:
        if self._decision_probe is None or not self._undecided:
            return ()
        fired = []
        for pid, process in list(self._undecided.items()):
            decision = self._decision_probe(pid, process, info)
            if decision is not None:
                fired.append(decision)
                self._decisions[pid] = decision
                del self._undecided[pid]
                if end_time is not None:
                    self._decision_times[pid] = end_time
        return tuple(fired)

    def step(self) -> Optional[RoundRecord]:
        """Execute one round; returns its record (``None`` in metrics mode)."""
        if self._telemetry is not None:
            return self._step_profiled(self._telemetry)
        info = self._round_info_fn(self._next_round)
        outbound = self._collect_outbound(info)
        delivery = self._scheduler.deliver_round(info, outbound, self._context)
        matrix = delivery.matrix
        if self._has_crashes:
            self._apply_transitions(info, matrix)
        else:
            self._apply_transitions_fast(info, matrix)
        fired = self._probe_decisions(info, delivery.end_time)
        return self._account(info, outbound, delivery, fired)

    def _step_profiled(self, tel: Telemetry) -> Optional[RoundRecord]:
        """The instrumented round: each phase wall-timed into a span.

        The scheduler opens its own ``scheduler.deliver`` span (with a
        nested ``network.sample`` span on the timed engine), so the round's
        phase attribution is: ``kernel.send`` (collect the outbound
        matrix), ``scheduler.deliver``, ``kernel.apply`` (transition
        functions), ``kernel.probe`` (decision probes) and
        ``kernel.observe`` (message accounting plus — in full mode —
        predicate evaluation and trace recording).
        """
        info = self._round_info_fn(self._next_round)
        with tel.span("kernel.send"):
            outbound = self._collect_outbound(info)
        delivery = self._scheduler.deliver_round(info, outbound, self._context)
        matrix = delivery.matrix
        with tel.span("kernel.apply"):
            if self._has_crashes:
                self._apply_transitions(info, matrix)
            else:
                self._apply_transitions_fast(info, matrix)
        with tel.span("kernel.probe"):
            fired = self._probe_decisions(info, delivery.end_time)
        with tel.span("kernel.observe"):
            return self._account(info, outbound, delivery, fired)

    def _account(
        self, info: RoundInfo, outbound: OutboundMatrix, delivery, fired
    ) -> Optional[RoundRecord]:
        """Fold one delivered round into counters (and the trace, if any)."""
        matrix = delivery.matrix
        sent = sum(map(len, outbound.values()))
        delivered = sum(map(len, matrix.values()))
        self._messages_sent += sent
        self._messages_delivered += delivered
        self._messages_dropped += delivery.dropped
        if self._telemetry is not None:
            # Per-round delivery volume as a histogram: instrumented runs
            # get p50/p95/p99 columns in the phase table for free.  The
            # un-instrumented path never reaches this branch.
            self._telemetry.observe("round.delivered", float(delivered))
        if delivery.end_time is not None:
            self._simulated_time = delivery.end_time
        self._next_round += 1
        self._rounds_executed += 1

        if self._trace is None:
            return None
        correct = self._eventually_correct
        minimum = self._model.n - self._model.b - self._model.f
        record = RoundRecord(
            info=info,
            sent_count=sent,
            delivered_count=delivered,
            pgood=check_pgood(outbound, matrix, correct),
            pcons=check_pcons(outbound, matrix, correct),
            prel=check_prel(matrix, correct, minimum),
            snapshots=(
                {
                    pid: self._snapshot_fn(pid, process)
                    for pid, process in self._processes.items()
                    if pid not in self._context.byzantine
                }
                if (self._record_snapshots and self._snapshot_fn is not None)
                else {}
            ),
            decisions=fired,
        )
        self._trace.append(record)
        return record

    def run(
        self, max_rounds: int, *, stop_when: Optional[StopWhen] = None
    ) -> "ExecutionKernel":
        """Run up to ``max_rounds`` rounds, early-stopping on ``stop_when``."""
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        executed = 0
        while executed < max_rounds:
            self.step()
            executed += 1
            if stop_when is not None and stop_when(self):
                break
        return self


def run_instance(
    instance,
    scheduler: RoundScheduler,
    *,
    max_phases: int = 30,
    observe: str = OBSERVE_FULL,
    crash_schedule: Optional[CrashSchedule] = None,
    record_snapshots: Optional[bool] = None,
    stop_when: Optional[StopWhen] = None,
    telemetry: Optional[Telemetry] = None,
) -> Outcome:
    """Run one assembled :class:`~repro.engine.assembly.Instance` to completion.

    The run stops as soon as every eventually-correct process has decided,
    or after ``max_phases`` phases (override with ``stop_when``).
    ``record_snapshots`` defaults to the observation mode: full observation
    records per-round state snapshot dicts, metrics mode records nothing
    per-round (the compatibility wrappers pass their own explicit flag).
    ``observe="profile"`` instruments the run (a fresh
    :class:`~repro.observability.telemetry.Telemetry` is created when none
    is passed); any mode accepts an explicit ``telemetry`` registry, which
    comes back as ``Outcome.telemetry``.
    """
    if record_snapshots is None:
        record_snapshots = observe == OBSERVE_FULL
    if telemetry is None and observe == OBSERVE_PROFILE:
        telemetry = Telemetry()
    kernel = ExecutionKernel(
        instance.parameters.model,
        instance.processes,
        scheduler,
        instance.structure.info,
        context=instance.context,
        crash_schedule=crash_schedule,
        snapshot_fn=instance.snapshot,
        decision_probe=instance.decision_probe,
        record_snapshots=record_snapshots,
        observe=observe,
        telemetry=telemetry,
    )
    if stop_when is None:
        target = kernel.eventually_correct

        def stop_when(k: ExecutionKernel) -> bool:
            return target <= set(k.decisions)

    kernel.run(
        instance.structure.rounds_for_phases(max_phases), stop_when=stop_when
    )
    return kernel_outcome(instance, kernel)


def kernel_outcome(instance, kernel: ExecutionKernel) -> Outcome:
    """Package a finished kernel's state as an :class:`Outcome`.

    Shared by :func:`run_instance` and the batch backend's lockstep sweep
    (which drives many kernels round by round itself and finalizes each one
    here), so both paths produce structurally identical outcomes.
    """
    return Outcome(
        parameters=instance.parameters,
        structure=instance.structure,
        processes=instance.processes,
        initial_values=instance.initial_values,
        context=kernel.context,
        decisions=kernel.decisions,
        decision_times=kernel.decision_times,
        rounds_executed=kernel.rounds_executed,
        simulated_time=kernel.simulated_time,
        messages_sent=kernel.messages_sent,
        messages_delivered=kernel.messages_delivered,
        messages_dropped=kernel.messages_dropped,
        observe=kernel.observe,
        trace=kernel.trace,
        telemetry=kernel.telemetry,
    )
