"""The unified outcome of a kernel run.

One :class:`Outcome` type serves every timing discipline and observation
mode: decisions (with rounds and phases), timing metrics (for timed
schedulers), message accounting, the consensus property report, and — when
``observe="full"`` — the execution trace with per-round predicate
evaluations.  Fields that a given discipline cannot produce are ``None`` or
empty (e.g. ``decision_times`` under lockstep, ``trace`` in metrics mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.analysis.trace import ExecutionTrace
from repro.core.parameters import ConsensusParameters
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.types import Decision, ProcessId, Value
from repro.observability.telemetry import Telemetry
from repro.rounds.base import RoundProcess, RunContext


@dataclass
class Outcome:
    """Everything a caller might want to know about one kernel run."""

    parameters: ConsensusParameters
    structure: RoundStructure
    processes: Dict[ProcessId, RoundProcess]
    initial_values: Dict[ProcessId, Value]
    context: RunContext
    #: First decision of each honest process that decided.
    decisions: Dict[ProcessId, Decision]
    #: pid → simulated time of its decision (timed schedulers only).
    decision_times: Dict[ProcessId, float]
    rounds_executed: int
    #: Simulated end time of the run; ``None`` for untimed disciplines.
    simulated_time: Optional[float]
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    #: The observation mode the run used (``"full"`` or ``"metrics"``).
    observe: str
    #: Full execution trace; ``None`` in metrics mode.
    trace: Optional[ExecutionTrace] = None
    #: Phase-time instrumentation registry; set in ``observe="profile"``
    #: mode (or whenever the caller passed one) — ``None`` otherwise.
    telemetry: Optional[Telemetry] = None

    # -- decisions ---------------------------------------------------------

    @property
    def decided_values(self) -> set:
        """The set of values decided by any honest process."""
        return {decision.value for decision in self.decisions.values()}

    @property
    def decided_value(self) -> Optional[Value]:
        """The single agreed value, or ``None`` (no decision / disagreement).

        The SMR serving loop commits whole batches through this: one value
        per slot when agreement held, ``None`` routes to retry handling.
        """
        values = self.decided_values
        if len(values) == 1:
            return next(iter(values))
        return None

    @property
    def decided_value_by_process(self) -> Dict[ProcessId, Value]:
        return {pid: decision.value for pid, decision in self.decisions.items()}

    @property
    def honest_processes(self) -> Dict[ProcessId, GenericConsensusProcess]:
        return {
            pid: process
            for pid, process in self.processes.items()
            if isinstance(process, GenericConsensusProcess)
        }

    @property
    def rounds_to_first_decision(self) -> Optional[int]:
        rounds = [decision.round for decision in self.decisions.values()]
        return min(rounds) if rounds else None

    @property
    def rounds_to_last_decision(self) -> Optional[int]:
        rounds = [decision.round for decision in self.decisions.values()]
        return max(rounds) if rounds else None

    @property
    def phases_to_last_decision(self) -> Optional[int]:
        rounds = self.rounds_to_last_decision
        if rounds is None:
            return None
        return self.structure.info(rounds).phase

    # -- timing ------------------------------------------------------------

    @property
    def first_decision_time(self) -> Optional[float]:
        return min(self.decision_times.values()) if self.decision_times else None

    @property
    def last_decision_time(self) -> Optional[float]:
        return max(self.decision_times.values()) if self.decision_times else None

    # -- properties of the run ---------------------------------------------

    @property
    def agreement_holds(self) -> bool:
        """No two honest processes decided differently."""
        return len(self.decided_values) <= 1

    @property
    def all_correct_decided(self) -> bool:
        """Every correct (honest, never-crashed) process decided."""
        return all(pid in self.decisions for pid in self.context.correct)

    def validity_holds(self) -> bool:
        """If all processes are honest, decisions come from initial values."""
        if self.context.byzantine:
            return True
        initials = set(self.initial_values.values())
        return all(value in initials for value in self.decided_values)

    def unanimity_holds(self) -> bool:
        """If all honest processes proposed the same v, only v is decided."""
        honest = [
            value
            for pid, value in self.initial_values.items()
            if pid not in self.context.byzantine
        ]
        if len(set(honest)) != 1:
            return True
        (common,) = set(honest)
        return all(value == common for value in self.decided_values)

    def invariant_report(self) -> Mapping[str, bool]:
        """Boolean summary of agreement/validity/unanimity/termination.

        The campaign result store persists exactly this mapping, so every
        JSONL row carries the same property columns under both schedulers.
        """
        from repro.analysis.invariants import evaluate_properties

        return evaluate_properties(
            decided_values=self.decided_value_by_process,
            initial_values=self.initial_values,
            byzantine=self.context.byzantine,
            correct=self.context.correct,
        )
