"""Shared types for the generic consensus algorithm.

The paper expresses algorithms in a *communication-closed round model*
(Section 2.1): in round ``r`` each process sends messages according to a
sending function and, at the end of the round, applies a transition function
to the vector of messages received *in that round*.  Phases group rounds: a
phase ``φ`` contains a selection round (``3φ−2``), a validation round
(``3φ−1``, skipped when ``FLAG = *``) and a decision round (``3φ``).

Messages are immutable dataclasses.  Byzantine processes may send arbitrary
payloads, so every transition function parses messages defensively via the
``coerce_*`` helpers below, dropping anything malformed — this mirrors the
fact that a real implementation ignores unparseable bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Mapping, Optional, Tuple

#: Processes are identified by small integers ``0..n-1`` (the set Π).
ProcessId = int

#: Consensus proposals can be any hashable value.
Value = Hashable

#: Phases are numbered from 1 (phase ``φ`` in the paper).
Phase = int

#: Global round numbers are numbered from 1.
Round = int

#: A history is the set of ``(value, phase)`` pairs recorded at selection.
HistoryEntry = Tuple[Value, Phase]
History = FrozenSet[HistoryEntry]


class RoundKind(enum.Enum):
    """The role a round plays inside a phase."""

    SELECTION = "selection"
    VALIDATION = "validation"
    DECISION = "decision"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Flag(enum.Enum):
    """The paper's ``FLAG`` parameter.

    ``ANY`` corresponds to ``FLAG = *`` (all votes count in the decision
    round; the validation round is suppressed).  ``CURRENT_PHASE`` corresponds
    to ``FLAG = φ`` (only votes validated in the current phase count).
    """

    ANY = "*"
    CURRENT_PHASE = "phi"

    @property
    def needs_validation_round(self) -> bool:
        """True iff instantiations with this flag run a validation round."""
        return self is Flag.CURRENT_PHASE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SelectionMessage:
    """Line 7 of Algorithm 1: ``⟨vote, ts, history, Selector(p, φ)⟩``."""

    vote: Value
    ts: Phase
    history: History
    selector: FrozenSet[ProcessId]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sel(vote={self.vote!r}, ts={self.ts}, "
            f"|hist|={len(self.history)}, S={sorted(self.selector)})"
        )


@dataclass(frozen=True)
class ValidationMessage:
    """Line 19 of Algorithm 1: ``⟨select, validators⟩``."""

    select: Value
    validators: FrozenSet[ProcessId]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Val(select={self.select!r}, V={sorted(self.validators)})"


@dataclass(frozen=True)
class DecisionMessage:
    """Line 29 of Algorithm 1: ``⟨vote, ts⟩``."""

    vote: Value
    ts: Phase

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dec(vote={self.vote!r}, ts={self.ts})"


@dataclass(frozen=True)
class RoundInfo:
    """Static description of one round of the generic algorithm."""

    number: Round
    phase: Phase
    kind: RoundKind

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundInfo(r={self.number}, phase={self.phase}, {self.kind})"


@dataclass(frozen=True)
class Decision:
    """A decision event: which process decided which value and when."""

    process: ProcessId
    value: Value
    round: Round
    phase: Phase


def coerce_history(raw: object) -> Optional[History]:
    """Parse an untrusted history field into a frozen set of (value, phase).

    Returns ``None`` if the field is structurally invalid.  Entries must be
    pairs whose second element is a non-negative integer; values must be
    hashable (guaranteed if they sit inside a set already).
    """
    if isinstance(raw, (set, frozenset)):
        for entry in raw:
            if not isinstance(entry, tuple) or len(entry) != 2:
                return None
            phase = entry[1]
            if not isinstance(phase, int) or isinstance(phase, bool) or phase < 0:
                return None
        return raw if isinstance(raw, frozenset) else frozenset(raw)
    return None


def _validate_selection_message(raw: object) -> Optional[SelectionMessage]:
    if not isinstance(raw, SelectionMessage):
        return None
    if not isinstance(raw.ts, int) or isinstance(raw.ts, bool) or raw.ts < 0:
        return None
    history = coerce_history(raw.history)
    if history is None:
        return None
    if not isinstance(raw.selector, frozenset):
        return None
    if not all(isinstance(pid, int) and not isinstance(pid, bool) for pid in raw.selector):
        return None
    if history is not raw.history:
        return SelectionMessage(raw.vote, raw.ts, history, raw.selector)
    return raw


def _validate_validation_message(raw: object) -> Optional[ValidationMessage]:
    if not isinstance(raw, ValidationMessage):
        return None
    if not isinstance(raw.validators, frozenset):
        return None
    if not all(
        isinstance(pid, int) and not isinstance(pid, bool) for pid in raw.validators
    ):
        return None
    return raw


def _validate_decision_message(raw: object) -> Optional[DecisionMessage]:
    if not isinstance(raw, DecisionMessage):
        return None
    if not isinstance(raw.ts, int) or isinstance(raw.ts, bool) or raw.ts < 0:
        return None
    return raw


def _identity_cached(validate, exact_type: type, maxsize: int = 4096):
    """Memoize a payload validator by object identity.

    Rounds hand the same broadcast payload object to every receiver, so
    each of the n receivers would otherwise re-validate an identical
    message; this collapses that to one validation per payload object —
    one of the hot-path optimizations behind the kernel's metrics mode.

    Identity keying (rather than value keying) keeps the validators exact:
    the cached result is precisely what ``validate`` returned for *this*
    object, payloads need not be hashable (Byzantine senders can put
    anything on the wire), and id-reuse after garbage collection cannot
    alias because each entry pins the keyed object and re-checks ``is`` on
    lookup.  Only instances of exactly ``exact_type`` — a frozen dataclass,
    so field rebinding is impossible — are ever cached; every other payload
    (arbitrary garbage, user-defined subclasses with who-knows-what
    mutability) is re-validated on every delivery, as before.  A sender
    that mutates a frozen message's *container field* in place between
    rounds at worst replays its earlier payload — behaviour any Byzantine
    sender may exhibit anyway.
    """

    cache: dict = {}
    cache_get = cache.get

    def wrapper(raw: object):
        hit = cache_get(id(raw))
        if hit is not None and hit[0] is raw:
            return hit[1]
        result = validate(raw)
        if type(raw) is exact_type:
            if len(cache) >= maxsize:
                cache.clear()  # rare full flush; the next round re-warms it
            cache[id(raw)] = (raw, result)
        return result

    return wrapper


coerce_selection_message = _identity_cached(
    _validate_selection_message, SelectionMessage
)
coerce_selection_message.__name__ = "coerce_selection_message"
coerce_selection_message.__doc__ = """Validate an untrusted selection-round payload.

    Byzantine senders can put anything on the wire; honest transition
    functions only act on well-formed ``SelectionMessage`` instances whose
    timestamp is a non-negative int and whose history/selector fields are
    frozen sets of the right shape.
    """

coerce_validation_message = _identity_cached(
    _validate_validation_message, ValidationMessage
)
coerce_validation_message.__name__ = "coerce_validation_message"
coerce_validation_message.__doc__ = "Validate an untrusted validation-round payload."

coerce_decision_message = _identity_cached(
    _validate_decision_message, DecisionMessage
)
coerce_decision_message.__name__ = "coerce_decision_message"
coerce_decision_message.__doc__ = "Validate an untrusted decision-round payload."


@dataclass(frozen=True)
class FaultModel:
    """The resilience envelope ``(n, b, f)`` of Section 2.1.

    ``n`` processes, at most ``b`` Byzantine, at most ``f`` faulty (crashing)
    honest processes.  All bound checks in the library go through this object
    so the arithmetic of Table 1 lives in exactly one place.
    """

    n: int
    b: int = 0
    f: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.b < 0 or self.f < 0:
            raise ValueError(f"b and f must be non-negative, got b={self.b} f={self.f}")
        if self.b + self.f >= self.n:
            raise ValueError(
                f"need at least one correct process: n={self.n}, b={self.b}, f={self.f}"
            )

    @property
    def processes(self) -> range:
        """The set Π as a range ``0..n-1``."""
        return range(self.n)

    @property
    def max_decision_threshold(self) -> int:
        """Upper bound ``TD ≤ n − b − f`` required for termination."""
        return self.n - self.b - self.f

    def quorum_exceeds_half_plus_b(self, count: int) -> bool:
        """True iff ``count > (n + b) / 2`` (line 15 of Algorithm 1)."""
        return 2 * count > self.n + self.b

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        return f"n={self.n}, b={self.b}, f={self.f}"


@dataclass(frozen=True)
class MessageRecord:
    """One delivered message, as recorded in execution traces."""

    round: Round
    sender: ProcessId
    receiver: ProcessId
    payload: object


ReceivedVector = Mapping[ProcessId, object]
"""The vector ``μ_p^r`` of messages received by one process in one round.

Keys are sender ids; a sender absent from the mapping corresponds to ``⊥``
(no message received from that sender this round).
"""
