"""FLV for class 2 (Algorithm 3 of the paper).

Class 2 is characterized by ``FLAG = φ`` and ``TD > 3b + f``, which forces
``n > 4b + 2f``.  When ``TD ≤ (n + 3b + f)/2`` locked values can no longer be
detected from votes alone, so class 2 additionally uses the timestamp ``ts``
(the last phase in which the vote was validated).

Pseudocode (Algorithm 3, ``{# … #}`` denotes a multiset)::

    1: possibleVotes ← {# (vote, ts, −, −) ∈ μ :
           |{(vote′, ts′, −, −) ∈ μ : vote = vote′ ∨ ts > ts′}| > n − TD + b #}
    2: correctVotes ← {(vote, −) ∈ possibleVotes :
           |{(vote′, −) ∈ possibleVotes : vote = vote′}| > b}
    3: if |correctVotes| = 1 then return its vote
    5: else if |μ| > n − TD + 2b then return ?
    7: else return null

A message survives line 1 when the number of received messages that either
carry the same vote or a *strictly smaller* timestamp exceeds ``n − TD + b``;
this is exactly the masking-quorum condition under which the vote may have
been validated.  Line 2 discards votes that fewer than ``b + 1`` surviving
messages support, eliminating pure Byzantine fabrications (Figure 2 of the
paper, n=5, b=1, f=0, TD=4).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.flv import FLVFunction, FLVRequirements, FLVResult
from repro.core.types import FaultModel, SelectionMessage, Value
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE


def class2_min_threshold(model: FaultModel) -> int:
    """Smallest integer ``TD`` with ``TD > 3b + f``."""
    return 3 * model.b + model.f + 1


def class2_min_processes(b: int, f: int) -> int:
    """Smallest ``n`` satisfying the class-2 bound ``n > 4b + 2f``."""
    return 4 * b + 2 * f + 1


def mqb_threshold(model: FaultModel) -> int:
    """The MQB threshold ``TD = ⌈(n + 2b + 1)/2⌉`` (Section 5.2).

    Chosen (footnote 12/14) so that the same number of received messages
    makes both the decision condition (line 31 of Algorithm 1) and the ``?``
    condition (line 5 of Algorithm 3) hold.
    """
    return (model.n + 2 * model.b + 1 + 1) // 2


def survivors(
    messages: Sequence[SelectionMessage], slack: int
) -> List[SelectionMessage]:
    """Line 1 of Algorithms 3 and 4: the ``possibleVotes`` multiset.

    ``slack`` is ``n − TD + b``.  Kept module-level because class 3 reuses the
    identical condition.
    """
    kept = []
    for message in messages:
        support = sum(
            1
            for other in messages
            if other.vote == message.vote or message.ts > other.ts
        )
        if support > slack:
            kept.append(message)
    return kept


class FLVClass2(FLVFunction):
    """Algorithm 3: vote + timestamp locked-value detection."""

    name = "flv-class2"

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=True,
            uses_history=False,
            supports_prel_liveness=True,
        )

    def satisfies_liveness_bound(self) -> bool:
        """True iff ``TD > 3b + f`` (Theorem 3's liveness condition)."""
        return self.threshold > 3 * self._b + self.model.f

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        slack = self._slack  # n − TD + b
        possible = survivors(messages, slack)
        vote_support: dict[Value, int] = {}
        for message in possible:
            vote_support[message.vote] = vote_support.get(message.vote, 0) + 1
        correct_votes = [
            vote for vote, count in vote_support.items() if count > self._b
        ]
        if len(correct_votes) == 1:
            return correct_votes[0]
        if len(messages) > slack + self._b:  # |μ| > n − TD + 2b
            return ANY_VALUE
        return NULL_VALUE
