"""Table 1 of the paper, in code: the three classes of consensus algorithms.

Each class fixes ``FLAG`` and the lower bound on ``TD``; combining the bound
with the termination requirement ``TD ≤ n − b − f`` yields the resilience
bound on ``n``.  The module exposes:

* :class:`AlgorithmClass` — the class enumeration with all Table-1 columns,
* :func:`classify` — map a :class:`ConsensusParameters` to its class,
* :func:`build_class_parameters` — construct canonical parameters for a class
  at given ``(n, b, f)`` (used heavily by tests and the Table-1 bench).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.flv import FLVFunction
from repro.core.flv_class1 import FLVClass1, class1_min_threshold
from repro.core.flv_class2 import FLVClass2, class2_min_threshold
from repro.core.flv_class3 import FLVClass3, class3_min_threshold
from repro.core.parameters import ConsensusParameters, ParameterError
from repro.core.selector import AllProcessesSelector, Selector
from repro.core.types import FaultModel, Flag


@dataclass(frozen=True)
class ClassRow:
    """One row of Table 1."""

    flag: Flag
    #: (coefficient of n, coefficient of b, coefficient of f, divisor) in the
    #: strict lower bound ``TD · divisor > cn·n + cb·b + cf·f``.
    td_bound: Tuple[int, int, int, int]
    #: (coefficient of b, coefficient of f) in the strict bound on n.
    n_bound: Tuple[int, int]
    state: Tuple[str, ...]
    rounds_per_phase: int
    examples: Tuple[str, ...]


class AlgorithmClass(enum.Enum):
    """The three classes identified by the paper (Section 4, Table 1)."""

    CLASS_1 = 1
    CLASS_2 = 2
    CLASS_3 = 3

    @property
    def row(self) -> ClassRow:
        return _TABLE_1[self]

    @property
    def flag(self) -> Flag:
        return self.row.flag

    @property
    def rounds_per_phase(self) -> int:
        return self.row.rounds_per_phase

    @property
    def state(self) -> Tuple[str, ...]:
        return self.row.state

    @property
    def examples(self) -> Tuple[str, ...]:
        return self.row.examples

    def min_processes(self, b: int, f: int) -> int:
        """Smallest ``n`` satisfying the class's resilience bound."""
        cb, cf = self.row.n_bound
        return cb * b + cf * f + 1

    def td_strict_lower_bound(self, model: FaultModel) -> float:
        """The real-valued strict lower bound on ``TD`` for this class."""
        cn, cb, cf, divisor = self.row.td_bound
        return (cn * model.n + cb * model.b + cf * model.f) / divisor

    def min_threshold(self, model: FaultModel) -> int:
        """Smallest integer ``TD`` above the class's lower bound."""
        cn, cb, cf, divisor = self.row.td_bound
        return (cn * model.n + cb * model.b + cf * model.f) // divisor + 1

    def admits(self, model: FaultModel) -> bool:
        """True iff the class's bounds leave room for a valid ``TD``.

        Requires ``min_threshold ≤ n − b − f`` (termination) — equivalent to
        the ``n`` bound of Table 1.
        """
        return self.min_threshold(model) <= model.max_decision_threshold

    def make_flv(self, model: FaultModel, threshold: int) -> FLVFunction:
        """Construct the canonical FLV (Algorithms 2-4) for this class."""
        factory = {
            AlgorithmClass.CLASS_1: FLVClass1,
            AlgorithmClass.CLASS_2: FLVClass2,
            AlgorithmClass.CLASS_3: FLVClass3,
        }[self]
        return factory(model, threshold)


_TABLE_1 = {
    AlgorithmClass.CLASS_1: ClassRow(
        flag=Flag.ANY,
        td_bound=(1, 3, 1, 2),  # TD > (n + 3b + f)/2
        n_bound=(5, 3),  # n > 5b + 3f
        state=("vote",),
        rounds_per_phase=2,
        examples=("OneThirdRule (b=0)", "FaB Paxos (f=0)"),
    ),
    AlgorithmClass.CLASS_2: ClassRow(
        flag=Flag.CURRENT_PHASE,
        td_bound=(0, 3, 1, 1),  # TD > 3b + f
        n_bound=(4, 2),  # n > 4b + 2f
        state=("vote", "ts"),
        rounds_per_phase=3,
        examples=("Paxos (b=0)", "CT (b=0)", "MQB (f=0, new)"),
    ),
    AlgorithmClass.CLASS_3: ClassRow(
        flag=Flag.CURRENT_PHASE,
        td_bound=(0, 2, 1, 1),  # TD > 2b + f
        n_bound=(3, 2),  # n > 3b + 2f
        state=("vote", "ts", "history"),
        rounds_per_phase=3,
        examples=("Paxos (b=0)", "CT (b=0)", "PBFT (f=0)"),
    ),
}

# Consistency of the derived-threshold helpers with the table data.
assert class1_min_threshold(FaultModel(10, 1, 1)) == AlgorithmClass.CLASS_1.min_threshold(
    FaultModel(10, 1, 1)
)
assert class2_min_threshold(FaultModel(10, 1, 1)) == AlgorithmClass.CLASS_2.min_threshold(
    FaultModel(10, 1, 1)
)
assert class3_min_threshold(FaultModel(10, 1, 1)) == AlgorithmClass.CLASS_3.min_threshold(
    FaultModel(10, 1, 1)
)


def classify(parameters: ConsensusParameters) -> Optional[AlgorithmClass]:
    """Return the most resilient (highest-numbered) class admitting ``parameters``.

    A parameter set belongs to a class when its FLAG matches and its ``TD``
    clears the class's lower bound.  Class-2 parameters also satisfy the
    class-3 bound, so we report the *tightest* applicable class — matching
    the paper's convention that e.g. Paxos "belongs to class 2 and trivially
    to class 3 for b = 0".  ``None`` means the parameters fit no class.
    """
    matches = [
        cls
        for cls in AlgorithmClass
        if cls.flag is parameters.flag
        and parameters.threshold > cls.td_strict_lower_bound(parameters.model)
    ]
    if not matches:
        return None
    return min(matches, key=lambda cls: cls.value)


def build_class_parameters(
    algorithm_class: AlgorithmClass,
    model: FaultModel,
    *,
    threshold: Optional[int] = None,
    selector: Optional[Selector] = None,
) -> ConsensusParameters:
    """Canonical parameters for a class at ``(n, b, f)``.

    Defaults: the minimal admissible ``TD`` and the Π selector.  Raises
    :class:`ParameterError` when the model violates the class's ``n`` bound.
    """
    if not algorithm_class.admits(model):
        raise ParameterError(
            f"{algorithm_class} requires n > "
            f"{algorithm_class.row.n_bound[0]}b + {algorithm_class.row.n_bound[1]}f; "
            f"got {model.describe()}"
        )
    td = threshold if threshold is not None else algorithm_class.min_threshold(model)
    flv = algorithm_class.make_flv(model, td)
    return ConsensusParameters(
        model=model,
        threshold=td,
        flag=algorithm_class.flag,
        flv=flv,
        selector=selector or AllProcessesSelector(model),
    )
