"""Specialized FLV instantiations used by the named algorithms (Section 5-6).

These are the paper's Algorithms 6 (FaB Paxos), 7 (Paxos), 8 (PBFT) and 9
(Ben-Or).  Each is a simplification of one of the three generic class
functions (Algorithms 2-4) under the specific parameters of the target
algorithm; we implement them *literally* as printed so tests can compare them
against the generic functions and confirm the paper's equivalence claims
(including the "small improvement" remarks of Section 5.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.flv import FLVFunction, FLVRequirements, FLVResult
from repro.core.flv_class2 import survivors
from repro.core.types import FaultModel, SelectionMessage, Value
from repro.utils.det import value_counts
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE


def fab_paxos_threshold(model: FaultModel) -> int:
    """FaB Paxos decision threshold ``TD = ⌈(n + 3b + 1)/2⌉`` (Section 5.1)."""
    return -((model.n + 3 * model.b + 1) // -2)


def paxos_threshold(model: FaultModel) -> int:
    """Paxos decision threshold ``TD = ⌈(n + 1)/2⌉`` (Section 5.3)."""
    return -((model.n + 1) // -2)


def pbft_threshold(model: FaultModel) -> int:
    """PBFT decision threshold ``TD = 2b + 1`` (Section 5.3)."""
    return 2 * model.b + 1


class FaBPaxosFLV(FLVFunction):
    """Algorithm 6: FLV for class 1 with ``TD = ⌈(n + 3b + 1)/2⌉``.

    Literal transcription::

        1: correctVotes ← { v : |{(v,−,−) ∈ μ}| > (n − b − 1)/2 }
        2: if |correctVotes| = 1 then return v
        4: else if |μ| > n − b − 1 then return ?
        6: else return null
    """

    name = "flv-fab-paxos"

    def __init__(self, model: FaultModel, threshold: int | None = None) -> None:
        super().__init__(model, threshold or fab_paxos_threshold(model))

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=False, uses_history=False, supports_prel_liveness=True
        )

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        counts = value_counts(self._votes(messages))
        correct_votes = [
            value
            for value, count in counts.items()
            if 2 * count > self._n - self._b - 1
        ]
        if len(correct_votes) == 1:
            return correct_votes[0]
        if len(messages) > self._n - self._b - 1:
            return ANY_VALUE
        return NULL_VALUE


class PaxosFLV(FLVFunction):
    """Algorithm 7: FLV for class 3 simplified to benign faults.

    With ``b = 0`` every honest message satisfies ``(vote, ts) ∈ history``,
    so ``correctVotes = possibleVotes`` and the history (and unanimity
    branch) disappear.  Literal transcription::

        1: possibleVotes ← {(vote, ts, −) ∈ μ :
               |{(vote′, ts′, −) ∈ μ : vote = vote′ ∨ ts > ts′}| > n/2}
        2: if |possibleVotes| = 1 then return its vote
        4: else if |μ| > n/2 then return ?
        6: else return ⊥
    """

    name = "flv-paxos"

    def __init__(self, model: FaultModel, threshold: int | None = None) -> None:
        if model.b != 0:
            raise ValueError("PaxosFLV assumes the benign model (b = 0)")
        super().__init__(model, threshold or paxos_threshold(model))

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=True, uses_history=False, supports_prel_liveness=True
        )

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        possible = []
        for message in messages:
            support = sum(
                1
                for other in messages
                if other.vote == message.vote or message.ts > other.ts
            )
            if 2 * support > self._n:
                possible.append(message)
        distinct_votes = {message.vote for message in possible}
        if len(distinct_votes) == 1:
            return next(iter(distinct_votes))
        if 2 * len(messages) > self._n:
            return ANY_VALUE
        return NULL_VALUE


class PBFTFLV(FLVFunction):
    """Algorithm 8: FLV for class 3 with ``TD = 2b + 1`` and ``n = 3b + 1``.

    PBFT drops the unanimity property, so lines 8-9 of Algorithm 4 disappear
    and the ``ts = 0`` branch merges into the ``?`` condition::

        1: possibleVotes ← {(vote, ts, −) ∈ μ : |{… vote = vote′ ∨ ts > ts′}| > 2b}
        2: correctVotes ← {v : (v, ts) ∈ possibleVotes ∧ history support > b}
        3: if |correctVotes| = 1 then return v
        5: else if |correctVotes| > 1 or |{ts = 0 messages}| > 2b then return ?
        7: else return null
    """

    name = "flv-pbft"

    def __init__(self, model: FaultModel, threshold: int | None = None) -> None:
        super().__init__(model, threshold or pbft_threshold(model))

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=True,
            uses_history=True,
            supports_prel_liveness=False,
            needs_strong_selector_validity=True,
        )

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        slack = self._slack  # n − TD + b = 2b when n = 3b + 1, TD = 2b + 1
        possible = survivors(messages, slack)
        correct_votes: set[Value] = set()
        for message in possible:
            support = sum(
                1 for other in messages if (message.vote, message.ts) in other.history
            )
            if support > self._b:
                correct_votes.add(message.vote)
        if len(correct_votes) == 1:
            return next(iter(correct_votes))
        zero_ts = sum(1 for message in messages if message.ts == 0)
        if len(correct_votes) > 1 or zero_ts > slack:
            return ANY_VALUE
        return NULL_VALUE


class BenOrFLV(FLVFunction):
    """Algorithm 9: the Ben-Or selection rule.

    ``if received b + 1 messages ⟨v, φ − 1, −⟩ then return v else return ?``

    The function never returns ``null`` (it satisfies the strengthened
    FLV-liveness needed under ``Prel``), which is what makes the randomized
    adaptation of Section 6 possible for class-2 algorithms.
    """

    name = "flv-ben-or"

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=True, uses_history=False, supports_prel_liveness=True
        )

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        counts: dict[Value, int] = {}
        for message in messages:
            if message.ts == phase - 1:
                counts[message.vote] = counts.get(message.vote, 0) + 1
        for vote, count in sorted(
            counts.items(), key=lambda item: (type(item[0]).__name__, repr(item[0]))
        ):
            if count >= self._b + 1:
                return vote
        return ANY_VALUE
