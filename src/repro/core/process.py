"""Algorithm 1 — the generic consensus algorithm — as a round process.

Every line number referenced in comments below is a line of Algorithm 1 in
the paper.  The process is driven by the lockstep engine through the
:class:`~repro.rounds.base.RoundProcess` interface; the mapping from global
round numbers to (phase, round-kind) pairs is provided by
:class:`RoundStructure`, which also implements the two structural
optimizations of Section 3.1 (validation-round suppression for ``FLAG = *``
and first-selection-round suppression).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.state import ConsensusState
from repro.core.types import (
    DecisionMessage,
    Flag,
    Phase,
    ProcessId,
    Round,
    RoundInfo,
    RoundKind,
    SelectionMessage,
    ValidationMessage,
    Value,
    coerce_decision_message,
    coerce_selection_message,
    coerce_validation_message,
)
from repro.rounds.base import Inbound, Outbound, RoundProcess
from repro.utils.det import deterministic_choice
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE


class RoundStructure:
    """Maps global round numbers to (phase, kind).

    With ``FLAG = φ`` each phase is ``[selection, validation, decision]``
    (rounds ``3φ−2, 3φ−1, 3φ``); with ``FLAG = *`` the validation round is
    suppressed and a phase is ``[selection, decision]``.  With
    ``skip_first_selection`` the selection round of phase 1 is also
    suppressed (Section 3.1): ``select_p`` starts as ``init_p`` and the
    validator set is pre-agreed.
    """

    def __init__(self, flag: Flag, *, skip_first_selection: bool = False) -> None:
        self._flag = flag
        self._skip_first = skip_first_selection
        kinds = [RoundKind.SELECTION]
        if flag.needs_validation_round:
            kinds.append(RoundKind.VALIDATION)
        kinds.append(RoundKind.DECISION)
        self._kinds: List[RoundKind] = kinds
        # RoundInfo is immutable and the same few rounds are asked for over
        # and over (every decision probe goes through here), so memoize.
        self._info_cache: Dict[Round, RoundInfo] = {}

    @property
    def rounds_per_phase(self) -> int:
        return len(self._kinds)

    @property
    def flag(self) -> Flag:
        return self._flag

    @property
    def skip_first_selection(self) -> bool:
        return self._skip_first

    def kinds_of_phase(self, phase: Phase) -> List[RoundKind]:
        """The round kinds phase ``phase`` actually executes."""
        if phase == 1 and self._skip_first:
            return self._kinds[1:]
        return list(self._kinds)

    def info(self, round_number: Round) -> RoundInfo:
        """The :class:`RoundInfo` of global round ``round_number`` (1-based)."""
        cached = self._info_cache.get(round_number)
        if cached is not None:
            return cached
        info = self._info_uncached(round_number)
        self._info_cache[round_number] = info
        return info

    def _info_uncached(self, round_number: Round) -> RoundInfo:
        if round_number < 1:
            raise ValueError(f"round numbers start at 1, got {round_number}")
        per_phase = self.rounds_per_phase
        if not self._skip_first:
            phase = (round_number - 1) // per_phase + 1
            kind = self._kinds[(round_number - 1) % per_phase]
            return RoundInfo(round_number, phase, kind)
        first_len = per_phase - 1
        if round_number <= first_len:
            return RoundInfo(round_number, 1, self._kinds[round_number])
        rest = round_number - first_len
        phase = (rest - 1) // per_phase + 2
        kind = self._kinds[(rest - 1) % per_phase]
        return RoundInfo(round_number, phase, kind)

    def rounds_for_phases(self, phases: int) -> int:
        """How many global rounds the first ``phases`` phases occupy."""
        total = phases * self.rounds_per_phase
        if self._skip_first and phases >= 1:
            total -= 1
        return total


class GenericConsensusProcess(RoundProcess):
    """One honest process executing Algorithm 1."""

    def __init__(
        self,
        pid: ProcessId,
        initial_value: Value,
        parameters: ConsensusParameters,
        config: Optional[GenericConsensusConfig] = None,
    ) -> None:
        self.pid = pid
        self.parameters = parameters
        self.config = config or GenericConsensusConfig()
        self.state = ConsensusState.initial(initial_value)  # lines 2-4
        self.structure = RoundStructure(
            parameters.flag,
            skip_first_selection=self.config.skip_first_selection,
        )
        self._static_selector = self.config.uses_static_selector(parameters.selector)
        # Per-phase working variables (reset at each selection round).
        self._selected: object = NULL_VALUE
        self._validators: frozenset = frozenset()
        if self.config.skip_first_selection:
            # Section 3.1: select_p := init_p, validators pre-agreed.
            self._selected = initial_value
            self._validators = parameters.selector.select(pid, 1)
        self.decision_round: Optional[Round] = None

    # ------------------------------------------------------------------ API

    @property
    def decided(self) -> Optional[Value]:
        """The decided value, or ``None``."""
        return self.state.decided

    @property
    def has_decided(self) -> bool:
        return self.state.has_decided

    def send(self, info: RoundInfo) -> Outbound:
        if info.kind is RoundKind.SELECTION:
            return self._send_selection(info)
        if info.kind is RoundKind.VALIDATION:
            return self._send_validation(info)
        return self._send_decision(info)

    def receive(self, info: RoundInfo, received: Inbound) -> None:
        if info.kind is RoundKind.SELECTION:
            self._recv_selection(info, received)
        elif info.kind is RoundKind.VALIDATION:
            self._recv_validation(info, received)
        else:
            self._recv_decision(info, received)

    # -------------------------------------------------- selection (3φ − 2)

    def _send_selection(self, info: RoundInfo) -> Outbound:
        # Line 7: send ⟨vote, ts, history, Selector(p, φ)⟩ to Selector(p, φ).
        suggestion = self.parameters.selector.select(self.pid, info.phase)
        requirements = self.parameters.flv.requirements
        message = SelectionMessage(
            vote=self.state.vote,
            # Fields an instantiation does not use are elided (sent as their
            # initial value) — Section 3.1's remark that ts/history "can be
            # ignored in some instantiations".
            ts=self.state.ts if requirements.uses_ts else 0,
            history=(
                frozenset(self.state.history)
                if requirements.uses_history
                else frozenset()
            ),
            selector=frozenset() if self._static_selector else suggestion,
        )
        return {dest: message for dest in suggestion}

    def _recv_selection(self, info: RoundInfo, received: Inbound) -> None:
        phase = info.phase
        messages = []
        append = messages.append
        for payload in received.values():
            parsed = coerce_selection_message(payload)
            if parsed is not None:
                append(parsed)

        # Line 9: select ← FLV(μ).
        selected = self.parameters.flv.evaluate(messages, phase)
        if selected is ANY_VALUE:
            # Line 11 — deterministic choice among received votes; replaced
            # by a coin in the randomized adaptation (Section 6).
            if self.config.coin is not None:
                selected = self.config.coin(phase)
            elif messages:
                selected = deterministic_choice(
                    [message.vote for message in messages]
                )
            else:
                selected = NULL_VALUE
        if selected is not NULL_VALUE:
            # Lines 12-14.
            self.state.record_selection(selected, phase)
            self._truncate_history()
        self._selected = selected

        # Line 15: validators ← S if > (n+b)/2 messages carried S, else ∅.
        if self._static_selector:
            self._validators = self.parameters.selector.select(self.pid, phase)
        elif self.parameters.flag.needs_validation_round:
            self._validators = self._find_selector_quorum(messages)
        else:
            self._validators = frozenset()

    def _find_selector_quorum(self, messages: List[SelectionMessage]) -> frozenset:
        counts: Dict[frozenset, int] = {}
        for message in messages:
            counts[message.selector] = counts.get(message.selector, 0) + 1
        model = self.parameters.model
        for suggestion, count in counts.items():
            if suggestion and model.quorum_exceeds_half_plus_b(count):
                return suggestion
        return frozenset()

    def _truncate_history(self) -> None:
        bound = self.config.max_history_size
        if bound is None or len(self.state.history) <= bound:
            return
        # Keep the most recent entries (by phase).  Only used in bounded-
        # history experiments; see footnote 5 of the paper.
        ordered = sorted(self.state.history, key=lambda entry: entry[1])
        self.state.history = set(ordered[-bound:])

    # ------------------------------------------------- validation (3φ − 1)

    def _send_validation(self, info: RoundInfo) -> Outbound:
        # Lines 18-19: only validators speak, to everyone.
        if self.pid not in self._validators:
            return {}
        message = ValidationMessage(
            select=self._selected,
            validators=frozenset() if self._static_selector else self._validators,
        )
        return {dest: message for dest in self.parameters.model.processes}

    def _recv_validation(self, info: RoundInfo, received: Inbound) -> None:
        phase = info.phase
        model = self.parameters.model
        parsed: Dict[ProcessId, ValidationMessage] = {}
        for sender, payload in received.items():
            message = coerce_validation_message(payload)
            if message is not None:
                parsed[sender] = message

        # Line 21: validators ← S if b+1 messages ⟨−, S⟩ received, else ∅.
        if self._static_selector:
            validators = self.parameters.selector.select(self.pid, phase)
        else:
            counts: Dict[frozenset, int] = {}
            for message in parsed.values():
                counts[message.validators] = counts.get(message.validators, 0) + 1
            validators = frozenset()
            for suggestion, count in counts.items():
                if suggestion and count >= model.b + 1:
                    validators = suggestion
                    break

        # Line 22: a value sent by > (|validators| + b)/2 validators is valid.
        candidates: Dict[Value, int] = {}
        for sender, message in parsed.items():
            if sender in validators and message.select is not NULL_VALUE:
                candidates[message.select] = candidates.get(message.select, 0) + 1
        valid = [
            value
            for value, count in candidates.items()
            if 2 * count > len(validators) + model.b
        ]
        if len(valid) >= 1:
            # Lines 23-24.  Multiple candidates cannot satisfy the quorum
            # when Selector-validity holds (Lemma 4); we still pick
            # deterministically for defensive robustness.
            value = valid[0] if len(valid) == 1 else deterministic_choice(valid)
            self.state.record_validation(
                value,
                phase,
                also_log_history=self.config.record_validation_in_history,
            )
        else:
            # Line 26: revert the vote to stay consistent with ts.
            self.state.revert_vote()

    # ---------------------------------------------------- decision (3φ)

    def _send_decision(self, info: RoundInfo) -> Outbound:
        # Line 29: send ⟨vote, ts⟩ to all.
        message = DecisionMessage(
            vote=self.state.vote,
            ts=self.state.ts if self.parameters.flag is Flag.CURRENT_PHASE else 0,
        )
        return {dest: message for dest in self.parameters.model.processes}

    def _recv_decision(self, info: RoundInfo, received: Inbound) -> None:
        phase = info.phase
        phase_gated = self.parameters.flag is Flag.CURRENT_PHASE
        counts: Dict[Value, int] = {}
        counts_get = counts.get
        for payload in received.values():
            message = coerce_decision_message(payload)
            if message is None:
                continue
            # Line 31: FLAG = φ counts only votes validated in this phase;
            # FLAG = * counts all votes.
            if phase_gated and message.ts != phase:
                continue
            counts[message.vote] = counts_get(message.vote, 0) + 1
        threshold = self.parameters.threshold
        winners = [
            value for value, count in counts.items() if count >= threshold
        ]
        if winners:
            value = winners[0] if len(winners) == 1 else deterministic_choice(winners)
            # Line 32: DECIDE v.  The process keeps participating (others may
            # still need its messages); only the first decision is recorded.
            if not self.state.has_decided:
                self.decision_round = info.number
            self.state.record_decision(value, phase)
