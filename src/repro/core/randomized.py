"""Randomized consensus support (Section 6 of the paper).

Two modifications turn Algorithm 1 into a randomized binary consensus
algorithm:

1. Line 11's deterministic choice is replaced by a coin flip: ``select_p :=
   1 or 0 with probability 0.5``.  Implemented as a
   :data:`~repro.core.parameters.Coin` installed in
   :class:`~repro.core.parameters.GenericConsensusConfig`.
2. The communication assumption is ``Prel`` in *every* round (at least
   ``n − b − f`` messages per correct process per round) instead of the
   eventual ``Pcons``/``Pgood`` predicates — realized by
   :class:`~repro.rounds.policies.AsyncPrelPolicy`.

Correspondingly, FLV must satisfy the stronger liveness variant: any vector
of ``n − b − f`` messages yields a non-``null`` result.  Algorithms 2 and 3
(classes 1 and 2) satisfy it; Algorithm 4 (class 3) does not — the paper
conjectures class-3 algorithms cannot be randomized this way, and
``tests/core/test_randomized.py`` exhibits the failing vector.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.parameters import Coin, ConsensusParameters, GenericConsensusConfig
from repro.core.run import ConsensusOutcome
from repro.core.types import Phase, ProcessId, Value
from repro.rounds.policies import AsyncPrelPolicy
from repro.utils.rng import SeededRng


def make_coin(
    seed: int, process: ProcessId, values: Sequence[Value] = (0, 1)
) -> Coin:
    """A per-process fair coin over ``values`` (deterministic given seed).

    Each process must flip *independently* — a shared coin would make the
    problem trivial — so the stream is keyed by process id.
    """
    if len(values) < 2:
        raise ValueError("a coin needs at least two outcomes")
    stream = SeededRng(seed).stream("coin", process=process)
    pool = list(values)

    def coin(phase: Phase) -> Value:
        return pool[stream.randrange(len(pool))]

    return coin


def check_randomizable(parameters: ConsensusParameters) -> bool:
    """Can these parameters be adapted per Section 6?

    True iff the FLV instantiation satisfies the strengthened FLV-liveness
    (classes 1 and 2); class-3 FLVs report ``supports_prel_liveness=False``.
    """
    return parameters.flv.requirements.supports_prel_liveness


def run_randomized_consensus(
    parameters: ConsensusParameters,
    initial_values: dict,
    *,
    seed: int = 0,
    max_phases: int = 200,
    byzantine: Optional[dict] = None,
    coin_values: Sequence[Value] = (0, 1),
) -> ConsensusOutcome:
    """Run the randomized adaptation under a ``Prel``-only adversary.

    Terminates with probability 1; ``max_phases`` bounds the simulation (the
    expected number of phases is exponential in n in the worst case but tiny
    for the adversaries implemented here).
    """
    if not check_randomizable(parameters):
        raise ValueError(
            f"{parameters.flv.name} does not satisfy the strengthened "
            "FLV-liveness required by randomized algorithms (Section 6)"
        )
    rng = SeededRng(seed)

    # Coins must be independent across processes, so each process gets its
    # own config (run_consensus shares one config across all processes).
    def config_for(pid: ProcessId) -> GenericConsensusConfig:
        return GenericConsensusConfig(coin=make_coin(seed, pid, coin_values))

    return _run_with_per_process_coins(
        parameters,
        initial_values,
        config_for,
        byzantine=byzantine,
        max_phases=max_phases,
        policy=AsyncPrelPolicy(rng.stream("prel-adversary")),
    )


def _run_with_per_process_coins(
    parameters: ConsensusParameters,
    initial_values: dict,
    config_for,
    *,
    byzantine: Optional[dict],
    max_phases: int,
    policy,
) -> ConsensusOutcome:
    """Like :func:`run_consensus` but with a per-process config factory."""
    from repro.core.run import outcome_from_kernel
    from repro.engine.assembly import build_instance
    from repro.engine.kernel import run_instance
    from repro.engine.scheduler import LockstepScheduler

    instance = build_instance(
        parameters, initial_values, byzantine=byzantine, config_for=config_for
    )
    outcome = run_instance(
        instance,
        LockstepScheduler(policy),
        max_phases=max_phases,
        record_snapshots=False,
    )
    return outcome_from_kernel(instance, outcome)
