"""Process state for the generic consensus algorithm (Algorithm 1, lines 1-4).

The state of process ``p`` consists of:

* ``vote``    — the value currently considered for decision (init: ``init_p``),
* ``ts``      — the most recent phase in which ``vote`` was validated (init 0),
* ``history`` — the set of ``(value, phase)`` pairs recording every update of
  ``vote`` performed in a selection round (init ``{(init_p, 0)}``).

Classes 1 and 2 of the classification do not need all three variables;
:meth:`ConsensusState.footprint` reports which variables an instantiation
actually reads, which the Table-1 bench uses to reproduce the "Process state"
column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.core.types import HistoryEntry, Phase, Value


@dataclass
class ConsensusState:
    """Mutable per-process state ``(vote, ts, history)``."""

    vote: Value
    ts: Phase = 0
    history: Set[HistoryEntry] = field(default_factory=set)
    decided: Optional[Value] = None
    decided_phase: Optional[Phase] = None

    @classmethod
    def initial(cls, initial_value: Value) -> "ConsensusState":
        """Lines 2-4 of Algorithm 1."""
        return cls(vote=initial_value, ts=0, history={(initial_value, 0)})

    def record_selection(self, value: Value, phase: Phase) -> None:
        """Lines 13-14: set the vote and log the update in the history."""
        self.vote = value
        self.history.add((value, phase))

    def record_validation(
        self, value: Value, phase: Phase, *, also_log_history: bool = False
    ) -> None:
        """Lines 23-24: adopt a validated value and bump the timestamp.

        The paper's pseudocode does *not* add the validated pair to the
        history (only selection-round updates are logged, line 14).  The
        ``also_log_history`` switch enables the variant discussed in
        DESIGN.md §4 ("line 26 subtlety") for ablation experiments.
        """
        self.vote = value
        self.ts = phase
        if also_log_history:
            self.history.add((value, phase))

    def revert_vote(self) -> None:
        """Line 26: revert ``vote`` to the value recorded for ``ts``.

        The paper writes "vote_p ← v such that (v, ts_p) ∈ history_p".  If no
        pair matches (possible because validation does not log to the
        history; see DESIGN.md) or several do, the vote is left unchanged —
        the only safe deterministic reading.
        """
        candidates = [value for (value, phase) in self.history if phase == self.ts]
        if len(candidates) == 1:
            self.vote = candidates[0]

    def record_decision(self, value: Value, phase: Phase) -> None:
        """Line 32: remember the first decision (decisions are stable)."""
        if self.decided is None:
            self.decided = value
            self.decided_phase = phase

    @property
    def has_decided(self) -> bool:
        """True once this process has decided."""
        return self.decided is not None

    def snapshot(self) -> Tuple[Value, Phase, frozenset]:
        """An immutable copy ``(vote, ts, history)`` for traces."""
        return (self.vote, self.ts, frozenset(self.history))

    def footprint(self, uses_ts: bool, uses_history: bool) -> Tuple[str, ...]:
        """The state variables an instantiation actually uses.

        Reproduces the "Process state" column of Table 1: class 1 reports
        ``('vote',)``, class 2 ``('vote', 'ts')`` and class 3
        ``('vote', 'ts', 'history')``.
        """
        names = ["vote"]
        if uses_ts:
            names.append("ts")
        if uses_history:
            names.append("history")
        return tuple(names)
