"""High-level harness: build and run one consensus instance.

This is the main entry point of the library::

    from repro import run_consensus, build_class_parameters, AlgorithmClass
    from repro.core.types import FaultModel

    model = FaultModel(n=4, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(params, {0: "a", 2: "b", 3: "a"},
                            byzantine={1: "equivocator"})
    assert outcome.agreement_holds

``run_consensus`` assembles the honest processes (Algorithm 1), Byzantine
strategies, crash schedule and delivery policy, runs the lockstep engine and
returns a :class:`ConsensusOutcome` with decisions, the execution trace and
invariant checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Union

from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.types import Decision, ProcessId, RoundInfo, Value
from repro.faults.byzantine import (
    AdaptiveLiar,
    ByzantineStrategy,
    Equivocator,
    FakeHistoryLiar,
    HighTimestampLiar,
    RandomNoise,
    SilentByzantine,
    VoteFlipper,
)
from repro.faults.crash import CrashSchedule
from repro.rounds.base import RoundProcess, RunContext
from repro.rounds.engine import EngineResult, SyncEngine
from repro.rounds.policies import DeliveryPolicy, ReliablePolicy

#: Named Byzantine strategies accepted by ``run_consensus(byzantine=...)``.
STRATEGY_REGISTRY: Dict[str, Callable[..., ByzantineStrategy]] = {
    "silent": SilentByzantine,
    "noise": RandomNoise,
    "equivocator": Equivocator,
    "vote-flipper": VoteFlipper,
    "high-ts-liar": HighTimestampLiar,
    "fake-history-liar": FakeHistoryLiar,
    "adaptive-liar": AdaptiveLiar,
}

#: A Byzantine slot is a strategy name, an instance, or a factory.
ByzantineSpec = Union[
    str, ByzantineStrategy, Callable[[ProcessId, ConsensusParameters], ByzantineStrategy]
]


@dataclass
class ConsensusOutcome:
    """Everything a caller might want to know about one run."""

    parameters: ConsensusParameters
    result: EngineResult
    processes: Dict[ProcessId, RoundProcess]
    initial_values: Dict[ProcessId, Value]
    structure: RoundStructure

    @property
    def decisions(self) -> Dict[ProcessId, Decision]:
        """First decision of each honest process that decided."""
        return self.result.decisions

    @property
    def decided_values(self) -> set:
        return self.result.decided_values()

    @property
    def honest_processes(self) -> Dict[ProcessId, GenericConsensusProcess]:
        return {
            pid: process
            for pid, process in self.processes.items()
            if isinstance(process, GenericConsensusProcess)
        }

    @property
    def agreement_holds(self) -> bool:
        """No two honest processes decided differently."""
        return len(self.decided_values) <= 1

    @property
    def all_correct_decided(self) -> bool:
        """Every correct (honest, never-crashed) process decided."""
        correct = self.result.context.correct
        return all(pid in self.decisions for pid in correct)

    @property
    def rounds_to_last_decision(self) -> Optional[int]:
        return self.result.trace.last_decision_round()

    @property
    def phases_to_last_decision(self) -> Optional[int]:
        rounds = self.rounds_to_last_decision
        if rounds is None:
            return None
        return self.structure.info(rounds).phase

    def validity_holds(self) -> bool:
        """If all processes are honest, decisions come from initial values.

        Vacuously true when Byzantine processes exist (the paper's validity
        property only constrains the all-honest case).
        """
        if self.result.context.byzantine:
            return True
        initials = set(self.initial_values.values())
        return all(value in initials for value in self.decided_values)

    def invariant_report(self) -> Mapping[str, bool]:
        """Boolean summary of agreement/validity/unanimity/termination.

        The campaign result store persists exactly this mapping, so every
        JSONL row carries the same property columns as a timed run.
        """
        from repro.analysis.invariants import evaluate_properties

        return evaluate_properties(
            decided_values={
                pid: decision.value for pid, decision in self.decisions.items()
            },
            initial_values=self.initial_values,
            byzantine=self.result.context.byzantine,
            correct=self.result.context.correct,
        )

    def unanimity_holds(self) -> bool:
        """If all honest processes proposed the same v, only v is decided."""
        honest = [
            value
            for pid, value in self.initial_values.items()
            if pid not in self.result.context.byzantine
        ]
        if len(set(honest)) != 1:
            return True
        (common,) = set(honest)
        return all(value == common for value in self.decided_values)


def _build_byzantine(
    pid: ProcessId, spec: ByzantineSpec, parameters: ConsensusParameters
) -> ByzantineStrategy:
    if isinstance(spec, ByzantineStrategy):
        return spec
    if isinstance(spec, str):
        try:
            factory = STRATEGY_REGISTRY[spec]
        except KeyError:
            raise ValueError(
                f"unknown Byzantine strategy {spec!r}; "
                f"known: {sorted(STRATEGY_REGISTRY)}"
            ) from None
        return factory(pid, parameters)
    return spec(pid, parameters)


def run_consensus(
    parameters: ConsensusParameters,
    initial_values: Mapping[ProcessId, Value],
    *,
    config: Optional[GenericConsensusConfig] = None,
    byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
    policy: Optional[DeliveryPolicy] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    max_phases: int = 30,
    record_snapshots: bool = False,
) -> ConsensusOutcome:
    """Run one instance of the generic consensus algorithm.

    ``initial_values`` must provide a proposal for every honest process;
    ``byzantine`` maps process ids to strategies (at most ``b`` entries).
    The run stops as soon as every eventually-correct process has decided,
    or after ``max_phases`` phases.
    """
    model = parameters.model
    config = config or GenericConsensusConfig()
    byzantine = dict(byzantine or {})
    if len(byzantine) > model.b:
        raise ValueError(
            f"{len(byzantine)} Byzantine processes exceed b={model.b}"
        )

    structure = RoundStructure(
        parameters.flag, skip_first_selection=config.skip_first_selection
    )

    processes: Dict[ProcessId, RoundProcess] = {}
    initials: Dict[ProcessId, Value] = {}
    for pid in model.processes:
        if pid in byzantine:
            processes[pid] = _build_byzantine(pid, byzantine[pid], parameters)
            continue
        if pid not in initial_values:
            raise ValueError(f"missing initial value for honest process {pid}")
        initials[pid] = initial_values[pid]
        processes[pid] = GenericConsensusProcess(
            pid, initial_values[pid], parameters, config
        )

    context = RunContext(model, byzantine=frozenset(byzantine))

    def decision_probe(
        pid: ProcessId, process: RoundProcess, info: RoundInfo
    ) -> Optional[Decision]:
        if isinstance(process, GenericConsensusProcess) and process.has_decided:
            return Decision(
                process=pid,
                value=process.decided,
                round=process.decision_round or info.number,
                phase=structure.info(process.decision_round or info.number).phase,
            )
        return None

    def snapshot_fn(pid: ProcessId, process: RoundProcess) -> object:
        if isinstance(process, GenericConsensusProcess):
            return process.state.snapshot()
        return None

    engine = SyncEngine(
        model,
        processes,
        policy or ReliablePolicy(),
        structure.info,
        context=context,
        crash_schedule=crash_schedule,
        decision_probe=decision_probe,
        snapshot_fn=snapshot_fn,
        record_snapshots=record_snapshots,
    )

    target = engine.eventually_correct

    def stop_when(trace) -> bool:
        return target <= set(trace.decisions)

    max_rounds = structure.rounds_for_phases(max_phases)
    result = engine.run(max_rounds, stop_when=stop_when)
    return ConsensusOutcome(
        parameters=parameters,
        result=result,
        processes=processes,
        initial_values=initials,
        structure=structure,
    )
