"""High-level harness: build and run one consensus instance.

This is the main entry point of the library::

    from repro import run_consensus, build_class_parameters, AlgorithmClass
    from repro.core.types import FaultModel

    model = FaultModel(n=4, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(params, {0: "a", 2: "b", 3: "a"},
                            byzantine={1: "equivocator"})
    assert outcome.agreement_holds

``run_consensus`` is a thin compatibility wrapper over the unified
execution kernel (:mod:`repro.engine`): it assembles the instance with
:func:`repro.engine.assembly.build_instance`, runs it under a
:class:`~repro.engine.scheduler.LockstepScheduler` with full observation,
and returns a :class:`ConsensusOutcome` with decisions, the execution trace
and invariant checks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.types import Decision, ProcessId, Value
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_FULL, run_instance
from repro.engine.scheduler import LockstepScheduler
from repro.faults.crash import CrashSchedule
from repro.faults.registry import (  # noqa: F401 - compatibility re-exports
    STRATEGY_REGISTRY,
    ByzantineSpec,
    build_byzantine,
)
from repro.rounds.base import RoundProcess
from repro.rounds.engine import EngineResult
from repro.rounds.policies import DeliveryPolicy


@dataclass
class ConsensusOutcome:
    """Everything a caller might want to know about one run."""

    parameters: ConsensusParameters
    result: EngineResult
    processes: Dict[ProcessId, RoundProcess]
    initial_values: Dict[ProcessId, Value]
    structure: RoundStructure

    @property
    def decisions(self) -> Dict[ProcessId, Decision]:
        """First decision of each honest process that decided."""
        return self.result.decisions

    @property
    def decided_values(self) -> set:
        return self.result.decided_values()

    @property
    def honest_processes(self) -> Dict[ProcessId, GenericConsensusProcess]:
        return {
            pid: process
            for pid, process in self.processes.items()
            if isinstance(process, GenericConsensusProcess)
        }

    @property
    def agreement_holds(self) -> bool:
        """No two honest processes decided differently."""
        return len(self.decided_values) <= 1

    @property
    def all_correct_decided(self) -> bool:
        """Every correct (honest, never-crashed) process decided."""
        correct = self.result.context.correct
        return all(pid in self.decisions for pid in correct)

    @property
    def rounds_to_last_decision(self) -> Optional[int]:
        return self.result.trace.last_decision_round()

    @property
    def phases_to_last_decision(self) -> Optional[int]:
        rounds = self.rounds_to_last_decision
        if rounds is None:
            return None
        return self.structure.info(rounds).phase

    def validity_holds(self) -> bool:
        """If all processes are honest, decisions come from initial values.

        Vacuously true when Byzantine processes exist (the paper's validity
        property only constrains the all-honest case).
        """
        if self.result.context.byzantine:
            return True
        initials = set(self.initial_values.values())
        return all(value in initials for value in self.decided_values)

    def invariant_report(self) -> Mapping[str, bool]:
        """Boolean summary of agreement/validity/unanimity/termination.

        The campaign result store persists exactly this mapping, so every
        JSONL row carries the same property columns as a timed run.
        """
        from repro.analysis.invariants import evaluate_properties

        return evaluate_properties(
            decided_values={
                pid: decision.value for pid, decision in self.decisions.items()
            },
            initial_values=self.initial_values,
            byzantine=self.result.context.byzantine,
            correct=self.result.context.correct,
        )

    def unanimity_holds(self) -> bool:
        """If all honest processes proposed the same v, only v is decided."""
        honest = [
            value
            for pid, value in self.initial_values.items()
            if pid not in self.result.context.byzantine
        ]
        if len(set(honest)) != 1:
            return True
        (common,) = set(honest)
        return all(value == common for value in self.decided_values)


def outcome_from_kernel(instance, outcome) -> ConsensusOutcome:
    """Wrap a kernel run (:class:`~repro.engine.outcome.Outcome`) for the
    lockstep compatibility API."""
    return ConsensusOutcome(
        parameters=instance.parameters,
        result=EngineResult(
            trace=outcome.trace,
            context=outcome.context,
            rounds_executed=outcome.rounds_executed,
        ),
        processes=instance.processes,
        initial_values=instance.initial_values,
        structure=instance.structure,
    )


def _build_byzantine(
    pid: ProcessId, spec: ByzantineSpec, parameters: ConsensusParameters
):
    """Deprecated private alias of :func:`repro.faults.build_byzantine`."""
    warnings.warn(
        "repro.core.run._build_byzantine is deprecated; "
        "use repro.faults.build_byzantine",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_byzantine(pid, spec, parameters)


def run_consensus(
    parameters: ConsensusParameters,
    initial_values: Mapping[ProcessId, Value],
    *,
    config: Optional[GenericConsensusConfig] = None,
    byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
    policy: Optional[DeliveryPolicy] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    max_phases: int = 30,
    record_snapshots: bool = False,
) -> ConsensusOutcome:
    """Run one instance of the generic consensus algorithm.

    ``initial_values`` must provide a proposal for every honest process;
    ``byzantine`` maps process ids to strategies (at most ``b`` entries).
    The run stops as soon as every eventually-correct process has decided,
    or after ``max_phases`` phases.
    """
    instance = build_instance(
        parameters, initial_values, config=config, byzantine=byzantine
    )
    outcome = run_instance(
        instance,
        LockstepScheduler(policy),
        max_phases=max_phases,
        observe=OBSERVE_FULL,
        crash_schedule=crash_schedule,
        record_snapshots=record_snapshots,
    )
    return outcome_from_kernel(instance, outcome)
