"""The ``Selector(p, φ)`` abstraction and its instantiations (Sections 3.2, 4.2).

``Selector(p, φ)`` returns process ``p``'s suggestion for the validator set
of phase ``φ``.  Required properties:

* **Selector-validity** — a non-empty suggestion has more than ``b`` members;
* **Selector-strongValidity** — (needed by class-3 FLV-liveness) a non-empty
  suggestion has more than ``3b + 2f`` members;
* **Selector-liveness** — there is a good phase ``φ0`` in which (SL1) all
  correct processes suggest the same set, (SL2, FLAG = *) the set contains at
  least ``TD`` correct processes, and (SL3, FLAG = φ) the correct members of
  the set outnumber ``(|S| + b)/2``.

Instantiations implemented here, following Section 4.2:

* :class:`AllProcessesSelector` — always Π (used by all Byzantine algorithms);
* :class:`RotatingSubsetSelector` — the same rotating set of ``b + 1``
  processes at every process, different in every phase (Byzantine option);
* :class:`RotatingCoordinatorSelector` — a single rotating coordinator
  (Chandra-Toueg, benign model);
* :class:`LeaderSelector` — a single leader produced by an Ω-style oracle
  (Paxos, benign model).
"""

from __future__ import annotations

import abc
from typing import Callable, FrozenSet, Iterable

from repro.core.types import FaultModel, Phase, ProcessId


class Selector(abc.ABC):
    """Abstract base class for Selector instantiations."""

    #: Human-readable name used in traces and reports.
    name: str = "selector"

    def __init__(self, model: FaultModel) -> None:
        self._model = model

    @property
    def model(self) -> FaultModel:
        """The (n, b, f) envelope this selector was built for."""
        return self._model

    @abc.abstractmethod
    def select(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        """Process ``process``'s suggested validator set for ``phase``."""

    def __call__(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        return self.select(process, phase)

    @property
    def is_static(self) -> bool:
        """True when the suggestion is the same at every process and phase.

        Enables the Section 3.1 optimization: the set need not be exchanged
        in selection messages and line 21 of Algorithm 1 can be suppressed.
        """
        return False

    @property
    def is_singleton(self) -> bool:
        """True when suggestions always have exactly one member (benign)."""
        return False

    def satisfies_validity(self, suggestion: FrozenSet[ProcessId]) -> bool:
        """Check Selector-validity for one suggestion."""
        return len(suggestion) == 0 or len(suggestion) > self._model.b

    def satisfies_strong_validity(self, suggestion: FrozenSet[ProcessId]) -> bool:
        """Check Selector-strongValidity for one suggestion."""
        bound = 3 * self._model.b + 2 * self._model.f
        return len(suggestion) == 0 or len(suggestion) > bound


class AllProcessesSelector(Selector):
    """Always suggest Π — the instantiation used by FaB Paxos, PBFT and MQB.

    Trivially satisfies validity, strongValidity and liveness (SL1 because
    the set is identical everywhere; SL2/SL3 because Π contains all
    ``n − b − f`` correct processes and ``TD ≤ n − b − f``).
    """

    name = "selector-all"

    def __init__(self, model: FaultModel) -> None:
        super().__init__(model)
        self._everyone = frozenset(model.processes)

    def select(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        return self._everyone

    @property
    def is_static(self) -> bool:
        return True


class RotatingSubsetSelector(Selector):
    """The same set of ``size`` processes at every process, rotating by phase.

    Section 4.2 mentions the Byzantine-model option of returning a set of
    ``b + 1`` processes, identical at every process and different in every
    phase.  ``size`` defaults to ``b + 1`` (the minimum allowed by
    Selector-validity); class-3 algorithms must use ``size > 3b + 2f``.
    """

    name = "selector-rotating-subset"

    def __init__(self, model: FaultModel, size: int | None = None) -> None:
        super().__init__(model)
        self._size = size if size is not None else model.b + 1
        if self._size <= model.b:
            raise ValueError(
                f"Selector-validity requires |S| > b: size={self._size}, b={model.b}"
            )
        if self._size > model.n:
            raise ValueError(f"size {self._size} exceeds n={model.n}")

    @property
    def size(self) -> int:
        """Cardinality of every suggestion."""
        return self._size

    def select(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        start = phase % self._model.n
        return frozenset(
            (start + offset) % self._model.n for offset in range(self._size)
        )

    @property
    def is_singleton(self) -> bool:
        return self._size == 1


class RotatingCoordinatorSelector(Selector):
    """A single coordinator ``{φ mod n}`` — Chandra-Toueg's rotating pattern.

    Only sound in the benign model (``b = 0``): a singleton set violates
    Selector-validity as soon as ``b ≥ 1``.
    """

    name = "selector-rotating-coordinator"

    def __init__(self, model: FaultModel) -> None:
        if model.b != 0:
            raise ValueError("a single rotating coordinator requires b = 0")
        super().__init__(model)

    def select(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        return frozenset({(phase - 1) % self._model.n})

    @property
    def is_singleton(self) -> bool:
        return True


class LeaderSelector(Selector):
    """A single leader chosen by an Ω-style oracle — Paxos's pattern.

    The oracle is a callable ``(process, phase) → ProcessId``.  Before
    stabilization different processes may see different leaders (SL1 fails,
    phases may be unsuccessful); once the oracle stabilizes on a correct
    leader, Selector-liveness holds and the algorithm terminates.  Only sound
    in the benign model.
    """

    name = "selector-leader"

    def __init__(
        self,
        model: FaultModel,
        oracle: Callable[[ProcessId, Phase], ProcessId],
    ) -> None:
        if model.b != 0:
            raise ValueError("a single leader requires b = 0")
        super().__init__(model)
        self._oracle = oracle

    def select(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        leader = self._oracle(process, phase)
        if not 0 <= leader < self._model.n:
            raise ValueError(f"oracle returned out-of-range leader {leader}")
        return frozenset({leader})

    @property
    def is_singleton(self) -> bool:
        return True


class FixedSelector(Selector):
    """A constant, explicitly given suggestion (useful for tests/adversaries)."""

    name = "selector-fixed"

    def __init__(self, model: FaultModel, members: Iterable[ProcessId]) -> None:
        super().__init__(model)
        self._members = frozenset(members)
        if any(not 0 <= pid < model.n for pid in self._members):
            raise ValueError("selector members must be valid process ids")

    def select(self, process: ProcessId, phase: Phase) -> FrozenSet[ProcessId]:
        return self._members

    @property
    def is_static(self) -> bool:
        return True

    @property
    def is_singleton(self) -> bool:
        return len(self._members) == 1
