"""The paper's primary contribution: the generic consensus algorithm.

Public surface:

* :class:`~repro.core.types.FaultModel` — the (n, b, f) envelope;
* :class:`~repro.core.parameters.ConsensusParameters` — the four parameters
  (TD, FLAG, FLV, Selector) of Algorithm 1;
* :class:`~repro.core.process.GenericConsensusProcess` — Algorithm 1 itself;
* :func:`~repro.core.run.run_consensus` — one-call execution harness;
* :class:`~repro.core.classification.AlgorithmClass` — Table 1 in code.
"""

from repro.core.classification import (
    AlgorithmClass,
    build_class_parameters,
    classify,
)
from repro.core.flv import FLVFunction, FLVRequirements, FLVResult, is_concrete
from repro.core.flv_class1 import FLVClass1
from repro.core.flv_class2 import FLVClass2
from repro.core.flv_class3 import FLVClass3
from repro.core.parameters import (
    ConsensusParameters,
    GenericConsensusConfig,
    ParameterError,
)
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.run import ConsensusOutcome, run_consensus
from repro.core.selector import (
    AllProcessesSelector,
    FixedSelector,
    LeaderSelector,
    RotatingCoordinatorSelector,
    RotatingSubsetSelector,
    Selector,
)
from repro.core.state import ConsensusState
from repro.core.types import FaultModel, Flag, RoundKind

__all__ = [
    "AlgorithmClass",
    "AllProcessesSelector",
    "ConsensusOutcome",
    "ConsensusParameters",
    "ConsensusState",
    "FLVClass1",
    "FLVClass2",
    "FLVClass3",
    "FLVFunction",
    "FLVRequirements",
    "FLVResult",
    "FaultModel",
    "FixedSelector",
    "Flag",
    "GenericConsensusConfig",
    "GenericConsensusProcess",
    "LeaderSelector",
    "ParameterError",
    "RotatingCoordinatorSelector",
    "RotatingSubsetSelector",
    "RoundKind",
    "RoundStructure",
    "Selector",
    "build_class_parameters",
    "classify",
    "is_concrete",
    "run_consensus",
]
