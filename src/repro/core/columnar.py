"""Columnar FLV evaluation: Algorithms 2–4 as array reductions.

The scalar FLV classes (:mod:`repro.core.flv_class1` …ss3) evaluate one
process's message vector at a time.  The batch backend's columnar-state
tier (:mod:`repro.engine.batch.columnar_state`) instead evaluates **every
receiver of every run of a campaign cell at once**: messages live in
``(B runs, D receivers, S senders)`` arrays and each FLV class becomes a
handful of counting/argmax reductions.  This module holds those
reductions; the scalar classes remain the oracle they are tested against.

Value encoding
==============

A cell's value alphabet is closed (honest initials plus every payload its
run-invariant Byzantine strategies can utter), so values are encoded as
small ints.  :func:`encode_alphabet` assigns codes **in the total order of
:func:`repro.utils.det._sort_key`**, which makes every
``deterministic_choice`` in the algorithm equal to a plain ``min`` over
codes (:func:`pick_min_code`) — the deterministic tie-break costs one
reduction instead of a per-receiver Python call.  Code ``-1`` is the
paper's ``null``; the ``?`` result (``ANY``) is returned as a separate
boolean mask because resolving it (line 11 of Algorithm 1) needs the
received votes, which the caller already holds.

Every function takes the numpy module as its explicit first argument (the
caller obtained it via :func:`repro.utils.accel.get_numpy`); this module
imports nothing optional, so importing it never pulls numpy in.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple

from repro.utils.det import _sort_key

__all__ = [
    "NULL_CODE",
    "counts_by_value",
    "encode_alphabet",
    "flv_class1_columnar",
    "flv_class2_columnar",
    "flv_class3_columnar",
    "pick_min_code",
    "resolve_any_columnar",
    "survivor_mask",
    "threshold_pick",
]

#: The paper's ``null`` (⊥) in code space.
NULL_CODE = -1


def encode_alphabet(values: Iterable[Hashable]) -> List[Hashable]:
    """The cell's value alphabet, ordered so that code order = choice order.

    Returns the distinct values sorted by the deterministic total order of
    :func:`repro.utils.det._sort_key`; the code of a value is its index.
    Raises :class:`ValueError` when two distinct values share a sort key
    (indistinguishable under the deterministic choice) — callers treat
    that as columnar-state ineligibility and demote the cell.
    """
    ordered = sorted(set(values), key=_sort_key)
    keys = [_sort_key(value) for value in ordered]
    if len(set(keys)) != len(keys):
        raise ValueError("value alphabet has a deterministic-order collision")
    return ordered


def pick_min_code(np, mask):
    """``deterministic_choice`` over code space: the least set code, or −1.

    ``mask`` is ``(..., V)`` bool — which values are candidates; the result
    is ``(...,)`` int.  Because codes are assigned in ``_sort_key`` order,
    the minimum set code *is* the deterministic choice among candidates.
    """
    n_values = mask.shape[-1]
    codes = np.arange(n_values, dtype=np.int64)
    ranked = np.where(mask, codes, n_values)
    best = ranked.min(axis=-1)
    return np.where(best < n_values, best, NULL_CODE)


def counts_by_value(np, valid, votes, n_values: int):
    """Per-value multiplicities: ``counts[..., v] = |{m valid : vote_m = v}|``.

    ``valid``/``votes`` are ``(B, D, S)``; the result is ``(B, D, V)``.
    The loop over the alphabet is fine: V is a handful of values while
    B·D·S is the bulk.
    """
    counts = np.zeros(valid.shape[:-1] + (n_values,), dtype=np.int64)
    for value in range(n_values):
        counts[..., value] = (valid & (votes == value)).sum(axis=-1)
    return counts


def survivor_mask(np, valid, votes, ts, slack: int):
    """Line 1 of Algorithms 3 and 4: the ``possibleVotes`` survivors.

    A message *m* survives iff
    ``|{o : vote_o = vote_m or ts_m > ts_o}| > slack`` counted over the
    valid messages *o* of the same receiver (*m* supports itself, exactly
    as in the scalar :func:`repro.core.flv_class2.survivors`).  Arrays are
    ``(B, D, S)``; the pairwise comparison materializes ``(B, D, S, S)``,
    which is small at consensus scale (S = n ≤ a few dozen).
    """
    votes_m = votes[..., :, None]
    votes_o = votes[..., None, :]
    ts_m = ts[..., :, None]
    ts_o = ts[..., None, :]
    cond = (votes_o == votes_m) | (ts_m > ts_o)
    support = (valid[..., None, :] & cond).sum(axis=-1)
    return valid & (support > slack)


def resolve_any_columnar(np, valid, votes, n_values: int):
    """Line 11 of Algorithm 1: deterministic choice among received votes.

    Where a receiver got no valid message the result is ``NULL_CODE`` —
    mirroring the scalar path, which maps ``?`` with an empty vector to
    ``null``.
    """
    present = np.zeros(valid.shape[:-1] + (n_values,), dtype=bool)
    for value in range(n_values):
        present[..., value] = (valid & (votes == value)).any(axis=-1)
    return pick_min_code(np, present)


def flv_class1_columnar(np, valid, votes, n_values: int, slack: int):
    """Algorithm 2 over ``(B, D, S)`` arrays → ``(concrete, any_mask)``.

    ``concrete`` is ``(B, D)`` codes (−1 where the result is not a single
    value); ``any_mask`` marks receivers whose result is ``?``.  Receivers
    that are neither hold ``null``.
    """
    counts = counts_by_value(np, valid, votes, n_values)
    received = valid.sum(axis=-1)
    correct = counts > slack
    n_correct = correct.sum(axis=-1)
    concrete = np.where(n_correct == 1, pick_min_code(np, correct), NULL_CODE)
    any_mask = (n_correct != 1) & (received > 2 * slack)
    return concrete, any_mask


def flv_class2_columnar(
    np, valid, votes, ts, n_values: int, slack: int, b: int
):
    """Algorithm 3 over ``(B, D, S)`` arrays → ``(concrete, any_mask)``."""
    surviving = survivor_mask(np, valid, votes, ts, slack)
    support = counts_by_value(np, surviving, votes, n_values)
    correct = support > b
    n_correct = correct.sum(axis=-1)
    concrete = np.where(n_correct == 1, pick_min_code(np, correct), NULL_CODE)
    received = valid.sum(axis=-1)
    any_mask = (n_correct != 1) & (received > slack + b)
    return concrete, any_mask


def flv_class3_columnar(
    np,
    valid,
    votes,
    ts,
    history_support,
    n_values: int,
    slack: int,
    b: int,
    ensure_unanimity: bool,
) -> Tuple[object, object]:
    """Algorithm 4 over ``(B, D, S)`` arrays → ``(concrete, any_mask)``.

    ``history_support[b, d, m]`` is the number of valid messages *o* (of
    the same receiver) whose history contains ``(vote_m, ts_m)`` — the
    executor computes it from its per-process history arrays and the
    Byzantine history tables, since only it knows where histories live.
    """
    surviving = survivor_mask(np, valid, votes, ts, slack)
    certified = surviving & (history_support > b)
    correct = np.zeros(valid.shape[:-1] + (n_values,), dtype=bool)
    for value in range(n_values):
        correct[..., value] = (certified & (votes == value)).any(axis=-1)
    n_correct = correct.sum(axis=-1)
    concrete = np.where(n_correct == 1, pick_min_code(np, correct), NULL_CODE)
    any_mask = n_correct > 1
    # Lines 7-9: the zero-timestamp (unanimity) branch, entered only when
    # no vote was certified.
    zero_ts = (valid & (ts == 0)).sum(axis=-1) > slack
    pending = (n_correct == 0) & zero_ts
    if ensure_unanimity:
        counts = counts_by_value(np, valid, votes, n_values)
        received = valid.sum(axis=-1)
        top = counts.max(axis=-1)
        has_majority = (2 * top > received) & (received > 0)
        majority = pick_min_code(np, counts == top[..., None])
        concrete = np.where(pending & has_majority, majority, concrete)
        any_mask = any_mask | (pending & ~has_majority)
    else:
        any_mask = any_mask | pending
    return concrete, any_mask


def threshold_pick(np, counts, threshold: int):
    """Line 31-32 of Algorithm 1: values reaching ``TD``, chosen determinately.

    ``counts`` is ``(B, D, V)``; the result is ``(B, D)`` codes, −1 where
    no value reached the threshold.  With multiple winners the minimum
    code is returned — exactly ``deterministic_choice`` on the winner set.
    """
    return pick_min_code(np, counts >= threshold)
