"""Parameter bundles for the generic algorithm (Section 3.2).

A :class:`ConsensusParameters` object collects the four parameters of
Algorithm 1 — the decision threshold ``TD``, the ``FLAG``, the ``FLV``
function and the ``Selector`` — together with the fault model, and validates
the constraints the correctness theorems impose:

* Agreement needs ``FLAG = φ ∧ TD > b`` or ``FLAG = * ∧ TD > (n + b)/2``
  (Theorem 1, iii-a / iii-b);
* Termination needs ``TD ≤ n − b − f`` (Theorem 1, iv).

:class:`GenericConsensusConfig` carries the optional switches: the Section
3.1 optimizations, the line-26 ablation, and the randomized-coin adaptation
of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.flv import FLVFunction
from repro.core.selector import Selector
from repro.core.types import FaultModel, Flag, Phase, Value


class ParameterError(ValueError):
    """Raised when a parameter combination violates the paper's constraints."""


@dataclass(frozen=True)
class ConsensusParameters:
    """The four parameters of Algorithm 1, plus the fault model."""

    model: FaultModel
    threshold: int
    flag: Flag
    flv: FLVFunction
    selector: Selector

    def __post_init__(self) -> None:
        n, b, f = self.model.n, self.model.b, self.model.f
        if self.threshold <= 0:
            raise ParameterError(f"TD must be positive, got {self.threshold}")
        if self.threshold > n - b - f:
            raise ParameterError(
                f"termination requires TD ≤ n − b − f: "
                f"TD={self.threshold}, n−b−f={n - b - f}"
            )
        if self.flag is Flag.ANY:
            if 2 * self.threshold <= n + b:
                raise ParameterError(
                    f"agreement with FLAG=* requires TD > (n+b)/2: "
                    f"TD={self.threshold}, (n+b)/2={(n + b) / 2}"
                )
        else:
            if self.threshold <= b:
                raise ParameterError(
                    f"agreement with FLAG=φ requires TD > b: "
                    f"TD={self.threshold}, b={b}"
                )
        if self.flv.threshold != self.threshold:
            raise ParameterError(
                f"FLV was built with TD={self.flv.threshold}, "
                f"parameters carry TD={self.threshold}"
            )
        if self.flv.model != self.model:
            raise ParameterError("FLV fault model differs from parameter model")
        if self.selector.model != self.model:
            raise ParameterError("Selector fault model differs from parameter model")

    @classmethod
    def unchecked(
        cls,
        model: "FaultModel",
        threshold: int,
        flag: Flag,
        flv: FLVFunction,
        selector: Selector,
    ) -> "ConsensusParameters":
        """Construct a bundle **without** the Theorem-1 validation.

        The boundary-hunting instruments (the scenario fuzzer) need to
        execute parameter points the correctness theorems reject — that is
        exactly where counterexamples live.  Structural consistency is
        still enforced (the FLV/selector must be built for this model and
        threshold, and ``TD`` must be positive and reachable), but the
        agreement and termination bounds are deliberately not: a bundle
        built here may lose safety or liveness by design.  Never use this
        for anything presented as a correct instantiation.
        """
        if threshold <= 0:
            raise ParameterError(f"TD must be positive, got {threshold}")
        if threshold > model.n:
            raise ParameterError(
                f"TD={threshold} can never be reached with n={model.n}"
            )
        if flv.threshold != threshold:
            raise ParameterError(
                f"FLV was built with TD={flv.threshold}, "
                f"parameters carry TD={threshold}"
            )
        if flv.model != model:
            raise ParameterError("FLV fault model differs from parameter model")
        if selector.model != model:
            raise ParameterError("Selector fault model differs from parameter model")
        self = object.__new__(cls)
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "threshold", threshold)
        object.__setattr__(self, "flag", flag)
        object.__setattr__(self, "flv", flv)
        object.__setattr__(self, "selector", selector)
        return self

    @property
    def rounds_per_phase(self) -> int:
        """2 when ``FLAG = *`` (no validation round), 3 when ``FLAG = φ``."""
        return 3 if self.flag.needs_validation_round else 2

    @property
    def state_footprint(self) -> tuple[str, ...]:
        """Which of (vote, ts, history) the instantiation actually uses."""
        req = self.flv.requirements
        names = ["vote"]
        if req.uses_ts:
            names.append("ts")
        if req.uses_history:
            names.append("history")
        return tuple(names)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"TD={self.threshold}, FLAG={self.flag}, flv={self.flv.name}, "
            f"selector={self.selector.name}, {self.model.describe()}"
        )


#: A coin is a callable ``phase → value`` used by randomized algorithms when
#: FLV returns ``?`` (Section 6 replaces line 11 of Algorithm 1 with it).
Coin = Callable[[Phase], Value]


@dataclass(frozen=True)
class GenericConsensusConfig:
    """Optional behaviour switches of the generic algorithm.

    * ``skip_first_selection`` — Section 3.1 optimization: suppress the
      selection round of phase 1, pre-initializing ``select_p = init_p`` and
      a common validator set.
    * ``static_selector_optimization`` — when the Selector is static, do not
      exchange the set and suppress lines 15/21 (Section 3.1).  ``None``
      means "auto": enabled iff ``selector.is_static``.
    * ``record_validation_in_history`` — ablation for the line-26 subtlety
      (see DESIGN.md §4): also log validated pairs into the history.
    * ``coin`` — randomized adaptation: when set, line 11's deterministic
      choice is replaced by this coin (Section 6).
    * ``max_history_size`` — optional bound on the history log (footnote 5
    	 notes bounding it costs an extra round in general; the simulation
      simply truncates oldest entries, which is only safe for experiments).
    """

    skip_first_selection: bool = False
    static_selector_optimization: Optional[bool] = None
    record_validation_in_history: bool = False
    coin: Optional[Coin] = None
    max_history_size: Optional[int] = None

    def uses_static_selector(self, selector: Selector) -> bool:
        """Resolve the ``static_selector_optimization`` tri-state."""
        if self.static_selector_optimization is None:
            return selector.is_static
        return self.static_selector_optimization
