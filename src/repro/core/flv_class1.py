"""FLV for class 1 (Algorithm 2 of the paper).

Class 1 is characterized by ``FLAG = *`` and ``TD > (n + 3b + f)/2``, which
forces ``n > 5b + 3f``.  Only the ``vote`` field of the received messages is
inspected — no timestamps, no history — which is why class-1 algorithms keep
the smallest process state, at the price of the largest ``n``.

Pseudocode (Algorithm 2)::

    1: correctVotes ← { v : |{(v,−,−,−) ∈ μ}| > n − TD + b }
    2: if |correctVotes| = 1 then return v ∈ correctVotes
    4: else if |μ| > 2(n − TD + b) then return ?
    6: else return null

Intuition (Figure 1 of the paper, n=6, b=1, f=0, TD=5): once ``v1`` is
locked, at least ``TD − b`` honest processes vote ``v1``, so at most
``n − TD + b`` messages can carry any other value; any vector larger than
``2(n − TD + b)`` therefore contains ``v1`` more than ``n − TD + b`` times
and line 1 catches it.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.flv import FLVFunction, FLVRequirements, FLVResult
from repro.core.types import FaultModel, SelectionMessage
from repro.utils.det import value_counts
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE


def class1_min_threshold(model: FaultModel) -> int:
    """Smallest integer ``TD`` with ``TD > (n + 3b + f)/2``."""
    return (model.n + 3 * model.b + model.f) // 2 + 1


def class1_min_processes(b: int, f: int) -> int:
    """Smallest ``n`` satisfying the class-1 bound ``n > 5b + 3f``."""
    return 5 * b + 3 * f + 1


class FLVClass1(FLVFunction):
    """Algorithm 2: vote-only locked-value detection."""

    name = "flv-class1"

    def __init__(self, model: FaultModel, threshold: int) -> None:
        super().__init__(model, threshold)

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=False,
            uses_history=False,
            supports_prel_liveness=True,
        )

    def satisfies_liveness_bound(self) -> bool:
        """True iff ``TD > (n + 3b + f)/2`` (Theorem 2's liveness condition)."""
        return 2 * self.threshold > self._n + 3 * self._b + self.model.f

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        slack = self._slack  # n − TD + b
        counts = value_counts(self._votes(messages))
        correct_votes = [value for value, count in counts.items() if count > slack]
        if len(correct_votes) == 1:
            return correct_votes[0]
        if len(messages) > 2 * slack:
            return ANY_VALUE
        return NULL_VALUE
