"""The ``FLV`` ("Find the Locked Value") abstraction (Section 3.2).

An FLV function examines the vector of selection-round messages
``⟨vote, ts, history, −⟩`` and returns:

* a concrete value ``v``   — only ``v`` may safely be selected,
* :data:`~repro.utils.sentinels.ANY_VALUE` (the paper's ``?``) — any received
  vote may be selected,
* :data:`~repro.utils.sentinels.NULL_VALUE` — not enough information.

Required abstract properties (all quoted from the paper):

* **FLV-validity** — a concrete result must be one of the received votes;
* **FLV-agreement** — if value ``v`` is locked in round ``r``, only ``v`` or
  ``null`` can be returned;
* **FLV-liveness** — if messages from *all* correct processes are received,
  ``null`` cannot be returned.  Randomized algorithms need the stronger
  variant: any vector with at least ``n − b − f`` messages must yield a
  non-``null`` result (Section 6).

Concrete subclasses implement :meth:`FLVFunction.evaluate` over a list of
well-formed :class:`~repro.core.types.SelectionMessage` objects (the engine
drops malformed Byzantine payloads before calling FLV, mirroring defensive
parsing in a real implementation).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.core.types import FaultModel, SelectionMessage, Value
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE, Sentinel

#: The result type of an FLV evaluation.
FLVResult = Union[Value, Sentinel]


def is_concrete(result: FLVResult) -> bool:
    """True iff ``result`` is a concrete value (not ``?`` and not ``null``)."""
    return result is not ANY_VALUE and result is not NULL_VALUE


@dataclass(frozen=True)
class FLVRequirements:
    """The prerequisites a given FLV instantiation imposes.

    * ``min_td_strict_bound(model)`` — the strict lower bound on ``TD``
      required for FLV-liveness (e.g. ``(n+3b+f)/2`` for class 1).
    * ``uses_ts`` / ``uses_history`` — which state variables the function
      reads; reproduces the "Process state" column of Table 1.
    * ``supports_prel_liveness`` — whether the function satisfies the stronger
      liveness variant needed by randomized algorithms (true for classes 1
      and 2, false for class 3; Section 6).
    * ``needs_strong_selector_validity`` — class 3 needs
      Selector-strongValidity (``|S| > 3b + 2f``) for liveness.
    """

    uses_ts: bool
    uses_history: bool
    supports_prel_liveness: bool
    needs_strong_selector_validity: bool = False


class FLVFunction(abc.ABC):
    """Abstract base class of all FLV instantiations."""

    #: Human-readable name used in traces and reports.
    name: str = "flv"

    def __init__(self, model: FaultModel, threshold: int) -> None:
        """``model`` is the (n, b, f) envelope; ``threshold`` is ``TD``."""
        self._model = model
        self._threshold = threshold

    @property
    def model(self) -> FaultModel:
        """The fault model this instance was built for."""
        return self._model

    @property
    def threshold(self) -> int:
        """The decision threshold ``TD`` the function is parameterized with."""
        return self._threshold

    @property
    @abc.abstractmethod
    def requirements(self) -> FLVRequirements:
        """Static requirements/uses of this instantiation."""

    @abc.abstractmethod
    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        """Run the FLV function on the received (well-formed) messages.

        ``phase`` is the current phase φ; most instantiations ignore it, but
        Ben-Or's FLV (Algorithm 9) checks for timestamps equal to ``φ − 1``.
        """

    def __call__(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        return self.evaluate(messages, phase)

    # Convenience accessors used by every concrete implementation ---------

    @property
    def _n(self) -> int:
        return self._model.n

    @property
    def _b(self) -> int:
        return self._model.b

    @property
    def _slack(self) -> int:
        """The recurring quantity ``n − TD + b``."""
        return self._n - self._threshold + self._b

    def _votes(self, messages: Sequence[SelectionMessage]) -> List[Value]:
        return [message.vote for message in messages]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self._n}, b={self._b}, "
            f"f={self._model.f}, TD={self._threshold})"
        )
