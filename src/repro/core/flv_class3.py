"""FLV for class 3 (Algorithm 4 of the paper).

Class 3 is characterized by ``FLAG = φ`` and ``TD > 2b + f``, which forces
``n > 3b + 2f`` — the optimal Byzantine resilience (PBFT's ``n > 3b``).  With
``TD`` possibly ``≤ 3b + f``, timestamps alone no longer suffice: the
``history`` log is used as a certificate that a (vote, ts) pair really was
selected by enough honest processes.

Pseudocode (Algorithm 4)::

     1: possibleVotes ← {(vote, ts, −, −) ∈ μ :
            |{(vote′, ts′, −, −) ∈ μ : vote = vote′ ∨ ts > ts′}| > n − TD + b}
     2: correctVotes ← {v : (v, ts) ∈ possibleVotes ∧
            |{(−, −, history′, −) ∈ μ : (v, ts) ∈ history′}| > b}
     3: if |correctVotes| = 1 then return v
     5: else if |correctVotes| > 1 then return ?
     7: else if |{(−, ts, −, −) ∈ μ : ts = 0}| > n − TD + b then
     8:     if some value v has a majority of messages in μ then return v
    10:     else return ?
    12: else return null

Lines 7-11 handle the initial situation (all timestamps still 0): line 9
ensures *unanimity* — if all honest processes proposed the same ``v``, a
majority of messages carry ``v`` and only ``v`` may be returned.

FLV-liveness for this class additionally requires *Selector-strongValidity*
(``|Selector(p, φ)| > 3b + 2f``): with smaller validator sets a validated
value might be certified by too few honest histories, and the function could
return ``null`` forever (Theorem 4).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.flv import FLVFunction, FLVRequirements, FLVResult
from repro.core.flv_class2 import survivors
from repro.core.types import FaultModel, SelectionMessage, Value
from repro.utils.det import majority_value
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE


def class3_min_threshold(model: FaultModel) -> int:
    """Smallest integer ``TD`` with ``TD > 2b + f``."""
    return 2 * model.b + model.f + 1


def class3_min_processes(b: int, f: int) -> int:
    """Smallest ``n`` satisfying the class-3 bound ``n > 3b + 2f``."""
    return 3 * b + 2 * f + 1


class FLVClass3(FLVFunction):
    """Algorithm 4: vote + timestamp + history locked-value detection."""

    name = "flv-class3"

    def __init__(
        self, model: FaultModel, threshold: int, *, ensure_unanimity: bool = True
    ) -> None:
        """``ensure_unanimity`` keeps lines 8-9; PBFT drops them (Section 5.3)."""
        super().__init__(model, threshold)
        self._ensure_unanimity = ensure_unanimity

    @property
    def ensure_unanimity(self) -> bool:
        """Whether the unanimity branch (lines 8-9) is active."""
        return self._ensure_unanimity

    @property
    def requirements(self) -> FLVRequirements:
        return FLVRequirements(
            uses_ts=True,
            uses_history=True,
            supports_prel_liveness=False,
            needs_strong_selector_validity=True,
        )

    def satisfies_liveness_bound(self) -> bool:
        """True iff ``TD > 2b + f`` (Theorem 4's liveness condition)."""
        return self.threshold > 2 * self._b + self.model.f

    def _history_support(
        self, messages: Sequence[SelectionMessage], vote: Value, ts: int
    ) -> int:
        """Number of received histories containing the pair ``(vote, ts)``."""
        return sum(1 for message in messages if (vote, ts) in message.history)

    def evaluate(
        self, messages: Sequence[SelectionMessage], phase: int = 0
    ) -> FLVResult:
        slack = self._slack  # n − TD + b
        possible = survivors(messages, slack)
        correct_votes = set()
        for message in possible:
            if self._history_support(messages, message.vote, message.ts) > self._b:
                correct_votes.add(message.vote)
        if len(correct_votes) == 1:
            return next(iter(correct_votes))
        if len(correct_votes) > 1:
            return ANY_VALUE
        zero_ts = sum(1 for message in messages if message.ts == 0)
        if zero_ts > slack:
            if self._ensure_unanimity:
                majority = majority_value(self._votes(messages))
                if majority is not None:
                    return majority
            return ANY_VALUE
        return NULL_VALUE
