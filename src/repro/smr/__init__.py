"""State machine replication on top of repeated consensus (Section 5.3).

Paxos and PBFT "solve a sequence of instances of consensus"; this package
provides that sequence: a replicated log where each slot is decided by one
instance of the generic algorithm, and pluggable state machines applied in
log order.
"""

from repro.smr.log import LogEntry, ReplicatedLog
from repro.smr.machine import Command, CounterMachine, KeyValueStore, StateMachine
from repro.smr.replica import ReplicatedService, SmrReport
from repro.smr.serve import (
    ServeConfig,
    ServeReport,
    WorkloadSpec,
    run_serve,
    sweep_serve,
)

__all__ = [
    "Command",
    "CounterMachine",
    "KeyValueStore",
    "LogEntry",
    "ReplicatedLog",
    "ReplicatedService",
    "ServeConfig",
    "ServeReport",
    "SmrReport",
    "StateMachine",
    "WorkloadSpec",
    "run_serve",
    "sweep_serve",
]
