"""Pipelined, batched SMR serving: open-loop client load through consensus.

The paper's Section 5.3 frames Paxos/PBFT as "a sequence of instances of
consensus".  This module is that sequence run as a *service*: an open-loop
workload of client commands flows into a replicated log where each slot is
decided by one instance of the generic algorithm on the unified kernel's
``observe="metrics"`` hot path, with the two classic serving optimizations:

* **request batching** — one consensus instance decides an ordered *batch*
  of commands per slot (``batch`` commands / ``batch_bytes`` bytes cap),
  formed deterministically in arrival order;
* **leader pipelining** — up to ``depth`` slots are in flight at once
  (slot ``k+1`` proposed while slot ``k`` is still deciding), with
  out-of-order decide buffered and applied *in order* through the
  replicated log's contiguous prefix watermark.

Time is simulated: slot ``s`` proposed at clock ``t`` commits at ``t + d``
where ``d`` is the deciding instance's duration (simulated time on the
timed engine, rounds × ``round_cost`` under lockstep), so a request's
latency is ``apply_time − arrival_time`` — arrivals are open-loop and never
wait for service progress.  Every honest replica proposes the same batch,
so a slot's decided value equals its batch whenever the decision is honest;
an undecided slot (or a Byzantine-injected foreign value) is retried *in
the same slot index* with an attempt-derived seed, which keeps the
committed command sequence FIFO-equal to the arrival order at **every**
``(batch, depth)`` setting — the digest-equivalence oracle the test suite
sweeps.

The workload generator is lazy end to end (per-client arrival streams
merged on the fly), so a million-request run holds O(clients) state.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from collections import deque
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.campaigns.spec import derive_seed, resolve_algorithm
from repro.core.types import FaultModel
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_METRICS, run_instance
from repro.observability.telemetry import Telemetry
from repro.scenarios.compile import ScenarioInapplicable, compile_scenario
from repro.scenarios.registry import SCENARIO_REGISTRY, get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.smr.log import LogEntry, ReplicatedLog
from repro.smr.machine import Command, KeyValueStore, StateMachine

__all__ = [
    "ServeConfig",
    "ServeReport",
    "WorkloadSpec",
    "run_serve",
    "sweep_serve",
]

#: Arrival disciplines the workload generator supports.
ARRIVALS = ("poisson", "fixed")

#: Histogram the per-request latencies land in.
LATENCY_HISTOGRAM = "smr.request_latency"


# --------------------------------------------------------------- workload


@dataclass(frozen=True)
class WorkloadSpec:
    """An open-loop client workload: seeded arrivals, generated lazily.

    ``rate`` is the *aggregate* arrival rate (commands per simulated time
    unit) split evenly over ``clients``; each client draws its own seeded
    inter-arrival stream (exponential for ``"poisson"``, constant for
    ``"fixed"``) and issues ``("set", key, seq)`` commands over a ``keys``-
    sized keyspace.  Streams are merged by arrival time on the fly, so the
    expected ``rate × duration`` commands are never materialized — millions
    of requests cost O(clients) memory.
    """

    clients: int = 4
    rate: float = 200.0
    duration: float = 1.0
    arrival: str = "poisson"
    keys: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be ≥ 1, got {self.clients}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival discipline {self.arrival!r}; known: {ARRIVALS}"
            )
        if self.keys < 1:
            raise ValueError(f"keys must be ≥ 1, got {self.keys}")

    @property
    def expected_commands(self) -> int:
        """The expected arrival count (exact for ``"fixed"``)."""
        return int(self.rate * self.duration)

    def client_stream(self, client: int) -> Iterator[Tuple[float, Command]]:
        """One client's lazy ``(arrival_time, command)`` stream."""
        rng = random.Random(derive_seed(self.seed, f"client{client}"))
        rate = self.rate / self.clients
        step = 1.0 / rate
        now = 0.0
        seq = 0
        while True:
            if self.arrival == "poisson":
                now += rng.expovariate(rate)
            else:
                # Multiply, don't accumulate: summed steps drift past the
                # duration boundary and drop the last arrival.
                now = step * (seq + 1)
            if now > self.duration:
                return
            yield now, ("set", f"c{client}k{seq % self.keys}", seq)
            seq += 1

    def arrivals(self) -> Iterator[Tuple[float, Command]]:
        """All clients' streams merged by arrival time (ties: client id)."""

        def tagged(client: int) -> Iterator[Tuple[float, int, Command]]:
            for when, command in self.client_stream(client):
                yield when, client, command

        merged = heapq.merge(*(tagged(c) for c in range(self.clients)))
        for when, _client, command in merged:
            yield when, command


# ----------------------------------------------------------------- config


@dataclass(frozen=True)
class ServeConfig:
    """The serving side: consensus cell, batching and pipelining knobs.

    ``batch`` caps commands per slot, ``batch_bytes`` additionally caps the
    batch's ``repr`` payload (a batch always holds at least one command);
    ``depth`` is the pipeline window — how many slots may be deciding at
    once.  ``batch=1, depth=1`` is the slot-at-a-time baseline every other
    setting must be digest-equal to.  ``max_attempts`` bounds same-slot
    retries before the service reports itself stalled.
    """

    algorithm: str = "pbft"
    n: int = 4
    b: int = 1
    f: int = 0
    scenario: Union[str, ScenarioSpec] = "fault-free"
    engine: str = "lockstep"
    batch: int = 8
    batch_bytes: Optional[int] = None
    depth: int = 2
    seed: int = 0
    max_phases: Optional[int] = None
    max_attempts: int = 8
    #: Simulated duration of one lockstep round (timed runs use the
    #: network's own simulated clock instead).
    round_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError(f"batch must be ≥ 1, got {self.batch}")
        if self.batch_bytes is not None and self.batch_bytes < 1:
            raise ValueError(f"batch_bytes must be ≥ 1, got {self.batch_bytes}")
        if self.depth < 1:
            raise ValueError(f"depth must be ≥ 1, got {self.depth}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be ≥ 1, got {self.max_attempts}")
        if self.round_cost <= 0:
            raise ValueError(f"round_cost must be > 0, got {self.round_cost}")

    def scenario_spec(self) -> ScenarioSpec:
        if isinstance(self.scenario, ScenarioSpec):
            return self.scenario
        return get_scenario(self.scenario)


# ----------------------------------------------------------------- report


@dataclass
class ServeReport:
    """Everything a serve run measured, JSON-friendly via :meth:`to_row`."""

    algorithm: str
    scenario: str
    engine: str
    batch: int
    depth: int
    #: Commands that arrived (entered the open-loop queue).
    offered: int
    #: Commands committed and applied in log order.
    committed_commands: int
    slots_committed: int
    #: Extra same-slot consensus attempts (undecided or rejected value).
    retries: int
    #: Attempts whose decided value was not the proposed batch.
    rejected: int
    #: True when a slot exhausted ``max_attempts`` and serving stopped.
    stalled: bool
    simulated_duration: float
    wall_seconds: float
    #: Committed commands per wall-clock second — the bench figure.
    throughput: float
    #: Request-latency stats (simulated units): count/min/max/mean/p50/p95/p99.
    latency: Dict[str, float]
    digests_agree: bool
    #: The common state-machine digest (``None`` if replicas diverged).
    digest: Optional[str]
    #: Digest over the committed command sequence (prefix-equality oracle).
    log_digest: str
    #: The run's instrument registry (counters + latency histogram).
    telemetry: Optional[Telemetry] = field(default=None, repr=False)

    @property
    def mean_batch_size(self) -> float:
        if not self.slots_committed:
            return 0.0
        return self.committed_commands / self.slots_committed

    def to_row(self) -> Dict[str, object]:
        """A flat JSON-serializable row (telemetry handle stripped)."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "scenario": self.scenario,
            "engine": self.engine,
            "batch": self.batch,
            "depth": self.depth,
            "offered": self.offered,
            "committed_commands": self.committed_commands,
            "slots_committed": self.slots_committed,
            "retries": self.retries,
            "rejected": self.rejected,
            "stalled": self.stalled,
            "simulated_duration": round(self.simulated_duration, 6),
            "throughput": round(self.throughput, 2),
            "digests_agree": self.digests_agree,
            "digest": self.digest,
            "log_digest": self.log_digest,
        }
        for column in ("p50", "p95", "p99", "mean", "max"):
            value = self.latency.get(column)
            row[f"latency_{column}"] = (
                round(value, 6) if value is not None else None
            )
        # Wall time is volatile (machine-dependent); keep it out of the
        # canonical columns the sweep JSONL is compared on.
        row["_wall_seconds"] = round(self.wall_seconds, 6)
        return row


def _log_digest(log: ReplicatedLog) -> str:
    """SHA-256 over the committed prefix's flattened command sequence."""
    digest = hashlib.sha256()
    for entry in log.committed_prefix():
        for command in entry.command:
            digest.update(repr(command).encode("utf-8"))
    return digest.hexdigest()


# ------------------------------------------------------------------ serve


class _SlotRunner:
    """Executes one log slot's consensus (with same-slot retry semantics)."""

    def __init__(self, config: ServeConfig, telemetry: Telemetry) -> None:
        self._config = config
        self._telemetry = telemetry
        self._spec = config.scenario_spec()
        self._model = FaultModel(config.n, config.b, config.f)
        self._parameters, self._algo_config = resolve_algorithm(
            config.algorithm, self._model
        )
        # Same admissibility rule as the campaign runner: a config asking
        # for more faults than the algorithm's envelope hosts (crash
        # faults under PBFT, say) is not servable.
        hosted = self._parameters.model
        if hosted.b < self._model.b or hosted.f < self._model.f:
            raise ScenarioInapplicable(
                f"{config.algorithm} hosts (b={hosted.b}, f={hosted.f}), "
                f"serve config wants (b={self._model.b}, f={self._model.f})"
            )
        # Placement is seed-independent — compile once up front so an
        # inapplicable scenario raises before any state is built.
        probe = compile_scenario(
            self._spec, self._model, config.engine, 0
        )
        self.byzantine = probe.byzantine
        self._max_phases = (
            config.max_phases
            if config.max_phases is not None
            else probe.max_phases()
        )
        self.retries = 0
        self.rejected = 0

    @property
    def model(self) -> FaultModel:
        return self._model

    def run(
        self, slot: int, batch: Command
    ) -> Tuple[float, Optional[int], bool]:
        """Decide ``batch`` in ``slot``; returns (duration, phases, ok).

        Each attempt is one consensus instance under an attempt-derived
        seed; the duration of *every* attempt accumulates into the slot's
        commit latency.  ``ok=False`` means the slot exhausted its attempt
        budget — the service reports itself stalled.
        """
        config = self._config
        telemetry = self._telemetry
        duration = 0.0
        phases: Optional[int] = None
        for attempt in range(config.max_attempts):
            run_seed = derive_seed(config.seed, f"slot{slot}attempt{attempt}")
            compiled = compile_scenario(
                self._spec, self._model, config.engine, run_seed
            )
            values = {
                pid: batch
                for pid in self._model.processes
                if pid not in compiled.byzantine
            }
            instance = build_instance(
                self._parameters,
                values,
                config=self._algo_config,
                byzantine=compiled.byzantine,
            )
            outcome = run_instance(
                instance,
                compiled.scheduler,
                max_phases=self._max_phases,
                observe=OBSERVE_METRICS,
                crash_schedule=compiled.crash_schedule,
            )
            telemetry.count("smr.messages", outcome.messages_sent)
            telemetry.count("smr.rounds", outcome.rounds_executed)
            if config.engine == "timed" and outcome.simulated_time is not None:
                duration += outcome.simulated_time
            else:
                duration += outcome.rounds_executed * config.round_cost
            decided = outcome.decided_value
            if decided == batch:
                return duration, outcome.phases_to_last_decision, True
            if decided is not None:
                # All honest replicas proposed the batch, so a different
                # decided value is Byzantine-injected; a real service
                # validates commands before applying and skips the slot.
                self.rejected += 1
                telemetry.count("smr.rejected")
            self.retries += 1
            telemetry.count("smr.retries")
            phases = outcome.phases_to_last_decision
        return duration, phases, False


def run_serve(
    config: ServeConfig,
    workload: Optional[WorkloadSpec] = None,
    *,
    arrivals: Optional[Iterable[Tuple[float, Command]]] = None,
    machine_factory: Callable[[], StateMachine] = KeyValueStore,
    telemetry: Optional[Telemetry] = None,
) -> ServeReport:
    """Serve an open-loop workload through batched, pipelined consensus.

    ``arrivals`` overrides the generated workload with an explicit
    ``(arrival_time, command)`` stream (how the bench replays one fixed
    command list through both serving modes).  Raises
    :class:`~repro.scenarios.compile.ScenarioInapplicable` when the
    configured model cannot host the fault scenario.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    workload = workload if workload is not None else WorkloadSpec()
    stream = iter(arrivals if arrivals is not None else workload.arrivals())
    runner = _SlotRunner(config, telemetry)
    honest = [
        pid for pid in runner.model.processes if pid not in runner.byzantine
    ]
    machines: Dict[int, StateMachine] = {pid: machine_factory() for pid in honest}
    logs: Dict[int, ReplicatedLog] = {pid: ReplicatedLog() for pid in honest}

    pending: deque = deque()  # arrived, not yet batched: (arrival, command)
    in_flight: Dict[int, Tuple[float, Command, List[float], Optional[int]]] = {}
    decided: Dict[int, Tuple[Command, List[float], Optional[int]]] = {}
    clock = 0.0
    next_slot = 0
    apply_slot = 0  # in-order apply watermark (first slot not yet applied)
    offered = 0
    committed_commands = 0
    slots_committed = 0
    stalled = False
    wall_start = perf_counter()
    next_arrival = next(stream, None)

    while True:
        # Propose: fill the pipeline window from the pending queue.
        while not stalled and pending and len(in_flight) < config.depth:
            commands: List[Command] = []
            arrival_times: List[float] = []
            size = 0
            while pending and len(commands) < config.batch:
                arrived, command = pending[0]
                cost = len(repr(command))
                if (
                    commands
                    and config.batch_bytes is not None
                    and size + cost > config.batch_bytes
                ):
                    break
                pending.popleft()
                commands.append(command)
                arrival_times.append(arrived)
                size += cost
            batch = tuple(commands)
            duration, phases, ok = runner.run(next_slot, batch)
            if not ok:
                stalled = True
                telemetry.count("smr.stalled_slots")
                break
            telemetry.count("smr.slots")
            telemetry.count("smr.commands", len(batch))
            telemetry.observe("smr.batch_size", float(len(batch)))
            in_flight[next_slot] = (clock + duration, batch, arrival_times, phases)
            next_slot += 1

        commit_slot: Optional[int] = None
        if in_flight:
            commit_slot = min(
                in_flight, key=lambda slot: (in_flight[slot][0], slot)
            )
        arrival_due = (
            next_arrival is not None
            and not stalled
            and (
                commit_slot is None
                or next_arrival[0] <= in_flight[commit_slot][0]
            )
        )
        if arrival_due:
            when, command = next_arrival  # type: ignore[misc]
            clock = max(clock, when)
            pending.append((when, command))
            offered += 1
            next_arrival = next(stream, None)
            continue
        if commit_slot is None:
            break  # nothing deciding, nothing arriving (or stalled dry)
        # Commit: pop the earliest completion; decide order may be
        # out-of-order in the slot index, so buffer and apply the
        # contiguous prefix only.
        commit_time, batch, arrival_times, phases = in_flight.pop(commit_slot)
        clock = max(clock, commit_time)
        decided[commit_slot] = (batch, arrival_times, phases)
        while apply_slot in decided:
            applied_batch, applied_arrivals, applied_phases = decided.pop(
                apply_slot
            )
            entry = LogEntry(apply_slot, applied_batch, phases=applied_phases)
            for pid in honest:
                logs[pid].commit(entry)
                machine = machines[pid]
                for command in applied_batch:
                    machine.apply(command)
            for arrived in applied_arrivals:
                telemetry.observe(LATENCY_HISTOGRAM, clock - arrived)
            committed_commands += len(applied_batch)
            slots_committed += 1
            apply_slot += 1

    wall_seconds = perf_counter() - wall_start
    digests = {machine.digest() for machine in machines.values()}
    log_digests = {_log_digest(log) for log in logs.values()}
    latency: Dict[str, float] = {}
    if LATENCY_HISTOGRAM in telemetry.histogram_names:
        latency = telemetry.histogram_stats(LATENCY_HISTOGRAM)
    spec = runner._spec if isinstance(config.scenario, ScenarioSpec) else None
    return ServeReport(
        algorithm=config.algorithm,
        scenario=spec.name if spec is not None else str(config.scenario),
        engine=config.engine,
        batch=config.batch,
        depth=config.depth,
        offered=offered,
        committed_commands=committed_commands,
        slots_committed=slots_committed,
        retries=runner.retries,
        rejected=runner.rejected,
        stalled=stalled,
        simulated_duration=clock,
        wall_seconds=wall_seconds,
        throughput=committed_commands / wall_seconds if wall_seconds else 0.0,
        latency=latency,
        digests_agree=len(digests) == 1,
        digest=next(iter(digests)) if len(digests) == 1 else None,
        log_digest=(
            next(iter(log_digests)) if len(log_digests) == 1 else "diverged"
        ),
        telemetry=telemetry,
    )


# ------------------------------------------------------------------ sweep


#: The default load axis of :func:`sweep_serve` (commands per time unit).
DEFAULT_RATES = (50.0, 200.0, 800.0)


def sweep_serve(
    config: ServeConfig,
    workload: WorkloadSpec,
    *,
    rates: Iterable[float] = DEFAULT_RATES,
    scenarios: Optional[Iterable[Union[str, ScenarioSpec]]] = None,
    out: Optional[object] = None,
) -> List[Dict[str, object]]:
    """Campaign cells: serve the workload at every load × fault scenario.

    Each cell derives its own seeds from the base config/workload seeds and
    its coordinates (the campaign convention — rows are independent of
    sweep order).  A scenario the model cannot host becomes an
    ``"inapplicable"`` row; a stalled cell keeps its measurements under
    status ``"stalled"``.  With ``out``, rows are also written as canonical
    JSONL (volatile ``_``-prefixed columns stripped).
    """
    names = (
        list(scenarios)
        if scenarios is not None
        else sorted(SCENARIO_REGISTRY)
    )
    rows: List[Dict[str, object]] = []
    for rate in rates:
        for scenario in names:
            name = (
                scenario.name
                if isinstance(scenario, ScenarioSpec)
                else str(scenario)
            )
            coordinate = f"serve|{name}|rate{rate:g}"
            cell_config = replace(
                config,
                scenario=scenario,
                seed=derive_seed(config.seed, coordinate),
            )
            cell_workload = replace(
                workload,
                rate=rate,
                seed=derive_seed(workload.seed, coordinate),
            )
            base: Dict[str, object] = {"rate": rate, "cell": coordinate}
            try:
                report = run_serve(cell_config, cell_workload)
            except ScenarioInapplicable as exc:
                rows.append(
                    {
                        **base,
                        "status": "inapplicable",
                        "scenario": name,
                        "detail": str(exc),
                    }
                )
                continue
            rows.append(
                {
                    **base,
                    "status": "stalled" if report.stalled else "ok",
                    **report.to_row(),
                }
            )
    if out is not None:
        from repro.campaigns.results import write_rows

        write_rows(out, rows)
    return rows
