"""The replicated log: one consensus-decided entry per slot."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.smr.machine import Command


@dataclass(frozen=True)
class LogEntry:
    """A decided slot."""

    slot: int
    command: Command
    #: How many phases the deciding consensus instance took.
    phases: Optional[int] = None


class ReplicatedLog:
    """An append-only log with a contiguous committed prefix.

    Slots are numbered from 0.  Entries may only be committed once; a
    conflicting commit raises — it would mean consensus agreement was
    violated upstream.

    Both watermarks are maintained incrementally on :meth:`commit`, so
    ``next_slot`` and ``prefix_length`` are O(1) however many slots have
    been committed (service loops read them once per slot; a ``max()``
    scan here made long runs quadratic in committed slots).
    """

    def __init__(self) -> None:
        self._entries: Dict[int, LogEntry] = {}
        # Highest committed slot (next_slot = _max_slot + 1).
        self._max_slot = -1
        # Length of the gap-free prefix starting at slot 0 — the in-order
        # apply watermark pipelined commits advance through.
        self._prefix = 0

    def commit(self, entry: LogEntry) -> None:
        existing = self._entries.get(entry.slot)
        if existing is not None:
            if existing.command != entry.command:
                raise ValueError(
                    f"slot {entry.slot} already committed with "
                    f"{existing.command!r}, refusing {entry.command!r}"
                )
            return  # idempotent re-commit: watermarks already account for it
        self._entries[entry.slot] = entry
        if entry.slot > self._max_slot:
            self._max_slot = entry.slot
        # An out-of-order commit lands beyond the prefix and advances
        # nothing; the commit that fills the gap walks across every
        # already-buffered slot, so the total walk is O(1) amortized.
        while self._prefix in self._entries:
            self._prefix += 1

    def entry(self, slot: int) -> Optional[LogEntry]:
        return self._entries.get(slot)

    @property
    def next_slot(self) -> int:
        """First unused slot index."""
        return self._max_slot + 1

    @property
    def prefix_length(self) -> int:
        """Slots committed gap-free from 0 — the in-order apply watermark."""
        return self._prefix

    def committed_prefix(self) -> Iterator[LogEntry]:
        """Entries from slot 0 up to the first gap, in order."""
        entries = self._entries
        for slot in range(self._prefix):
            yield entries[slot]

    def __len__(self) -> int:
        return len(self._entries)
