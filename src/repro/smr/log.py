"""The replicated log: one consensus-decided entry per slot."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.smr.machine import Command


@dataclass(frozen=True)
class LogEntry:
    """A decided slot."""

    slot: int
    command: Command
    #: How many phases the deciding consensus instance took.
    phases: Optional[int] = None


class ReplicatedLog:
    """An append-only log with a contiguous committed prefix.

    Slots are numbered from 0.  Entries may only be committed once; a
    conflicting commit raises — it would mean consensus agreement was
    violated upstream.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, LogEntry] = {}

    def commit(self, entry: LogEntry) -> None:
        existing = self._entries.get(entry.slot)
        if existing is not None and existing.command != entry.command:
            raise ValueError(
                f"slot {entry.slot} already committed with "
                f"{existing.command!r}, refusing {entry.command!r}"
            )
        self._entries.setdefault(entry.slot, entry)

    def entry(self, slot: int) -> Optional[LogEntry]:
        return self._entries.get(slot)

    @property
    def next_slot(self) -> int:
        """First unused slot index."""
        return max(self._entries) + 1 if self._entries else 0

    def committed_prefix(self) -> Iterator[LogEntry]:
        """Entries from slot 0 up to the first gap, in order."""
        slot = 0
        while slot in self._entries:
            yield self._entries[slot]
            slot += 1

    def __len__(self) -> int:
        return len(self._entries)
