"""Deterministic state machines applied to the replicated log.

Commands must be hashable (they travel through consensus as values) and
deterministic: every replica applying the same log prefix reaches the same
state — checked by :meth:`StateMachine.digest` comparisons in tests.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Commands are immutable tuples ``(op, *args)`` — hashable by construction.
Command = Tuple


@dataclass(frozen=True)
class CommandResult:
    """Outcome of applying one command."""

    command: Command
    output: Any


class StateMachine(abc.ABC):
    """A deterministic application replicated via consensus."""

    @abc.abstractmethod
    def apply(self, command: Command) -> Any:
        """Apply one command, returning its output."""

    @abc.abstractmethod
    def digest(self) -> str:
        """A deterministic fingerprint of the current state."""


class KeyValueStore(StateMachine):
    """A string key-value store.

    Commands: ``("set", key, value)``, ``("get", key)``, ``("del", key)``.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def apply(self, command: Command) -> Any:
        if not isinstance(command, tuple) or not command:
            raise ValueError(f"malformed command: {command!r}")
        op = command[0]
        if op == "set":
            _, key, value = command
            self._data[key] = value
            return value
        if op == "get":
            _, key = command
            return self._data.get(key)
        if op == "del":
            _, key = command
            return self._data.pop(key, None)
        raise ValueError(f"unknown operation: {op!r}")

    def get(self, key: str) -> Optional[Any]:
        """Local read (not linearized — test convenience)."""
        return self._data.get(key)

    def digest(self) -> str:
        blob = repr(sorted(self._data.items()))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._data)


class CounterMachine(StateMachine):
    """A single integer counter: ``("add", k)`` and ``("reset",)``."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, command: Command) -> Any:
        op = command[0]
        if op == "add":
            self.value += command[1]
            return self.value
        if op == "reset":
            self.value = 0
            return 0
        raise ValueError(f"unknown operation: {op!r}")

    def digest(self) -> str:
        return hashlib.sha256(str(self.value).encode()).hexdigest()
