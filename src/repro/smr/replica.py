"""Repeated consensus driving a replicated service.

:class:`ReplicatedService` simulates ``n`` replicas, each holding a state
machine, a replicated log, and a queue of pending client commands.  Slot by
slot, the replicas run one instance of the generic consensus algorithm whose
proposals are each replica's oldest pending command (replicas may well
propose *different* commands — consensus picks one); the decided command is
committed and applied everywhere, decided-but-different proposals return to
the queue.

This reproduces the context of Section 5.3 ("Paxos and PBFT solve a
sequence of instances of consensus — state machine replication") and powers
``benchmarks/bench_smr.py`` and the ``examples/replicated_kv_store.py``
example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.algorithms.registry import AlgorithmSpec
from repro.core.types import ProcessId
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_METRICS, run_instance
from repro.engine.scheduler import LockstepScheduler
from repro.faults.registry import ByzantineSpec
from repro.smr.log import LogEntry, ReplicatedLog
from repro.smr.machine import Command, StateMachine


@dataclass
class SmrReport:
    """Aggregate statistics of a service run."""

    slots_committed: int
    total_phases: int
    total_rounds: int
    total_messages: int
    digests_agree: bool

    @property
    def phases_per_slot(self) -> float:
        if self.slots_committed == 0:
            return 0.0
        return self.total_phases / self.slots_committed


class ReplicatedService:
    """A consensus-replicated deterministic service."""

    def __init__(
        self,
        spec: AlgorithmSpec,
        machine_factory: Callable[[], StateMachine],
        *,
        byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
        max_phases_per_slot: int = 30,
    ) -> None:
        self._spec = spec
        self._model = spec.parameters.model
        self._byzantine = dict(byzantine or {})
        self._max_phases = max_phases_per_slot
        self._honest = [
            pid for pid in self._model.processes if pid not in self._byzantine
        ]
        self.machines: Dict[ProcessId, StateMachine] = {
            pid: machine_factory() for pid in self._honest
        }
        self.logs: Dict[ProcessId, ReplicatedLog] = {
            pid: ReplicatedLog() for pid in self._honest
        }
        self._pending: Dict[ProcessId, List[Command]] = {
            pid: [] for pid in self._honest
        }
        self._committed: set = set()
        self._stats = {"phases": 0, "rounds": 0, "messages": 0}

    @property
    def spec(self) -> AlgorithmSpec:
        return self._spec

    def submit(self, command: Command, *, to: Optional[ProcessId] = None) -> None:
        """A client submits a command (to one replica, or broadcast)."""
        targets = [to] if to is not None else self._honest
        for pid in targets:
            if pid in self._pending:
                self._pending[pid].append(command)

    def _gossip(self) -> None:
        """Disseminate pending commands between replicas.

        Models the client-request forwarding every real SMR system performs
        (a client request reaching one replica eventually reaches all).
        Without it, a targeted submission could starve behind the no-op
        proposals of the other replicas.
        """
        everything: List[Command] = []
        for pid in self._honest:
            for command in self._pending[pid]:
                if command not in everything and command not in self._committed:
                    everything.append(command)
        for pid in self._honest:
            queue = self._pending[pid]
            for command in everything:
                if command not in queue:
                    queue.append(command)

    def _proposals(self) -> Dict[ProcessId, Command]:
        """Each replica proposes its oldest pending command (or a no-op)."""
        proposals: Dict[ProcessId, Command] = {}
        for pid in self._honest:
            queue = self._pending[pid]
            proposals[pid] = queue[0] if queue else ("noop",)
        return proposals

    def has_pending(self) -> bool:
        return any(self._pending[pid] for pid in self._honest)

    def run_slot(self) -> Optional[LogEntry]:
        """Decide and apply one log slot; returns the committed entry."""
        self._gossip()
        proposals = self._proposals()
        # Slot execution runs on the unified kernel's trace-free metrics
        # mode: decisions and message counters come straight off the kernel,
        # no RoundRecord/trace objects are built per slot.
        instance = build_instance(
            self._spec.parameters,
            proposals,
            config=self._spec.config,
            byzantine=self._byzantine,
        )
        outcome = run_instance(
            instance,
            LockstepScheduler(),
            max_phases=self._max_phases,
            observe=OBSERVE_METRICS,
        )
        if not outcome.decisions:
            return None
        values = outcome.decided_values
        if len(values) != 1:
            raise AssertionError(
                f"consensus agreement violated across replicas: {values!r}"
            )
        (command,) = values
        slot = min(log.next_slot for log in self.logs.values())
        entry = LogEntry(
            slot=slot, command=command, phases=outcome.phases_to_last_decision
        )
        self._committed.add(command)
        for pid in self._honest:
            self.logs[pid].commit(entry)
            if command != ("noop",):
                self.machines[pid].apply(command)
            queue = self._pending[pid]
            if command in queue:
                queue.remove(command)
        self._stats["phases"] += outcome.phases_to_last_decision or 0
        self._stats["rounds"] += outcome.rounds_executed
        self._stats["messages"] += outcome.messages_sent
        return entry

    def run_until_drained(self, max_slots: int = 100) -> SmrReport:
        """Keep deciding slots until no replica has pending commands."""
        slots = 0
        while self.has_pending() and slots < max_slots:
            entry = self.run_slot()
            slots += 1
            if entry is None:
                break
        digests = {machine.digest() for machine in self.machines.values()}
        return SmrReport(
            slots_committed=slots,
            total_phases=self._stats["phases"],
            total_rounds=self._stats["rounds"],
            total_messages=self._stats["messages"],
            digests_agree=len(digests) == 1,
        )
