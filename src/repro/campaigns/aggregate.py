"""Grouped summaries over campaign result rows.

:func:`summarize` folds an *iterable* of JSONL rows — a list, or the live
stream out of :func:`~repro.campaigns.runner.iter_campaign` /
:func:`~repro.campaigns.results.iter_rows` — into per-cell
:class:`CellSummary` records, grouped by ``(algorithm, n, b, f, engine,
fault)`` by default.  The fold is single-pass: each row updates its cell's
:class:`SummaryFold` accumulator (counts, sums, and one latency float per
timed ok row for the exact percentiles) and is then released, so report
memory scales with the number of *cells* plus one float per latency sample
— never with whole-row lists.  :func:`format_report` renders the familiar
monospace table.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_float, format_rate, format_table

Row = Dict[str, object]

DEFAULT_GROUP_KEYS: Tuple[str, ...] = (
    "algorithm", "n", "b", "f", "engine", "fault",
)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolation percentile (``q`` in [0, 1]); None when empty."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = (len(ordered) - 1) * q
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    return ordered[lower] + (ordered[upper] - ordered[lower]) * (position - lower)


@dataclass(frozen=True)
class CellSummary:
    """Aggregates for one group of rows (one cell of the report)."""

    key: Tuple[object, ...]
    runs: int
    ok: int
    errors: int
    inadmissible: int
    inapplicable: int
    agreement_violations: int
    validity_violations: int
    unanimity_violations: int
    termination_failures: int
    mean_phases: Optional[float]
    mean_messages: Optional[float]
    mean_latency: Optional[float]
    p50_latency: Optional[float]
    p99_latency: Optional[float]
    #: Wall-clock duration of the cell's runs (from the volatile
    #: ``_elapsed_ms`` row field — present when the campaign ran with
    #: timings, or when an events sidecar was joined back in; ``None``
    #: otherwise).  Counts every status: an error row's wall time is real.
    mean_wall_ms: Optional[float] = None
    max_wall_ms: Optional[float] = None
    total_wall_ms: float = 0.0

    @property
    def safety_violations(self) -> int:
        """Violations of any safety property (agreement/validity/unanimity)."""
        return (
            self.agreement_violations
            + self.validity_violations
            + self.unanimity_violations
        )


class _CellAccumulator:
    """Single-pass fold state for one report cell."""

    __slots__ = (
        "key", "runs", "ok", "errors", "inadmissible", "inapplicable",
        "agreement_violations", "validity_violations",
        "unanimity_violations", "termination_failures",
        "phase_sum", "phase_count", "message_sum", "message_count",
        "latencies", "wall_sum", "wall_count", "wall_max",
    )

    def __init__(self, key: Tuple[object, ...]) -> None:
        self.key = key
        self.runs = 0
        self.ok = 0
        self.errors = 0
        self.inadmissible = 0
        self.inapplicable = 0
        self.agreement_violations = 0
        self.validity_violations = 0
        self.unanimity_violations = 0
        self.termination_failures = 0
        self.phase_sum = 0.0
        self.phase_count = 0
        self.message_sum = 0.0
        self.message_count = 0
        # Compact float buffer: exact percentiles need the samples, but one
        # double per timed ok row is all that survives of each row.
        self.latencies = array("d")
        self.wall_sum = 0.0
        self.wall_count = 0
        self.wall_max = 0.0

    def add(self, row: Row) -> None:
        self.runs += 1
        wall = row.get("_elapsed_ms")
        if wall is not None:
            wall = float(wall)
            self.wall_sum += wall
            self.wall_count += 1
            if wall > self.wall_max:
                self.wall_max = wall
        status = row.get("status")
        if status == "error":
            self.errors += 1
        elif status == "inadmissible":
            self.inadmissible += 1
        elif status == "inapplicable":
            self.inapplicable += 1
        elif status == "ok":
            self.ok += 1
            if row.get("agreement") is False:
                self.agreement_violations += 1
            if row.get("validity") is False:
                self.validity_violations += 1
            if row.get("unanimity") is False:
                self.unanimity_violations += 1
            if row.get("termination") is False:
                self.termination_failures += 1
            phases = row.get("phases")
            if phases is not None:
                self.phase_sum += float(phases)
                self.phase_count += 1
            messages = row.get("messages_sent")
            if messages is not None:
                self.message_sum += float(messages)
                self.message_count += 1
            latency = row.get("time_to_decision")
            if latency is not None:
                self.latencies.append(float(latency))

    def summary(self) -> CellSummary:
        latencies = self.latencies
        return CellSummary(
            key=self.key,
            runs=self.runs,
            ok=self.ok,
            errors=self.errors,
            inadmissible=self.inadmissible,
            inapplicable=self.inapplicable,
            agreement_violations=self.agreement_violations,
            validity_violations=self.validity_violations,
            unanimity_violations=self.unanimity_violations,
            termination_failures=self.termination_failures,
            mean_phases=(
                self.phase_sum / self.phase_count if self.phase_count else None
            ),
            mean_messages=(
                self.message_sum / self.message_count
                if self.message_count
                else None
            ),
            mean_latency=(
                math.fsum(latencies) / len(latencies) if latencies else None
            ),
            p50_latency=percentile(latencies, 0.50),
            p99_latency=percentile(latencies, 0.99),
            mean_wall_ms=(
                self.wall_sum / self.wall_count if self.wall_count else None
            ),
            max_wall_ms=self.wall_max if self.wall_count else None,
            total_wall_ms=self.wall_sum,
        )


class SummaryFold:
    """Incremental per-cell aggregation: feed rows, read summaries anytime.

    Feed it a live stream (the example folds each row as it is appended to
    the checkpoint) or a file scan (the CLI folds the finalized JSONL in
    one streaming pass — necessarily from the file, since resumed rows
    recorded by an earlier session never pass through the current
    process's run loop).
    """

    def __init__(
        self, group_keys: Sequence[str] = DEFAULT_GROUP_KEYS
    ) -> None:
        self._group_keys = tuple(group_keys)
        self._cells: Dict[Tuple[object, ...], _CellAccumulator] = {}

    def add(self, row: Row) -> None:
        key = tuple(row.get(field) for field in self._group_keys)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _CellAccumulator(key)
        cell.add(row)

    def summaries(self) -> List[CellSummary]:
        """Per-cell summaries, ordered by group key."""
        ordered = sorted(
            self._cells, key=lambda k: tuple(str(part) for part in k)
        )
        return [self._cells[key].summary() for key in ordered]


def summarize(
    rows: Iterable[Row],
    group_keys: Sequence[str] = DEFAULT_GROUP_KEYS,
) -> List[CellSummary]:
    """Fold rows (any iterable, consumed once) into per-cell summaries."""
    fold = SummaryFold(group_keys)
    for row in rows:
        fold.add(row)
    return fold.summaries()


def format_report(
    summaries: Sequence[CellSummary],
    group_keys: Sequence[str] = DEFAULT_GROUP_KEYS,
) -> str:
    """Render per-cell summaries as an aligned monospace table.

    ``inadm`` (model outside the algorithm's bound) and ``inappl``
    (scenario the configuration cannot host) are distinct columns: the
    first marks a resilience frontier, the second a grid axis that does
    not apply — folding them together hid frontier crossings.

    When any cell carries wall-duration data (a live ``campaign run``, or
    ``campaign report --events``), ``wall-ms`` (per-run mean) and
    ``wall-max`` columns appear; without durations the table keeps its
    historical shape.
    """
    timed = any(summary.mean_wall_ms is not None for summary in summaries)
    headers = [
        *group_keys,
        "runs", "ok", "err", "inadm", "inappl", "safety-viol", "term-fail",
        "phases", "msgs", "ttd-mean", "ttd-p50", "ttd-p99",
    ]
    if timed:
        headers += ["wall-ms", "wall-max"]
    table = []
    for summary in summaries:
        row = [
            *summary.key,
            summary.runs,
            summary.ok,
            summary.errors,
            summary.inadmissible,
            summary.inapplicable,
            format_rate(summary.safety_violations, summary.ok),
            format_rate(summary.termination_failures, summary.ok),
            format_float(summary.mean_phases),
            format_float(summary.mean_messages, 1),
            format_float(summary.mean_latency),
            format_float(summary.p50_latency),
            format_float(summary.p99_latency),
        ]
        if timed:
            row += [
                format_float(summary.mean_wall_ms),
                format_float(summary.max_wall_ms),
            ]
        table.append(row)
    return format_table(headers, table)


def format_slowest_cells(
    summaries: Sequence[CellSummary],
    group_keys: Sequence[str] = DEFAULT_GROUP_KEYS,
    top: int = 5,
) -> str:
    """Rank cells by total wall time — where a sweep actually spends it.

    Returns ``""`` when no cell carries duration data, so callers can
    append it unconditionally.
    """
    timed = [s for s in summaries if s.mean_wall_ms is not None]
    if not timed:
        return ""
    timed.sort(key=lambda s: -s.total_wall_ms)
    lines = [f"slowest cells (by total wall time, top {min(top, len(timed))}):"]
    for summary in timed[:top]:
        cell = " ".join(
            f"{key}={value}" for key, value in zip(group_keys, summary.key)
        )
        lines.append(
            f"  {summary.total_wall_ms:10.1f} ms total  "
            f"{summary.mean_wall_ms:8.2f} ms/run  "
            f"max {summary.max_wall_ms:8.2f} ms  {cell}"
        )
    return "\n".join(lines)
