"""Grouped summaries over campaign result rows.

:func:`summarize` folds JSONL rows into per-cell :class:`CellSummary`
records — grouped by ``(algorithm, n, b, f, engine, fault)`` by default —
with latency percentiles (timed runs), phase/message means (lockstep runs)
and property-violation counts.  :func:`format_report` renders the familiar
monospace table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_float, format_rate, format_table

Row = Dict[str, object]

DEFAULT_GROUP_KEYS: Tuple[str, ...] = (
    "algorithm", "n", "b", "f", "engine", "fault",
)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolation percentile (``q`` in [0, 1]); None when empty."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = (len(ordered) - 1) * q
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    return ordered[lower] + (ordered[upper] - ordered[lower]) * (position - lower)


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


@dataclass(frozen=True)
class CellSummary:
    """Aggregates for one group of rows (one cell of the report)."""

    key: Tuple[object, ...]
    runs: int
    ok: int
    errors: int
    inadmissible: int
    inapplicable: int
    agreement_violations: int
    validity_violations: int
    unanimity_violations: int
    termination_failures: int

    @property
    def safety_violations(self) -> int:
        """Violations of any safety property (agreement/validity/unanimity)."""
        return (
            self.agreement_violations
            + self.validity_violations
            + self.unanimity_violations
        )
    mean_phases: Optional[float]
    mean_messages: Optional[float]
    mean_latency: Optional[float]
    p50_latency: Optional[float]
    p99_latency: Optional[float]


def summarize(
    rows: Sequence[Row],
    group_keys: Sequence[str] = DEFAULT_GROUP_KEYS,
) -> List[CellSummary]:
    """Fold rows into per-cell summaries, ordered by group key."""
    groups: Dict[Tuple[object, ...], List[Row]] = {}
    for row in rows:
        key = tuple(row.get(field) for field in group_keys)
        groups.setdefault(key, []).append(row)

    summaries: List[CellSummary] = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        cell = groups[key]
        ok_rows = [row for row in cell if row.get("status") == "ok"]
        latencies = [
            float(row["time_to_decision"])
            for row in ok_rows
            if row.get("time_to_decision") is not None
        ]
        phases = [
            float(row["phases"])
            for row in ok_rows
            if row.get("phases") is not None
        ]
        messages = [
            float(row["messages_sent"])
            for row in ok_rows
            if row.get("messages_sent") is not None
        ]
        summaries.append(
            CellSummary(
                key=key,
                runs=len(cell),
                ok=len(ok_rows),
                errors=sum(1 for row in cell if row.get("status") == "error"),
                inadmissible=sum(
                    1 for row in cell if row.get("status") == "inadmissible"
                ),
                inapplicable=sum(
                    1 for row in cell if row.get("status") == "inapplicable"
                ),
                agreement_violations=sum(
                    1 for row in ok_rows if row.get("agreement") is False
                ),
                validity_violations=sum(
                    1 for row in ok_rows if row.get("validity") is False
                ),
                unanimity_violations=sum(
                    1 for row in ok_rows if row.get("unanimity") is False
                ),
                termination_failures=sum(
                    1 for row in ok_rows if row.get("termination") is False
                ),
                mean_phases=_mean(phases),
                mean_messages=_mean(messages),
                mean_latency=_mean(latencies),
                p50_latency=percentile(latencies, 0.50),
                p99_latency=percentile(latencies, 0.99),
            )
        )
    return summaries


def format_report(
    summaries: Sequence[CellSummary],
    group_keys: Sequence[str] = DEFAULT_GROUP_KEYS,
) -> str:
    """Render per-cell summaries as an aligned monospace table."""
    headers = [
        *group_keys,
        "runs", "ok", "err", "inadm", "safety-viol", "term-fail",
        "phases", "msgs", "ttd-mean", "ttd-p50", "ttd-p99",
    ]
    table = []
    for summary in summaries:
        table.append(
            [
                *summary.key,
                summary.runs,
                summary.ok,
                summary.errors,
                summary.inadmissible + summary.inapplicable,
                format_rate(summary.safety_violations, summary.ok),
                format_rate(summary.termination_failures, summary.ok),
                format_float(summary.mean_phases),
                format_float(summary.mean_messages, 1),
                format_float(summary.mean_latency),
                format_float(summary.p50_latency),
                format_float(summary.p99_latency),
            ]
        )
    return format_table(headers, table)
