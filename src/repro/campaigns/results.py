"""JSONL result store: one canonical JSON row per campaign run.

Rows are serialized with sorted keys and compact separators, so the file a
campaign writes is *byte-identical* for equal row lists — the property the
``--workers N`` determinism guarantee is checked against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

Row = Dict[str, object]


def row_to_json(row: Row) -> str:
    """Canonical single-line JSON for one row."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def rows_to_jsonl(rows: Iterable[Row]) -> str:
    """Canonical JSONL document (trailing newline, empty for no rows)."""
    lines = [row_to_json(row) for row in rows]
    return "\n".join(lines) + "\n" if lines else ""


def write_rows(path: object, rows: Iterable[Row]) -> Path:
    """Write rows as canonical JSONL, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rows_to_jsonl(rows), encoding="utf-8")
    return target


def read_rows(path: object) -> List[Row]:
    """Load a JSONL result file (blank lines are ignored)."""
    rows: List[Row] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSONL ({exc})"
                ) from exc
    return rows


class ResultStore:
    """An append-friendly JSONL store bound to one path.

    ``append`` streams rows out as a campaign progresses (crash-safe:
    completed rows survive an interrupted campaign); ``write`` replaces the
    file with a canonical snapshot.
    """

    def __init__(self, path: object) -> None:
        self.path = Path(path)

    def append(self, row: Row) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(row_to_json(row) + "\n")

    def write(self, rows: Iterable[Row]) -> Path:
        return write_rows(self.path, rows)

    def load(self) -> List[Row]:
        return read_rows(self.path)
