"""JSONL result store: one canonical JSON row per campaign run.

Rows are serialized with sorted keys and compact separators, so the file a
campaign writes is *byte-identical* for equal row lists — the property the
``--workers N`` determinism guarantee is checked against.

Two file shapes exist:

* the **checkpoint** (``<out>.partial``) — rows appended in *completion*
  order as the campaign streams, one ``flush()`` per row, so every
  completed run survives an interrupted campaign.  :func:`scan_checkpoint`
  recovers the recorded ``run_id``\\ s (tolerating one torn final line from
  a crash mid-write) and ``repro campaign run --resume`` skips them;
* the **final snapshot** (``<out>``) — the checkpoint sorted by ``run_id``
  and rewritten canonically (atomic rename), byte-identical to what a
  single uninterrupted run would have produced.

:class:`ResultStore` binds one path; :meth:`ResultStore.open_append`
returns the held-open :class:`ResultSink` the streaming runner writes
through (one handle for the whole campaign, not one ``open``/``close``
syscall pair per row).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from types import TracebackType
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

Row = Dict[str, object]


def row_to_json(row: Row) -> str:
    """Canonical single-line JSON for one row.

    Keys starting with ``"_"`` are *volatile* — per-row wall durations and
    worker pids recorded for the events sidecar and progress display — and
    are stripped here, so canonical result files stay byte-identical
    across worker counts, chunk sizes and instrumentation settings.
    """
    if any(key.startswith("_") for key in row):
        row = {key: value for key, value in row.items() if not key.startswith("_")}
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def rows_to_jsonl(rows: Iterable[Row]) -> str:
    """Canonical JSONL document (trailing newline, empty for no rows)."""
    lines = [row_to_json(row) for row in rows]
    return "\n".join(lines) + "\n" if lines else ""


def write_rows(path: object, rows: Iterable[Row]) -> Path:
    """Write rows as canonical JSONL, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rows_to_jsonl(rows), encoding="utf-8")
    return target


def iter_rows(path: object) -> Iterator[Row]:
    """Lazily yield rows from a JSONL file (blank lines are ignored).

    The streaming counterpart of :func:`read_rows`: reports and fold-based
    summaries consume this without ever holding the full row list.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSONL ({exc})"
                ) from exc


def read_rows(path: object) -> List[Row]:
    """Load a JSONL result file (blank lines are ignored)."""
    return list(iter_rows(path))


def checkpoint_path(out: object) -> Path:
    """The checkpoint (streaming append) file paired with a final path."""
    target = Path(out)
    return target.with_name(target.name + ".partial")


class _CheckpointScan:
    """One streaming pass over a checkpoint: ids, offset, endpoint rows."""

    __slots__ = ("run_ids", "intact", "first", "last", "campaigns")

    def __init__(self) -> None:
        self.run_ids: Set[int] = set()
        self.intact = 0
        self.first: Optional[Row] = None
        self.last: Optional[Row] = None
        self.campaigns: Set[object] = set()


def _scan(path: object) -> _CheckpointScan:
    scan = _CheckpointScan()
    # A parse failure is tolerated only on the *final* line; remember it
    # and raise retroactively if any further line proves it was mid-file.
    deferred: Optional[str] = None
    with open(path, "rb") as handle:
        for number, raw in enumerate(iter(handle.readline, b""), start=1):
            if deferred is not None:
                raise ValueError(deferred)
            if not raw.endswith(b"\n"):
                break  # torn tail: crash before the newline was written
            line = raw[:-1].strip()
            if not line:
                scan.intact += len(raw)
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                # Torn final line whose newline made it to disk.
                deferred = f"{path}: corrupt checkpoint line {number} ({exc})"
                continue
            run_id = row.get("run_id") if isinstance(row, dict) else None
            if not isinstance(run_id, int):
                raise ValueError(
                    f"{path}: checkpoint line {number} has no integer run_id"
                )
            scan.run_ids.add(run_id)
            scan.campaigns.add(row.get("campaign"))
            if scan.first is None:
                scan.first = row
            scan.last = row
            scan.intact += len(raw)
    return scan


def scan_checkpoint(path: object) -> Tuple[Set[int], int]:
    """Recover ``(recorded run_ids, intact byte length)`` from a checkpoint.

    A campaign killed mid-``write`` can leave one torn trailing line; it is
    excluded from the id set and from the returned byte offset, so resuming
    truncates it and re-executes that run.  Corruption anywhere *before*
    the final line raises ``ValueError`` — that file is not a checkpoint
    this code ever wrote.  The scan streams line by line: memory stays
    O(one line) however large the checkpoint grew.
    """
    scan = _scan(path)
    return scan.run_ids, scan.intact


def validate_resume(spec, checkpoint: object) -> Tuple[Set[int], int]:
    """Scan ``checkpoint`` and validate that ``spec`` may resume from it.

    ``spec`` is any object with ``name``, ``total_runs`` and ``iter_runs()``
    — a :class:`~repro.campaigns.spec.CampaignSpec` (duck-typed so this
    module needs no spec import).  Returns ``(recorded run_ids, intact
    byte length)``; truncate the file to that length before appending.

    Raises :class:`ValueError` when the checkpoint is corrupt, names a
    different campaign, records a ``run_id`` outside this grid, or fails
    the O(1)-memory seed spot-check: the first and last recorded rows must
    carry exactly the seeds this spec derives for their run_ids, which
    catches a ``--seed`` override or an edited axis order — resuming past
    any of these would finalize a mixed file no single-shot run matches.
    Both the CLI's ``--resume`` and API callers building on
    :func:`~repro.campaigns.runner.iter_campaign`'s ``skip_run_ids``
    should gate on this.
    """
    path = Path(checkpoint)
    scan = _scan(path)  # single parse pass: ids, offset, endpoint rows
    if not scan.run_ids:
        return scan.run_ids, scan.intact
    foreign = scan.campaigns - {spec.name}
    if foreign:
        raise ValueError(
            f"checkpoint {path} belongs to campaign "
            f"{next(iter(foreign))!r}, not {spec.name!r}"
        )
    if max(scan.run_ids) >= spec.total_runs:
        raise ValueError(
            f"checkpoint {path} records run {max(scan.run_ids)} but this "
            f"grid has only {spec.total_runs} runs (spec changed?)"
        )
    expected = {
        row["run_id"]: row.get("seed") for row in (scan.first, scan.last)
    }
    for run in spec.iter_runs():
        if run.run_id in expected:
            if expected.pop(run.run_id) != run.seed:
                raise ValueError(
                    f"checkpoint {path} was recorded with a different "
                    f"campaign seed or grid (run {run.run_id} seed "
                    "mismatch)"
                )
            if not expected:
                break
    return scan.run_ids, scan.intact


def finalize_checkpoint(checkpoint: object, out: object) -> Path:
    """Sort a complete checkpoint into the canonical final snapshot.

    Rows are ordered by ``run_id`` (duplicates — possible only if two
    resumes raced — keep their first occurrence), written to a temporary
    sibling and atomically renamed onto ``out``; the checkpoint is removed
    last, so a crash at any point leaves either a resumable checkpoint or
    the finished file, never neither.

    This is the one step that holds the full row set in memory (sorting
    needs it); the *runner's* peak memory stays bounded by the in-flight
    window throughout execution, and a finalize that dies on memory leaves
    the checkpoint intact to finalize elsewhere.
    """
    source = Path(checkpoint)
    target = Path(out)
    rows: Dict[int, Row] = {}
    for row in iter_rows(source):
        rows.setdefault(int(row["run_id"]), row)
    ordered = [rows[run_id] for run_id in sorted(rows)]
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(rows_to_jsonl(ordered), encoding="utf-8")
    os.replace(scratch, target)
    source.unlink()
    return target


class ResultSink:
    """A held-open, crash-safe append handle for streaming campaign rows.

    One file handle serves the whole campaign (O(1) ``open`` calls instead
    of O(rows)); each :meth:`append` writes one canonical line and flushes,
    so every appended row has reached the OS before the next run executes.
    Use as a context manager::

        with ResultStore(path).open_append() as sink:
            for row in iter_campaign(spec):
                sink.append(row)
    """

    def __init__(self, path: object) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, row: Row) -> None:
        self._handle.write(row_to_json(row) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class ResultStore:
    """An append-friendly JSONL store bound to one path.

    :meth:`open_append` is the streaming path: a held-open
    :class:`ResultSink` the campaign loop appends through as runs complete.
    :meth:`append` is the one-shot convenience (open, write one row,
    close); :meth:`write` replaces the file with a canonical snapshot;
    :meth:`recorded_run_ids` reads back which runs a checkpoint already
    holds.
    """

    def __init__(self, path: object) -> None:
        self.path = Path(path)

    def open_append(self) -> ResultSink:
        return ResultSink(self.path)

    def append(self, row: Row) -> None:
        with self.open_append() as sink:
            sink.append(row)

    def recorded_run_ids(self) -> Set[int]:
        """Run ids with an intact row in the file (empty if it is absent)."""
        if not self.path.exists():
            return set()
        run_ids, _ = scan_checkpoint(self.path)
        return run_ids

    def write(self, rows: Iterable[Row]) -> Path:
        return write_rows(self.path, rows)

    def load(self) -> List[Row]:
        return read_rows(self.path)
