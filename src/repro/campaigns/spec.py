"""Declarative scenario sweeps: a campaign is a cross-product grid.

A :class:`CampaignSpec` names the axes of an experiment — algorithms (builder
names or ``class-N`` FLV classes), ``(n, b, f)`` resilience points,
*scenarios* (declarative :class:`~repro.scenarios.spec.ScenarioSpec`
environments or registered preset names), engines, repetitions — and
expands them into fully-resolved :class:`RunSpec` objects, one per run:
lazily via :meth:`CampaignSpec.iter_runs` (what the streaming runner
consumes) or as a list via :meth:`CampaignSpec.expand`.  Each run's seed is
derived deterministically from the campaign seed
and the run's *coordinates* (not its position in the expansion), so results
are reproducible regardless of worker count or axis ordering.

The pre-scenario ``faults`` × ``networks`` axes are still accepted — both
as constructor arguments and in mapping/JSON/TOML form — and fold into the
``scenarios`` axis via :meth:`ScenarioSpec.from_legacy`; the converted
specs ``describe()`` to the exact legacy coordinate strings, so existing
campaigns keep their derived seeds (and fault-free rows stay
byte-identical).

Specs round-trip through plain mappings (:meth:`CampaignSpec.to_mapping` /
:meth:`CampaignSpec.from_mapping`) and load from ``.json`` or ``.toml``
files via :func:`load_spec`.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.types import FaultModel
from repro.eventsim.network import NetworkSpec  # noqa: F401 - re-export
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec

#: Execution engines a campaign may select per run.
ENGINES = ("lockstep", "timed")

#: FLV-class pseudo-algorithms accepted alongside builder names.
CLASS_ALGORITHMS = ("class-1", "class-2", "class-3")


def derive_seed(campaign_seed: int, key: str) -> int:
    """A 63-bit per-run seed from the campaign seed and a coordinate key.

    Uses BLAKE2b (not :func:`hash`, which is salted per interpreter) so the
    derivation is stable across processes, Python versions and worker
    counts.
    """
    digest = hashlib.blake2b(
        f"{campaign_seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class FaultSpec:
    """One fault script applied uniformly to a run.

    ``byzantine`` names a strategy given to the last ``b`` process ids (the
    convention the CLI and sweeps already use).  ``crashes`` crashes the
    first that-many processes in ``crash_round`` (``-1`` means "all f");
    ``clean`` selects crash-after-send vs crash-before-send semantics.
    """

    byzantine: Optional[str] = None
    crashes: int = 0
    crash_round: int = 1
    clean: bool = True

    def __post_init__(self) -> None:
        if self.crashes < -1:
            raise ValueError(f"crashes must be ≥ -1, got {self.crashes}")
        if self.crash_round < 1:
            raise ValueError(f"crash_round must be ≥ 1, got {self.crash_round}")

    def crash_count(self, model: FaultModel) -> int:
        """The number of processes this script crashes under ``model``."""
        return model.f if self.crashes == -1 else self.crashes

    def describe(self) -> str:
        parts = []
        if self.byzantine:
            parts.append(f"byz:{self.byzantine}")
        if self.crashes:
            count = "f" if self.crashes == -1 else str(self.crashes)
            mode = "" if self.clean else "!"
            parts.append(f"crash{mode}:{count}@{self.crash_round}")
        return "+".join(parts) or "fault-free"


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved cell of the campaign grid."""

    campaign: str
    run_id: int
    algorithm: str
    n: int
    b: int
    f: int
    engine: str
    scenario: ScenarioSpec
    rep: int
    seed: int
    max_phases: int

    def key(self) -> str:
        """Stable coordinate string (the seed-derivation input).

        The fault and network slots carry the scenario's two describe
        strings — identical to the legacy ``FaultSpec`` / ``NetworkSpec``
        output for converted specs, so seeds survive the axis migration.
        """
        return "|".join(
            (
                self.algorithm,
                f"n{self.n}b{self.b}f{self.f}",
                self.engine,
                self.scenario.describe_fault(),
                self.scenario.describe_network(),
                f"rep{self.rep}",
            )
        )


#: A scenarios-axis entry: a registered preset name or an inline spec.
ScenarioRef = Union[str, ScenarioSpec]


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: the cross product of every axis below.

    ``scenarios`` is the environment axis (preset names resolve through
    :data:`~repro.scenarios.registry.SCENARIO_REGISTRY` at construction).
    The legacy ``faults`` × ``networks`` axes are still accepted and fold
    into equivalent scenarios — give one or the other, not both.
    """

    name: str
    algorithms: Tuple[str, ...]
    models: Tuple[Tuple[int, int, int], ...]
    engines: Tuple[str, ...] = ("lockstep",)
    scenarios: Tuple[ScenarioRef, ...] = ()
    faults: Optional[Tuple[FaultSpec, ...]] = None
    networks: Optional[Tuple[NetworkSpec, ...]] = None
    repetitions: int = 1
    seed: int = 0
    max_phases: int = 15

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        for axis in ("algorithms", "models", "engines"):
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must be non-empty")
        legacy = self.faults is not None or self.networks is not None
        if legacy and self.scenarios:
            raise ValueError(
                "give either the scenarios axis or the legacy "
                "faults/networks axes, not both"
            )
        for axis in ("faults", "networks"):
            if getattr(self, axis) is not None and not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must be non-empty")
        if self.scenarios:
            # Resolve preset names once; expansion then works on pure specs.
            object.__setattr__(
                self,
                "scenarios",
                tuple(
                    get_scenario(ref) if isinstance(ref, str) else ref
                    for ref in self.scenarios
                ),
            )
        for engine in self.engines:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; known: {ENGINES}"
                )
        if self.repetitions < 1:
            raise ValueError("repetitions must be ≥ 1")
        if self.max_phases < 1:
            raise ValueError("max_phases must be ≥ 1")

    def scenario_axis(self) -> Tuple[ScenarioSpec, ...]:
        """The effective environment axis, legacy axes folded in."""
        if self.scenarios:
            return self.scenarios
        faults = self.faults if self.faults is not None else (FaultSpec(),)
        networks = (
            self.networks if self.networks is not None else (NetworkSpec(),)
        )
        return tuple(
            ScenarioSpec.from_legacy(fault, network)
            for fault, network in itertools.product(faults, networks)
        )

    @property
    def total_runs(self) -> int:
        return (
            len(self.algorithms)
            * len(self.models)
            * len(self.engines)
            * len(self.scenario_axis())
            * self.repetitions
        )

    def iter_runs(self) -> Iterator[RunSpec]:
        """Lazily yield the grid in deterministic axis order.

        Run ids follow the axis order and seeds derive from coordinates,
        so the stream is identical to ``expand()`` — but nothing beyond the
        run being yielded is ever materialized, which is what lets the
        streaming runner hold memory at O(in-flight window) on grids of
        millions of cells.
        """
        grid = itertools.product(
            self.algorithms,
            self.models,
            self.engines,
            self.scenario_axis(),
            range(self.repetitions),
        )
        for run_id, (algorithm, (n, b, f), engine, scenario, rep) in (
            enumerate(grid)
        ):
            run = RunSpec(
                campaign=self.name,
                run_id=run_id,
                algorithm=algorithm,
                n=n,
                b=b,
                f=f,
                engine=engine,
                scenario=scenario,
                rep=rep,
                seed=0,
                max_phases=self.max_phases,
            )
            yield replace(run, seed=derive_seed(self.seed, run.key()))

    def expand(self) -> List[RunSpec]:
        """The full grid as a list (see :meth:`iter_runs` for the lazy form)."""
        return list(self.iter_runs())

    def to_mapping(self) -> Dict[str, object]:
        """A JSON/TOML-friendly mapping (inverse of :meth:`from_mapping`)."""
        mapping: Dict[str, object] = {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "models": [list(model) for model in self.models],
            "engines": list(self.engines),
            "repetitions": self.repetitions,
            "seed": self.seed,
            "max_phases": self.max_phases,
        }
        if self.scenarios:
            mapping["scenarios"] = [
                spec.to_mapping() for spec in self.scenarios
            ]
        # Unset legacy axes are omitted (not materialized as defaults), so
        # from_mapping(to_mapping(spec)) == spec for every construction.
        if self.faults is not None:
            mapping["faults"] = [asdict(fault) for fault in self.faults]
        if self.networks is not None:
            mapping["networks"] = [asdict(network) for network in self.networks]
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "CampaignSpec":
        data = dict(mapping)
        unknown = set(data) - {
            "name", "algorithms", "models", "engines", "scenarios",
            "faults", "networks", "repetitions", "seed", "max_phases",
        }
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = {
            "name": data.get("name", "campaign"),
            "algorithms": tuple(data.get("algorithms", ())),
            "models": tuple(
                tuple(int(x) for x in model) for model in data.get("models", ())
            ),
        }
        if "engines" in data:
            kwargs["engines"] = tuple(data["engines"])
        if "scenarios" in data:
            kwargs["scenarios"] = tuple(
                ref if isinstance(ref, str) else ScenarioSpec.from_mapping(ref)
                for ref in data["scenarios"]
            )
        if "faults" in data:
            kwargs["faults"] = tuple(
                FaultSpec(**fault) for fault in data["faults"]
            )
        if "networks" in data:
            kwargs["networks"] = tuple(
                NetworkSpec(**network) for network in data["networks"]
            )
        for scalar in ("repetitions", "seed", "max_phases"):
            if scalar in data:
                kwargs[scalar] = int(data[scalar])
        for model in kwargs["models"]:
            if len(model) != 3:
                raise ValueError(f"models entries must be (n, b, f), got {model}")
        return cls(**kwargs)


def load_spec(path: object) -> CampaignSpec:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    spec_path = Path(path)
    text = spec_path.read_text(encoding="utf-8")
    if spec_path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10 fallback
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ImportError as exc:
                raise ValueError(
                    "TOML specs need Python ≥ 3.11 (tomllib) or tomli; "
                    "use a .json spec instead"
                ) from exc
        data = tomllib.loads(text)
    elif spec_path.suffix == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"unsupported spec extension {spec_path.suffix!r} (want .json/.toml)"
        )
    return CampaignSpec.from_mapping(data)


def resolve_algorithm(
    name: str, model: FaultModel
) -> Tuple[ConsensusParameters, GenericConsensusConfig]:
    """Parameters + per-process config for an algorithm axis value.

    ``class-N`` builds the canonical Table-1 class parameters; any other
    name goes through :data:`~repro.algorithms.registry.ALGORITHM_BUILDERS`
    (passing the model's ``b``/``f`` to builders that accept them).  Raises
    :class:`ValueError` (or :class:`ParameterError`) when the model violates
    the algorithm's resilience bound — the runner records those cells as
    ``inadmissible`` rather than executing them.
    """
    import repro.algorithms  # noqa: F401 - populates ALGORITHM_BUILDERS
    from repro.algorithms.registry import ALGORITHM_BUILDERS

    if name in CLASS_ALGORITHMS:
        algorithm_class = AlgorithmClass(int(name[-1]))
        return (
            build_class_parameters(algorithm_class, model),
            GenericConsensusConfig(),
        )
    builder = ALGORITHM_BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown algorithm {name!r}; known: "
            f"{sorted(ALGORITHM_BUILDERS) + list(CLASS_ALGORITHMS)}"
        )
    accepted = inspect.signature(builder).parameters
    kwargs: Dict[str, int] = {}
    if "b" in accepted:
        kwargs["b"] = model.b
    if "f" in accepted:
        kwargs["f"] = model.f
    spec = builder(model.n, **kwargs)
    return spec.parameters, spec.config
