"""Declarative scenario sweeps: a campaign is a cross-product grid.

A :class:`CampaignSpec` names the axes of an experiment — algorithms (builder
names or ``class-N`` FLV classes), ``(n, b, f)`` resilience points, fault
scripts, network conditions, engines, repetitions — and :meth:`expand`\\ s
them into fully-resolved :class:`RunSpec` objects, one per run.  Each run's
seed is derived deterministically from the campaign seed and the run's
*coordinates* (not its position in the expansion), so results are
reproducible regardless of worker count or axis ordering.

Specs round-trip through plain mappings (:meth:`CampaignSpec.to_mapping` /
:meth:`CampaignSpec.from_mapping`) and load from ``.json`` or ``.toml``
files via :func:`load_spec`.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.types import FaultModel
from repro.eventsim.network import (
    FixedLatency,
    PartialSynchronyNetwork,
    UniformLatency,
)

#: Execution engines a campaign may select per run.
ENGINES = ("lockstep", "timed")

#: FLV-class pseudo-algorithms accepted alongside builder names.
CLASS_ALGORITHMS = ("class-1", "class-2", "class-3")


def derive_seed(campaign_seed: int, key: str) -> int:
    """A 63-bit per-run seed from the campaign seed and a coordinate key.

    Uses BLAKE2b (not :func:`hash`, which is salted per interpreter) so the
    derivation is stable across processes, Python versions and worker
    counts.
    """
    digest = hashlib.blake2b(
        f"{campaign_seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class NetworkSpec:
    """Network conditions for timed runs (ignored by the lockstep engine).

    ``kind`` selects the latency model: ``"uniform"`` samples in
    ``[low, high]``; ``"fixed"`` always takes ``low``.  The remaining fields
    mirror :class:`~repro.eventsim.network.PartialSynchronyNetwork`.
    """

    kind: str = "uniform"
    low: float = 0.5
    high: float = 2.0
    gst: float = 0.0
    delta: float = 2.0
    pre_gst_delay_prob: float = 0.5
    chaos_factor: float = 50.0
    round_duration: float = 2.5

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "fixed"):
            raise ValueError(f"unknown latency kind {self.kind!r}")
        if self.round_duration <= 0:
            raise ValueError("round_duration must be positive")

    def build(self, seed: int) -> PartialSynchronyNetwork:
        """Instantiate the timed network with a per-run RNG stream."""
        if self.kind == "fixed":
            latency = FixedLatency(self.low)
        else:
            latency = UniformLatency(self.low, self.high)
        return PartialSynchronyNetwork(
            latency,
            gst=self.gst,
            delta=self.delta,
            pre_gst_delay_prob=self.pre_gst_delay_prob,
            chaos_factor=self.chaos_factor,
            seed=seed,
        )

    def describe(self) -> str:
        # Every field appears: two distinct specs must never alias, or they
        # would share derived seeds and merge into one aggregation cell.
        if self.kind == "fixed":
            base = f"fixed[{self.low:g}]"
        else:
            base = f"uniform[{self.low:g},{self.high:g}]"
        return (
            f"{base} gst={self.gst:g} δ={self.delta:g} "
            f"Δ={self.round_duration:g} p={self.pre_gst_delay_prob:g} "
            f"chaos={self.chaos_factor:g}"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One fault script applied uniformly to a run.

    ``byzantine`` names a strategy given to the last ``b`` process ids (the
    convention the CLI and sweeps already use).  ``crashes`` crashes the
    first that-many processes in ``crash_round`` (``-1`` means "all f");
    ``clean`` selects crash-after-send vs crash-before-send semantics.
    """

    byzantine: Optional[str] = None
    crashes: int = 0
    crash_round: int = 1
    clean: bool = True

    def __post_init__(self) -> None:
        if self.crashes < -1:
            raise ValueError(f"crashes must be ≥ -1, got {self.crashes}")
        if self.crash_round < 1:
            raise ValueError(f"crash_round must be ≥ 1, got {self.crash_round}")

    def crash_count(self, model: FaultModel) -> int:
        """The number of processes this script crashes under ``model``."""
        return model.f if self.crashes == -1 else self.crashes

    def describe(self) -> str:
        parts = []
        if self.byzantine:
            parts.append(f"byz:{self.byzantine}")
        if self.crashes:
            count = "f" if self.crashes == -1 else str(self.crashes)
            mode = "" if self.clean else "!"
            parts.append(f"crash{mode}:{count}@{self.crash_round}")
        return "+".join(parts) or "fault-free"


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved cell of the campaign grid."""

    campaign: str
    run_id: int
    algorithm: str
    n: int
    b: int
    f: int
    engine: str
    fault: FaultSpec
    network: NetworkSpec
    rep: int
    seed: int
    max_phases: int

    def key(self) -> str:
        """Stable coordinate string (the seed-derivation input)."""
        return "|".join(
            (
                self.algorithm,
                f"n{self.n}b{self.b}f{self.f}",
                self.engine,
                self.fault.describe(),
                self.network.describe(),
                f"rep{self.rep}",
            )
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: the cross product of every axis below."""

    name: str
    algorithms: Tuple[str, ...]
    models: Tuple[Tuple[int, int, int], ...]
    engines: Tuple[str, ...] = ("lockstep",)
    faults: Tuple[FaultSpec, ...] = (FaultSpec(),)
    networks: Tuple[NetworkSpec, ...] = (NetworkSpec(),)
    repetitions: int = 1
    seed: int = 0
    max_phases: int = 15

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        for axis in ("algorithms", "models", "engines", "faults", "networks"):
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must be non-empty")
        for engine in self.engines:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; known: {ENGINES}"
                )
        if self.repetitions < 1:
            raise ValueError("repetitions must be ≥ 1")
        if self.max_phases < 1:
            raise ValueError("max_phases must be ≥ 1")

    @property
    def total_runs(self) -> int:
        return (
            len(self.algorithms)
            * len(self.models)
            * len(self.engines)
            * len(self.faults)
            * len(self.networks)
            * self.repetitions
        )

    def expand(self) -> List[RunSpec]:
        """The full grid, in deterministic axis order with derived seeds."""
        runs: List[RunSpec] = []
        grid = itertools.product(
            self.algorithms,
            self.models,
            self.engines,
            self.faults,
            self.networks,
            range(self.repetitions),
        )
        for run_id, (algorithm, (n, b, f), engine, fault, network, rep) in (
            enumerate(grid)
        ):
            run = RunSpec(
                campaign=self.name,
                run_id=run_id,
                algorithm=algorithm,
                n=n,
                b=b,
                f=f,
                engine=engine,
                fault=fault,
                network=network,
                rep=rep,
                seed=0,
                max_phases=self.max_phases,
            )
            runs.append(replace(run, seed=derive_seed(self.seed, run.key())))
        return runs

    def to_mapping(self) -> Dict[str, object]:
        """A JSON/TOML-friendly mapping (inverse of :meth:`from_mapping`)."""
        return {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "models": [list(model) for model in self.models],
            "engines": list(self.engines),
            "faults": [asdict(fault) for fault in self.faults],
            "networks": [asdict(network) for network in self.networks],
            "repetitions": self.repetitions,
            "seed": self.seed,
            "max_phases": self.max_phases,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "CampaignSpec":
        data = dict(mapping)
        unknown = set(data) - {
            "name", "algorithms", "models", "engines", "faults",
            "networks", "repetitions", "seed", "max_phases",
        }
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = {
            "name": data.get("name", "campaign"),
            "algorithms": tuple(data.get("algorithms", ())),
            "models": tuple(
                tuple(int(x) for x in model) for model in data.get("models", ())
            ),
        }
        if "engines" in data:
            kwargs["engines"] = tuple(data["engines"])
        if "faults" in data:
            kwargs["faults"] = tuple(
                FaultSpec(**fault) for fault in data["faults"]
            )
        if "networks" in data:
            kwargs["networks"] = tuple(
                NetworkSpec(**network) for network in data["networks"]
            )
        for scalar in ("repetitions", "seed", "max_phases"):
            if scalar in data:
                kwargs[scalar] = int(data[scalar])
        for model in kwargs["models"]:
            if len(model) != 3:
                raise ValueError(f"models entries must be (n, b, f), got {model}")
        return cls(**kwargs)


def load_spec(path: object) -> CampaignSpec:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    spec_path = Path(path)
    text = spec_path.read_text(encoding="utf-8")
    if spec_path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10 fallback
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ImportError as exc:
                raise ValueError(
                    "TOML specs need Python ≥ 3.11 (tomllib) or tomli; "
                    "use a .json spec instead"
                ) from exc
        data = tomllib.loads(text)
    elif spec_path.suffix == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"unsupported spec extension {spec_path.suffix!r} (want .json/.toml)"
        )
    return CampaignSpec.from_mapping(data)


def resolve_algorithm(
    name: str, model: FaultModel
) -> Tuple[ConsensusParameters, GenericConsensusConfig]:
    """Parameters + per-process config for an algorithm axis value.

    ``class-N`` builds the canonical Table-1 class parameters; any other
    name goes through :data:`~repro.algorithms.registry.ALGORITHM_BUILDERS`
    (passing the model's ``b``/``f`` to builders that accept them).  Raises
    :class:`ValueError` (or :class:`ParameterError`) when the model violates
    the algorithm's resilience bound — the runner records those cells as
    ``inadmissible`` rather than executing them.
    """
    import repro.algorithms  # noqa: F401 - populates ALGORITHM_BUILDERS
    from repro.algorithms.registry import ALGORITHM_BUILDERS

    if name in CLASS_ALGORITHMS:
        algorithm_class = AlgorithmClass(int(name[-1]))
        return (
            build_class_parameters(algorithm_class, model),
            GenericConsensusConfig(),
        )
    builder = ALGORITHM_BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown algorithm {name!r}; known: "
            f"{sorted(ALGORITHM_BUILDERS) + list(CLASS_ALGORITHMS)}"
        )
    accepted = inspect.signature(builder).parameters
    kwargs: Dict[str, int] = {}
    if "b" in accepted:
        kwargs["b"] = model.b
    if "f" in accepted:
        kwargs["f"] = model.f
    spec = builder(model.n, **kwargs)
    return spec.parameters, spec.config
