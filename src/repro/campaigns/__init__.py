"""Declarative scenario sweeps: spec → parallel runner → result store.

The campaign engine turns one declarative :class:`CampaignSpec` — a
cross-product grid over algorithms, ``(n, b, f)`` resilience points,
*scenarios* (declarative environments from :mod:`repro.scenarios`: Byzantine
placement, crash scripts, communication schedules, timed-network
conditions), engines and repetitions — into per-run :class:`RunSpec`\\ s
with deterministically derived seeds, executes them (inline or on a process
pool) with per-run fault isolation, persists one JSONL row per run, and
aggregates per-cell summaries::

    from repro.campaigns import CampaignSpec, run_campaign
    from repro.campaigns import summarize, format_report

    spec = CampaignSpec(
        name="pbft-frontier",
        algorithms=("pbft",),
        models=((4, 1, 0), (5, 1, 0)),
        scenarios=("fault-free", "worst_case", "partition_heal"),
        repetitions=3,
    )
    rows = run_campaign(spec, workers=4)
    print(format_report(summarize(rows)))

The legacy ``faults`` × ``networks`` axes are still accepted and fold into
equivalent scenarios with unchanged coordinate strings, so existing specs
keep their derived seeds.  The same campaign seed yields byte-identical
results at any worker count.

Execution is **streaming and resumable**: :func:`iter_campaign` yields rows
as runs complete (runs dispatched in chunks of ``chunk`` per pool future,
auto-sized from the grid, under a bounded in-flight window accounted in
runs — memory O(window), not O(grid)), each row lands in a crash-safe
``<out>.partial`` checkpoint as its chunk completes (a crash re-executes at
most the in-flight window of runs on ``--resume``; pass ``chunk=1`` for
per-run checkpoint granularity), and ``repro campaign run --resume`` skips
the recorded ``run_id``\\ s and completes the file; the finalized snapshot
is byte-identical to a single-shot run at any ``(workers, chunk)``.
"""

from repro.campaigns.aggregate import (
    DEFAULT_GROUP_KEYS,
    CellSummary,
    SummaryFold,
    format_report,
    format_slowest_cells,
    percentile,
    summarize,
)
from repro.campaigns.presets import BUILTIN_CAMPAIGNS
from repro.campaigns.results import (
    ResultSink,
    ResultStore,
    checkpoint_path,
    finalize_checkpoint,
    iter_rows,
    read_rows,
    row_to_json,
    rows_to_jsonl,
    scan_checkpoint,
    validate_resume,
    write_rows,
)
from repro.campaigns.runner import (
    BACKEND_ENV,
    BACKENDS,
    BATCH_FLOOR,
    execute_chunk,
    execute_run,
    iter_campaign,
    resolve_backend,
    run_campaign,
)
from repro.campaigns.spec import (
    CampaignSpec,
    FaultSpec,
    NetworkSpec,
    RunSpec,
    derive_seed,
    load_spec,
    resolve_algorithm,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "BATCH_FLOOR",
    "BUILTIN_CAMPAIGNS",
    "CampaignSpec",
    "CellSummary",
    "DEFAULT_GROUP_KEYS",
    "FaultSpec",
    "NetworkSpec",
    "ResultSink",
    "ResultStore",
    "RunSpec",
    "ScenarioSpec",
    "SummaryFold",
    "checkpoint_path",
    "derive_seed",
    "execute_chunk",
    "execute_run",
    "finalize_checkpoint",
    "format_report",
    "format_slowest_cells",
    "iter_campaign",
    "iter_rows",
    "load_spec",
    "percentile",
    "read_rows",
    "resolve_algorithm",
    "resolve_backend",
    "row_to_json",
    "rows_to_jsonl",
    "run_campaign",
    "scan_checkpoint",
    "summarize",
    "validate_resume",
    "write_rows",
]
