"""Parallel campaign runner: expand, dispatch, isolate, collect.

:func:`execute_run` turns one :class:`~repro.campaigns.spec.RunSpec` into a
plain result-row dict and **never raises**: a crashing scenario produces a
``status="error"`` row (with the exception) instead of killing the campaign,
a model outside the algorithm's resilience bound an ``inadmissible`` row,
and a fault script the configuration cannot host an ``inapplicable`` row.

:func:`run_campaign` executes the grid either inline (``workers=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor` with chunked dispatch.
Because every run's seed is derived from its coordinates, the collected rows
are identical for every worker count (rows are ordered by ``run_id``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional

from repro.analysis.invariants import evaluate_properties
from repro.analysis.metrics import RunMetrics
from repro.campaigns.spec import CampaignSpec, RunSpec, resolve_algorithm
from repro.core.run import run_consensus
from repro.core.types import FaultModel
from repro.eventsim.runtime import run_timed_consensus
from repro.faults.crash import CrashEvent, CrashSchedule

#: Result-row type: one flat JSON-serializable mapping per run.
Row = Dict[str, object]

#: Called after each completed run with ``(completed, total)``.
ProgressFn = Callable[[int, int], None]

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_INADMISSIBLE = "inadmissible"
STATUS_INAPPLICABLE = "inapplicable"


def _base_row(run: RunSpec) -> Row:
    return {
        "campaign": run.campaign,
        "run_id": run.run_id,
        "algorithm": run.algorithm,
        "n": run.n,
        "b": run.b,
        "f": run.f,
        "engine": run.engine,
        "fault": run.fault.describe(),
        "network": run.network.describe(),
        "rep": run.rep,
        "seed": run.seed,
        "status": STATUS_OK,
        "agreement": None,
        "validity": None,
        "unanimity": None,
        "termination": None,
        "decided": None,
        "rounds": None,
        "phases": None,
        "time_to_decision": None,
        "messages_sent": None,
        "messages_delivered": None,
        "messages_dropped": None,
        "error": None,
    }


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _inapplicable(run: RunSpec, model: FaultModel) -> Optional[str]:
    """Why this fault script cannot run under this configuration, if so."""
    fault = run.fault
    if fault.byzantine and model.b == 0:
        return "byzantine fault script but model has b = 0"
    crashes = fault.crash_count(model)
    if crashes > model.f:
        return f"fault script crashes {crashes} > f = {model.f} processes"
    if crashes and run.engine == "timed":
        return "timed engine has no crash schedule"
    return None


def execute_run(run: RunSpec) -> Row:
    """Execute one grid cell, returning its result row (never raises)."""
    row = _base_row(run)
    try:
        model = FaultModel(run.n, run.b, run.f)
    except ValueError as exc:
        row.update(status=STATUS_INADMISSIBLE, error=str(exc))
        return row
    try:
        parameters, config = resolve_algorithm(run.algorithm, model)
    except ValueError as exc:
        # ParameterError (a ValueError) ⇒ the bound rejects this model.
        row.update(status=STATUS_INADMISSIBLE, error=str(exc))
        return row
    except Exception as exc:
        row.update(status=STATUS_ERROR, error=_describe_error(exc))
        return row

    # Builders resolve their own envelope (benign ones ignore ``b``,
    # Byzantine ones ignore ``f``): a grid point asking for more faults
    # than the algorithm hosts is outside its Table-1 row.
    hosted = parameters.model
    if hosted.b < model.b or hosted.f < model.f:
        row.update(
            status=STATUS_INADMISSIBLE,
            error=(
                f"{run.algorithm} hosts (b={hosted.b}, f={hosted.f}), "
                f"grid point wants (b={model.b}, f={model.f})"
            ),
        )
        return row

    reason = _inapplicable(run, model)
    if reason is not None:
        row.update(status=STATUS_INAPPLICABLE, error=reason)
        return row

    fault = run.fault
    byzantine: Dict[int, str] = {}
    if fault.byzantine:
        byzantine = {model.n - 1 - i: fault.byzantine for i in range(model.b)}
    initial_values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }

    try:
        if run.engine == "lockstep":
            crashes = fault.crash_count(model)
            schedule = None
            if crashes:
                deliver = None if fault.clean else frozenset()
                schedule = CrashSchedule(
                    model,
                    [
                        CrashEvent(pid, fault.crash_round, deliver)
                        for pid in range(crashes)
                    ],
                )
            outcome = run_consensus(
                parameters,
                initial_values,
                config=config,
                byzantine=byzantine,
                crash_schedule=schedule,
                max_phases=run.max_phases,
            )
            metrics = RunMetrics.from_outcome(outcome)
            row.update(
                decided=len(outcome.decisions),
                rounds=metrics.rounds_executed,
                phases=metrics.phases_to_last_decision,
                messages_sent=metrics.messages_sent,
                messages_delivered=metrics.messages_delivered,
                messages_dropped=0,
                **outcome.invariant_report(),
            )
        else:
            # build(run.seed) already gives the network its per-run RNG
            # stream, so no explicit seed= reseed is needed here.
            network = run.network.build(run.seed)
            timed = run_timed_consensus(
                parameters,
                initial_values,
                network,
                round_duration=run.network.round_duration,
                config=config,
                byzantine=byzantine,
                max_phases=run.max_phases,
            )
            correct = frozenset(
                pid for pid in model.processes if pid not in byzantine
            )
            row.update(
                decided=len(timed.decision_times),
                rounds=timed.rounds_executed,
                time_to_decision=timed.last_decision_time,
                messages_sent=timed.messages_sent,
                messages_delivered=timed.messages_delivered,
                messages_dropped=timed.messages_dropped,
                **evaluate_properties(
                    decided_values=timed.decided_values,
                    initial_values=initial_values,
                    byzantine=frozenset(byzantine),
                    correct=correct,
                ),
            )
    except Exception as exc:
        row.update(status=STATUS_ERROR, error=_describe_error(exc))
    return row


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
) -> List[Row]:
    """Execute every run of ``spec`` and return rows ordered by ``run_id``.

    With ``workers > 1`` runs are dispatched in chunks to a process pool;
    per-run seeds make the result independent of the worker count.
    """
    if workers < 1:
        raise ValueError(f"workers must be ≥ 1, got {workers}")
    runs = spec.expand()
    total = len(runs)
    rows: List[Row] = []
    if workers == 1 or total <= 1:
        for completed, run in enumerate(runs, start=1):
            rows.append(execute_run(run))
            if progress is not None:
                progress(completed, total)
    else:
        chunksize = max(1, total // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            iterator = pool.map(execute_run, runs, chunksize=chunksize)
            for completed, row in enumerate(iterator, start=1):
                rows.append(row)
                if progress is not None:
                    progress(completed, total)
    rows.sort(key=lambda row: row["run_id"])
    return rows
