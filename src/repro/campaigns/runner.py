"""Parallel campaign runner: expand, dispatch, isolate, collect.

:func:`execute_run` turns one :class:`~repro.campaigns.spec.RunSpec` into a
plain result-row dict and **never raises**: a crashing scenario produces a
``status="error"`` row (with the exception) instead of killing the campaign,
a model outside the algorithm's resilience bound an ``inadmissible`` row,
and a scenario the configuration cannot host an ``inapplicable`` row.

The run's environment comes entirely from
:func:`~repro.scenarios.compile.compile_scenario`: the Byzantine placement,
the crash schedule and the scheduler (either engine) are compiled from the
run's :class:`~repro.scenarios.spec.ScenarioSpec` with the per-run derived
seed — the runner no longer hand-assembles any of them, and crash scripts
execute on the timed engine too (only ``crashes > f`` stays inapplicable).

:func:`iter_campaign` is the streaming primitive: it lazily draws runs from
:meth:`CampaignSpec.iter_runs`, dispatches them inline (``workers=1``) or
onto a :class:`~concurrent.futures.ProcessPoolExecutor` in **chunks of
``chunk`` runs per future** (auto-sized from the grid when unset) under a
**bounded in-flight window accounted in runs** (completed rows are yielded
chunk by chunk as futures finish — blocking is bounded by one chunk, and
peak row memory is O(window), not O(grid)), and skips any ``run_id`` in
``skip_run_ids`` —
which is how ``--resume`` completes an interrupted campaign.  Rows arrive
in completion order; because every run's seed is derived from its
coordinates, sorting the stream by ``run_id`` reproduces the
byte-identical canonical file at any worker count and any chunk size.
:func:`run_campaign` is the collect-and-sort convenience wrapper over it.

Runs go straight through the unified execution kernel with
``observe="metrics"``: no :class:`~repro.analysis.trace.RoundRecord`, trace
or per-round snapshot dict is ever constructed, which is what makes large
sweeps cheap.  The property columns come from the kernel's
:meth:`~repro.engine.outcome.Outcome.invariant_report`, identical under
both schedulers.

Metrics-mode rows may additionally route through the **batch kernel**
(:mod:`repro.engine.batch`): chunks are grouped by campaign cell and each
group of at least :data:`BATCH_FLOOR` runs executes as a unit (``backend=
"auto"``; ``"batch"`` forces it at any size, ``"scalar"`` disables it, the
:data:`BACKEND_ENV` env var sets the default).  The batch kernel is a pure
throughput optimization — its rows are byte-identical to the oracle's.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter, sleep
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.campaigns.spec import CampaignSpec, RunSpec, resolve_algorithm
from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.types import FaultModel
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_METRICS, run_instance
from repro.scenarios.compile import ScenarioInapplicable, compile_scenario
from repro.scenarios.spec import split_values
from repro.utils.memo import cached_outcome

#: Result-row type: one flat JSON-serializable mapping per run.
Row = Dict[str, object]

#: Called after each completed run with ``(completed, total)``.
ProgressFn = Callable[[int, int], None]

#: Called with ``(kind, fields)`` for runner lifecycle events
#: (``chunk_dispatched``, and on worker-process death ``worker_crashed`` /
#: ``chunk_retried`` / ``pool_degraded``); the CLI forwards these to its
#: :class:`~repro.observability.events.EventLog` sidecar.
EventFn = Callable[[str, Dict[str, object]], None]

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_INADMISSIBLE = "inadmissible"
STATUS_INAPPLICABLE = "inapplicable"


def _base_row(run: RunSpec) -> Row:
    return {
        "campaign": run.campaign,
        "run_id": run.run_id,
        "algorithm": run.algorithm,
        "n": run.n,
        "b": run.b,
        "f": run.f,
        "engine": run.engine,
        "fault": run.scenario.describe_fault(),
        "network": run.scenario.describe_network(),
        "rep": run.rep,
        "seed": run.seed,
        "status": STATUS_OK,
        "agreement": None,
        "validity": None,
        "unanimity": None,
        "termination": None,
        "decided": None,
        "rounds": None,
        "phases": None,
        "time_to_decision": None,
        "messages_sent": None,
        "messages_delivered": None,
        "messages_dropped": None,
        "error": None,
    }


#: Bounds on the traceback tail embedded in error rows: enough context to
#: diagnose a failure from the JSONL alone, small enough that a
#: pathological cell cannot bloat the result file.
TRACEBACK_TAIL_LINES = 12
TRACEBACK_TAIL_CHARS = 2000


def _describe_error(exc: BaseException) -> str:
    """``TypeName: message`` plus a bounded traceback tail.

    The traceback starts at :func:`execute_run`'s own ``try`` frame — the
    dispatch stack above it (inline generator vs. pooled ``execute_chunk``)
    never enters ``exc.__traceback__`` — so the text is identical at any
    worker count and chunk size, keeping error rows byte-stable.
    """
    head = f"{type(exc).__name__}: {exc}"
    tb = exc.__traceback__
    if tb is None:
        return head
    lines = "".join(
        traceback.format_exception(type(exc), exc, tb)
    ).rstrip("\n").split("\n")
    if len(lines) > TRACEBACK_TAIL_LINES:
        lines = ["  ..."] + lines[-TRACEBACK_TAIL_LINES:]
    tail = "\n".join(lines)
    if len(tail) > TRACEBACK_TAIL_CHARS:
        tail = "..." + tail[-TRACEBACK_TAIL_CHARS:]
    return f"{head}\n{tail}"


#: Worker-side memo for :func:`resolve_algorithm`: a 10k-run grid usually
#: has a few dozen distinct ``(algorithm, model)`` cells, and parameters /
#: config are frozen dataclasses safe to share across the runs of one
#: worker process.  Rejections (the resolution exception) are memoized too,
#: so inadmissible cells short-circuit on every repetition.
_RESOLVE_MEMO: Dict[Tuple[str, FaultModel], Tuple[bool, object]] = {}


def _resolve_algorithm_memo(
    name: str, model: FaultModel
) -> Tuple[ConsensusParameters, GenericConsensusConfig]:
    # Only the deterministic rejections are cached (unknown name, bound
    # violation); a transient failure (import hiccup, MemoryError) must
    # not become the cell's sticky verdict for the worker's lifetime.
    return cached_outcome(
        _RESOLVE_MEMO,
        (name, model),
        lambda: resolve_algorithm(name, model),
        cache_exceptions=(ValueError, KeyError),
    )


def execute_run(run: RunSpec, *, timings: bool = False) -> Row:
    """Execute one grid cell, returning its result row (never raises).

    With ``timings=True`` the row additionally carries volatile
    ``_elapsed_ms`` / ``_pid`` fields (wall duration and worker process
    id).  Volatile fields — every key starting with ``"_"`` — are stripped
    by the canonical JSONL serialization, so recording them never perturbs
    result-file bytes; they feed the events sidecar, the live progress
    line and the report's timing columns instead.
    """
    if timings:
        started = perf_counter()
        row = execute_run(run)
        row["_elapsed_ms"] = round((perf_counter() - started) * 1000, 3)
        row["_pid"] = os.getpid()
        return row
    row = _base_row(run)
    try:
        model = FaultModel(run.n, run.b, run.f)
    except ValueError as exc:
        row.update(status=STATUS_INADMISSIBLE, error=str(exc))
        return row
    try:
        parameters, config = _resolve_algorithm_memo(run.algorithm, model)
    except ValueError as exc:
        # ParameterError (a ValueError) ⇒ the bound rejects this model.
        row.update(status=STATUS_INADMISSIBLE, error=str(exc))
        return row
    except Exception as exc:
        # Head only, no traceback tail: the memo replays a cached rejection
        # with its traceback reset, so tail text would depend on which
        # worker happened to resolve the cell first.
        row.update(status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}")
        return row

    # Builders resolve their own envelope (benign ones ignore ``b``,
    # Byzantine ones ignore ``f``): a grid point asking for more faults
    # than the algorithm hosts is outside its Table-1 row.
    hosted = parameters.model
    if hosted.b < model.b or hosted.f < model.f:
        row.update(
            status=STATUS_INADMISSIBLE,
            error=(
                f"{run.algorithm} hosts (b={hosted.b}, f={hosted.f}), "
                f"grid point wants (b={model.b}, f={model.f})"
            ),
        )
        return row

    try:
        compiled = compile_scenario(run.scenario, model, run.engine, run.seed)
    except ScenarioInapplicable as exc:
        row.update(status=STATUS_INAPPLICABLE, error=str(exc))
        return row
    except Exception as exc:
        row.update(status=STATUS_ERROR, error=_describe_error(exc))
        return row

    initial_values = split_values(model, compiled.byzantine)
    # The campaign horizon is the floor; a scenario needing more rounds
    # (a GST at round 10, a late partition heal) raises it.
    max_phases = max(run.max_phases, compiled.max_phases(run.max_phases))

    try:
        instance = build_instance(
            parameters,
            initial_values,
            config=config,
            byzantine=compiled.byzantine,
        )
        outcome = run_instance(
            instance,
            compiled.scheduler,
            max_phases=max_phases,
            observe=OBSERVE_METRICS,
            crash_schedule=compiled.crash_schedule,
        )
        row.update(
            decided=len(outcome.decisions),
            rounds=outcome.rounds_executed,
            # Phase counts are a lockstep metric, time-to-decision a timed
            # one; the other stays None so row schemas match the result
            # store's historical shape.
            phases=(
                outcome.phases_to_last_decision
                if run.engine == "lockstep"
                else None
            ),
            time_to_decision=outcome.last_decision_time,
            messages_sent=outcome.messages_sent,
            messages_delivered=outcome.messages_delivered,
            messages_dropped=outcome.messages_dropped,
            **outcome.invariant_report(),
        )
    except Exception as exc:
        row.update(status=STATUS_ERROR, error=_describe_error(exc))
    return row


#: Default in-flight chunks per worker before dispatch pauses (the window
#: is accounted in runs: ``workers × WINDOW_PER_WORKER × chunk``).
WINDOW_PER_WORKER = 4

#: Upper bound on the auto-sized chunk: one future never carries more rows
#: than this, keeping per-future result latency and memory bounded.
MAX_CHUNK = 32

#: Execution backends: ``auto`` batches cells at or above
#: :data:`BATCH_FLOOR` runs, ``batch`` forces the batch kernel on every
#: cell group, ``scalar`` forces the per-run oracle.
BACKENDS = ("auto", "batch", "scalar")

#: Environment default for the backend (CLI ``--backend`` wins).
BACKEND_ENV = "REPRO_BACKEND"

#: Smallest cell group the ``auto`` backend routes through the batch
#: kernel: below this, per-cell planning overhead outweighs the batching
#: win (single-repetition campaigns stay on the oracle path entirely).
BATCH_FLOOR = 4

#: How many times a campaign rebuilds its process pool after a worker
#: crash (:class:`BrokenProcessPool`) before degrading to in-process
#: execution for the rest of the run.
POOL_REBUILD_LIMIT = 3

#: How many pooled re-dispatches one chunk gets after crashes before it
#: executes in-process instead (a chunk that keeps killing workers — OOM,
#: segfaulting native code — must not crash-loop the pool forever).
CHUNK_RETRY_LIMIT = 2

#: Base pause before a pool rebuild, doubled per rebuild (capped at 1 s):
#: long enough to let a transient condition (fork storm, memory pressure)
#: clear, short enough to be invisible on a healthy run.
POOL_BACKOFF_S = 0.05


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend choice: explicit arg, else env, else ``auto``."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "auto"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
    return backend


def _iter_cell_groups(runs: Sequence[RunSpec]) -> Iterator[List[RunSpec]]:
    """Split a chunk into maximal groups of consecutive same-cell runs.

    Repetitions are the innermost grid axis, so a cell's runs arrive
    consecutively; grouping only adjacent runs therefore recovers whole
    cells (up to chunk boundaries) while trivially preserving row order.
    """
    from repro.engine.batch import cell_key

    group: List[RunSpec] = []
    key = None
    for run in runs:
        run_key = cell_key(run)
        if group and run_key != key:
            yield group
            group = []
        group.append(run)
        key = run_key
    if group:
        yield group


def execute_chunk(
    runs: Sequence[RunSpec],
    timings: bool = False,
    backend: Optional[str] = None,
) -> List[Row]:
    """Execute a batch of runs in one worker task (one dispatch round-trip).

    Chunking amortizes the per-future submit/pickle/wakeup overhead of the
    process pool, and lets the worker-side memos (:func:`resolve_algorithm`,
    scenario compilation templates) stay warm across consecutive runs.

    Under the ``auto`` / ``batch`` backends the chunk is additionally
    grouped by campaign cell and each group executes through the batch
    kernel (:func:`repro.engine.batch.run_batch`); row contents are
    byte-identical to the scalar oracle at every backend, so the choice is
    purely a throughput knob.
    """
    backend = resolve_backend(backend)
    if backend == "scalar":
        return [execute_run(run, timings=timings) for run in runs]
    from repro.engine.batch import run_batch

    rows: List[Row] = []
    for group in _iter_cell_groups(runs):
        if backend == "auto" and len(group) < BATCH_FLOOR:
            rows.extend(execute_run(run, timings=timings) for run in group)
        else:
            rows.extend(run_batch(group, timings=timings))
    return rows


def _auto_chunk(remaining: int, workers: int) -> int:
    """Runs per future when the caller does not fix ``chunk``.

    Large enough to amortize dispatch overhead, small enough to keep at
    least ``8 × workers`` chunks over the whole campaign (load balancing
    and progress granularity), capped at :data:`MAX_CHUNK`.
    """
    return max(1, min(MAX_CHUNK, remaining // (workers * 8)))


def iter_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    skip_run_ids: Optional[AbstractSet[int]] = None,
    window: Optional[int] = None,
    chunk: Optional[int] = None,
    timings: bool = False,
    on_event: Optional[EventFn] = None,
    backend: Optional[str] = None,
) -> Iterator[Row]:
    """Stream result rows as runs complete (completion order, not run_id).

    Runs are drawn lazily from :meth:`CampaignSpec.iter_runs`; any id in
    ``skip_run_ids`` (runs a checkpoint already recorded) is skipped without
    executing.  With ``workers > 1``, runs are submitted ``chunk`` at a time
    per future (auto-sized from the grid when ``None``) and at most
    ``window`` *runs* (default ``4 × workers × chunk``) are in flight at
    once: completed rows are yielded via :func:`concurrent.futures.wait` as
    soon as their chunk finishes, so a slow cell delays at most its own
    chunk-mates (``chunk=1`` restores per-run streaming) and memory stays
    bounded by the window regardless of grid size.
    ``progress(completed, total)`` counts skipped runs as already
    completed.  Chunking changes only dispatch batching — row contents are
    byte-identical at any ``(workers, chunk)``.  Abandoning the iterator
    mid-stream shuts the pool down (queued runs are cancelled, in-flight
    runs finish and are discarded).

    ``timings=True`` adds the volatile ``_elapsed_ms`` / ``_pid`` fields to
    each row (see :func:`execute_run`); ``on_event(kind, fields)`` receives
    runner lifecycle events (a ``chunk_dispatched`` per submitted worker
    task) for the CLI's events sidecar.  Both default off, so library
    callers see exactly the historical row stream.

    ``backend`` selects the execution backend (see :data:`BACKENDS`;
    ``None`` reads :data:`BACKEND_ENV`, else ``auto``): the batch kernel
    changes only throughput, never row bytes.

    Dispatch survives worker-process death: a killed worker surfaces as
    :class:`BrokenProcessPool`, whereupon every in-flight chunk is
    salvaged, the pool is rebuilt (up to :data:`POOL_REBUILD_LIMIT`
    times, with backoff) and the chunks are re-dispatched (each at most
    :data:`CHUNK_RETRY_LIMIT` times through a pool before executing
    in-process instead); past the rebuild limit the campaign degrades to
    in-process execution entirely.  Because every run is seeded by its
    coordinates, the recovered row stream is byte-identical (after the
    canonical ``run_id`` sort) to an undisturbed run — crashes cost
    wall-clock, never correctness.  ``worker_crashed`` /
    ``chunk_retried`` / ``pool_degraded`` events record each recovery.
    """
    if workers < 1:
        raise ValueError(f"workers must be ≥ 1, got {workers}")
    if window is not None and window < 1:
        raise ValueError(f"window must be ≥ 1, got {window}")
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be ≥ 1, got {chunk}")
    backend = resolve_backend(backend)
    skip = frozenset(skip_run_ids or ())
    total = spec.total_runs
    completed = len(skip)
    runs = (run for run in spec.iter_runs() if run.run_id not in skip)

    def advance(row: Row) -> Row:
        nonlocal completed
        completed += 1
        if progress is not None:
            progress(completed, total)
        return row

    if workers == 1:
        if backend == "scalar":
            for run in runs:
                yield advance(execute_run(run, timings=timings))
            return
        # Batching backends buffer consecutive same-cell runs so whole
        # cells reach the batch kernel; ``chunk`` caps the buffer (default
        # MAX_CHUNK), bounding the latency between a run finishing and its
        # row streaming out.
        from repro.engine.batch import cell_key

        limit = chunk if chunk is not None else MAX_CHUNK
        buffer: List[RunSpec] = []
        key = None
        for run in runs:
            run_key = cell_key(run)
            if buffer and (run_key != key or len(buffer) >= limit):
                for row in execute_chunk(tuple(buffer), timings, backend):
                    yield advance(row)
                buffer = []
            buffer.append(run)
            key = run_key
        if buffer:
            for row in execute_chunk(tuple(buffer), timings, backend):
                yield advance(row)
        return

    if chunk is None:
        chunk = _auto_chunk(total - len(skip), workers)
    if window is not None:
        # A caller-fixed window caps in-flight *runs*; chunks bigger than
        # one worker's share of it would serialize the pool (the first
        # submit alone fills the window), so shrink them to fit.
        chunk = min(chunk, max(1, window // workers))
    else:
        window = workers * WINDOW_PER_WORKER * chunk
    pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
        max_workers=workers
    )
    rebuilds = 0
    try:
        # future → (the chunk's runs, crash-retry attempt).  Keeping the
        # runs alongside the future is what makes a worker crash
        # recoverable: the chunk is simply dispatched again.
        pending: Dict[object, Tuple[Tuple[RunSpec, ...], int]] = {}
        inflight = 0
        batch: List[RunSpec] = []

        def emit(kind: str, fields: Dict[str, object]) -> None:
            if on_event is not None:
                on_event(kind, fields)

        def dispatch(
            chunk_runs: Tuple[RunSpec, ...], attempt: int
        ) -> Iterator[Row]:
            """Hand one chunk to the pool (rows come back through
            :func:`drain`), or — once the pool is degraded or the chunk
            has exhausted its crash retries — execute it in-process and
            yield its rows directly.  Row contents are identical on
            either path: runs are seeded by their coordinates."""
            nonlocal inflight
            if attempt > 0:
                emit(
                    "chunk_retried",
                    {
                        "runs": len(chunk_runs),
                        "attempt": attempt,
                        "mode": (
                            "pool"
                            if pool is not None
                            and attempt <= CHUNK_RETRY_LIMIT
                            else "inline"
                        ),
                    },
                )
            if pool is not None and attempt <= CHUNK_RETRY_LIMIT:
                try:
                    future = pool.submit(
                        execute_chunk, chunk_runs, timings, backend
                    )
                except BrokenProcessPool as exc:
                    # The pool died between drains; recover() re-enters
                    # dispatch with attempt+1, so this cannot loop
                    # unboundedly (attempt eventually exceeds the limit).
                    yield from recover(exc, (chunk_runs, attempt))
                    return
                pending[future] = (chunk_runs, attempt)
                inflight += len(chunk_runs)
                if attempt == 0:
                    emit("chunk_dispatched", {"runs": len(chunk_runs)})
                return
            for row in execute_chunk(chunk_runs, timings, backend):
                yield advance(row)

        def recover(
            exc: BaseException, *extra: Tuple[Tuple[RunSpec, ...], int]
        ) -> Iterator[Row]:
            """A worker process died.  Salvage every in-flight chunk,
            rebuild the pool (bounded retries with backoff, then degrade
            to in-process execution) and re-dispatch the survivors —
            the row stream continues as if nothing happened."""
            nonlocal pool, rebuilds, inflight
            # One dead worker breaks the whole executor: every pending
            # future settles promptly (result or BrokenProcessPool), so
            # this wait is short.  Chunks that finished before the crash
            # keep their rows; the rest are re-dispatched.
            if pending:
                wait(list(pending))
            salvaged = list(extra)
            finished: List[Row] = []
            for future, (chunk_runs, attempt) in pending.items():
                inflight -= len(chunk_runs)
                try:
                    finished.extend(future.result())
                except BaseException:
                    salvaged.append((chunk_runs, attempt))
            pending.clear()
            emit(
                "worker_crashed",
                {
                    "chunks": len(salvaged),
                    "runs": sum(len(c) for c, _ in salvaged),
                    "error": str(exc).split("\n")[0],
                    "rebuilds": rebuilds,
                },
            )
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if rebuilds < POOL_REBUILD_LIMIT:
                rebuilds += 1
                sleep(min(POOL_BACKOFF_S * (2 ** (rebuilds - 1)), 1.0))
                pool = ProcessPoolExecutor(max_workers=workers)
            else:
                pool = None
                emit("pool_degraded", {"rebuilds": rebuilds})
            for row in finished:
                yield advance(row)
            for chunk_runs, attempt in salvaged:
                yield from dispatch(chunk_runs, attempt + 1)

        def drain() -> Iterator[Row]:
            nonlocal inflight
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if future not in pending:
                    continue  # salvaged by an earlier recover() this loop
                chunk_runs, attempt = pending.pop(future)
                inflight -= len(chunk_runs)
                try:
                    rows = future.result()
                except BrokenProcessPool as exc:
                    yield from recover(exc, (chunk_runs, attempt))
                    continue
                for row in rows:
                    yield advance(row)

        for run in runs:
            batch.append(run)
            if len(batch) >= chunk:
                yield from dispatch(tuple(batch), 0)
                batch.clear()
                while inflight >= window:
                    yield from drain()
        if batch:
            yield from dispatch(tuple(batch), 0)
        while pending:
            yield from drain()
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    chunk: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[Row]:
    """Execute every run of ``spec`` and return rows ordered by ``run_id``.

    The collect-and-sort wrapper over :func:`iter_campaign` — use the
    generator directly (with a :class:`~repro.campaigns.results.ResultSink`)
    when the grid is too large to hold in memory.
    """
    rows = list(
        iter_campaign(
            spec,
            workers=workers,
            progress=progress,
            chunk=chunk,
            backend=backend,
        )
    )
    rows.sort(key=lambda row: row["run_id"])
    return rows
