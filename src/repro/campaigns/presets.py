"""Built-in named campaigns reproducing the paper's tables and figures.

Each preset is a :class:`~repro.campaigns.spec.CampaignSpec` runnable as
``repro campaign run <name>``:

* ``table1`` — every named algorithm crossed with every class-minimal
  model: admitted exactly on its own Table-1 row, ``inadmissible``
  elsewhere;
* ``fig1-flv-class1`` / ``fig2-flv-class2`` / ``fig3-flv-class3`` — the
  per-class resilience sweeps over ``n`` for ``b = 1`` under the Byzantine
  scenario battery (the constructive FaB ``n > 5b`` / MQB ``n > 4b`` /
  PBFT ``n > 3b`` frontiers);
* ``latency-gst`` — the timed-engine GST sensitivity curve (decision time
  tracks the global stabilization time);
* ``grid-demo`` — a fast ≥ 100-run mixed lockstep/timed grid used by the
  acceptance check and the quickstart;
* ``gauntlet`` — every scenario registered in
  :data:`~repro.scenarios.registry.SCENARIO_REGISTRY` crossed with every
  FLV algorithm class on both engines: the disruption-tolerance sweep
  (partitions, GST prefixes, loss, withholding, crash storms) in one grid.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.resilience import DEFAULT_BYZANTINE_SCENARIOS
from repro.campaigns.spec import CampaignSpec, FaultSpec, NetworkSpec
from repro.scenarios.registry import SCENARIO_REGISTRY

#: The adversarial battery used by the per-class figure sweeps — the same
#: battery :func:`repro.analysis.resilience.sweep_class` runs, so the two
#: sweep harnesses cannot drift apart.
BYZANTINE_SCENARIOS: Tuple[str, ...] = tuple(DEFAULT_BYZANTINE_SCENARIOS)


def _byz(*names: str) -> Tuple[FaultSpec, ...]:
    return tuple(FaultSpec(byzantine=name) for name in names)


BUILTIN_CAMPAIGNS: Dict[str, CampaignSpec] = {
    "table1": CampaignSpec(
        name="table1",
        algorithms=(
            "one-third-rule", "fab-paxos", "mqb",
            "paxos", "chandra-toueg", "pbft",
        ),
        models=((4, 0, 1), (6, 1, 0), (5, 1, 0), (3, 0, 1), (4, 1, 0)),
        faults=(FaultSpec(), FaultSpec(byzantine="equivocator"),
                FaultSpec(crashes=-1)),
        max_phases=12,
    ),
    "fig1-flv-class1": CampaignSpec(
        name="fig1-flv-class1",
        algorithms=("class-1",),
        models=tuple((n, 1, 0) for n in range(4, 10)),
        faults=_byz(*BYZANTINE_SCENARIOS),
        max_phases=8,
    ),
    "fig2-flv-class2": CampaignSpec(
        name="fig2-flv-class2",
        algorithms=("class-2",),
        models=tuple((n, 1, 0) for n in range(3, 9)),
        faults=_byz(*BYZANTINE_SCENARIOS),
        max_phases=8,
    ),
    "fig3-flv-class3": CampaignSpec(
        name="fig3-flv-class3",
        algorithms=("class-3",),
        models=tuple((n, 1, 0) for n in range(2, 8)),
        faults=_byz(*BYZANTINE_SCENARIOS),
        max_phases=8,
    ),
    "latency-gst": CampaignSpec(
        name="latency-gst",
        algorithms=("pbft",),
        models=((4, 1, 0),),
        engines=("timed",),
        faults=(FaultSpec(byzantine="equivocator"),),
        networks=tuple(
            NetworkSpec(gst=gst, pre_gst_delay_prob=0.85)
            for gst in (0.0, 10.0, 20.0, 30.0)
        ),
        repetitions=5,
        seed=11,
        max_phases=40,
    ),
    "gauntlet": CampaignSpec(
        name="gauntlet",
        algorithms=("class-1", "class-2", "class-3"),
        # (7,1,1) admits classes 2-3, (9,1,1) all three (n > 5b + 3f);
        # f = 1 gives the crash scenarios room on both engines.
        models=((7, 1, 1), (9, 1, 1)),
        engines=("lockstep", "timed"),
        scenarios=tuple(sorted(SCENARIO_REGISTRY)),
        max_phases=18,
        seed=5,
    ),
    "grid-demo": CampaignSpec(
        name="grid-demo",
        algorithms=("class-1", "class-2", "class-3"),
        models=((4, 1, 0), (5, 1, 0), (6, 1, 0)),
        engines=("lockstep", "timed"),
        faults=(FaultSpec(), FaultSpec(byzantine="equivocator"),
                FaultSpec(byzantine="silent")),
        repetitions=2,
        max_phases=10,
    ),
}
