"""Command-line interface: run paper experiments from a shell.

Usage examples::

    python -m repro.cli list
    python -m repro.cli run --algorithm pbft --n 4 --byzantine equivocator
    python -m repro.cli run --algorithm mqb --n 9 --b 2 --byzantine silent
    python -m repro.cli table1
    python -m repro.cli sweep --class 2 --b 1 --n-max 8
    python -m repro.cli ben-or --n 3 --seeds 20
    python -m repro.cli scenario list
    python -m repro.cli scenario run partition_heal --algorithm pbft --n 4
    python -m repro.cli scenario run worst_case --algorithm class-3 --n 7 --engine timed
    python -m repro.cli profile worst_case --algorithm pbft --n 4 --b 1
    python -m repro.cli campaign list
    python -m repro.cli campaign run grid-demo --workers 4
    python -m repro.cli campaign run myspec.json --out results.jsonl
    python -m repro.cli campaign run myspec.json --out results.jsonl --resume
    python -m repro.cli campaign run grid-demo --events events.jsonl --progress
    python -m repro.cli campaign report results.jsonl
    python -m repro.cli campaign report results.jsonl --events events.jsonl
    python -m repro.cli fuzz run --seed 7 --budget 200 --out findings.jsonl
    python -m repro.cli fuzz run --seed 7 --budget 200 --out findings.jsonl --resume
    python -m repro.cli fuzz replay findings.jsonl --index 16 --shrunk
    python -m repro.cli fuzz shrink findings.jsonl --index 16
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.algorithms import ALGORITHM_BUILDERS
from repro.analysis.metrics import RunMetrics
from repro.analysis.reporting import format_table
from repro.analysis.resilience import sweep_class
from repro.core.classification import AlgorithmClass
from repro.core.types import FaultModel
from repro.faults.registry import STRATEGY_REGISTRY


def _cmd_list(args: argparse.Namespace) -> int:
    print("Algorithms:")
    for name in sorted(ALGORITHM_BUILDERS):
        print(f"  {name}")
    print("Byzantine strategies:")
    for name in sorted(STRATEGY_REGISTRY):
        print(f"  {name}")
    return 0


def _build_spec(args: argparse.Namespace):
    builder = ALGORITHM_BUILDERS.get(args.algorithm)
    if builder is None:
        print(
            f"unknown algorithm {args.algorithm!r}; try: "
            f"{', '.join(sorted(ALGORITHM_BUILDERS))}",
            file=sys.stderr,
        )
        return None
    kwargs = {}
    if args.b is not None:
        kwargs["b"] = args.b
    if args.f is not None:
        kwargs["f"] = args.f
    try:
        return builder(args.n, **kwargs)
    except (TypeError, ValueError) as exc:
        print(f"cannot build {args.algorithm}: {exc}", file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    if spec is None:
        return 2
    model = spec.parameters.model
    byzantine = {}
    if args.byzantine:
        if model.b == 0:
            print("model has b = 0; --byzantine ignored", file=sys.stderr)
        else:
            byzantine = {
                model.n - 1 - i: args.byzantine for i in range(model.b)
            }
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }
    outcome = spec.run(values, byzantine=byzantine, max_phases=args.max_phases)
    metrics = RunMetrics.from_outcome(outcome)
    print(f"{spec.name}  [{spec.parameters.describe()}]")
    decided = {pid: d.value for pid, d in sorted(outcome.decisions.items())}
    print(f"  decided     : {decided}")
    print(f"  agreement   : {outcome.agreement_holds}")
    print(f"  termination : {outcome.all_correct_decided}")
    print(f"  phases      : {metrics.phases_to_last_decision}")
    print(f"  rounds      : {metrics.rounds_to_last_decision}")
    print(f"  messages    : {metrics.messages_sent}")
    return 0 if outcome.agreement_holds else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for cls in AlgorithmClass:
        row = cls.row
        rows.append(
            [
                cls.value,
                str(row.flag),
                f"n>{row.n_bound[0]}b+{row.n_bound[1]}f",
                "/".join(row.state),
                row.rounds_per_phase,
                "; ".join(row.examples),
            ]
        )
    print(
        format_table(
            ["class", "FLAG", "n bound", "state", "rounds/phase", "examples"],
            rows,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    cls = AlgorithmClass(args.cls)
    factor, _ = cls.row.n_bound
    n_min = max(args.b + 1, factor * args.b - 1)
    configurations = []
    for n in range(n_min, args.n_max + 1):
        try:
            configurations.append(FaultModel(n, args.b, 0))
        except ValueError:
            continue
    rows = sweep_class(cls, configurations, max_phases=args.max_phases)
    print(
        format_table(
            ["n", "b", "scenario", "admitted", "agreement", "termination", "phases"],
            [
                [r.n, r.b, r.scenario, r.admitted, r.agreement, r.termination, r.phases]
                for r in rows
            ],
        )
    )
    return 0


def _cmd_ben_or(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.algorithms.ben_or import build_ben_or
    from repro.core.randomized import run_randomized_consensus

    spec = build_ben_or(args.n, b=args.b or 0)
    model = spec.parameters.model
    values = {
        pid: (pid + 1) % 2 for pid in range(model.n - (1 if args.b else 0))
    }
    byzantine = {model.n - 1: "equivocator"} if args.b else None
    phases = Counter()
    for seed in range(args.seeds):
        outcome = run_randomized_consensus(
            spec.parameters, values, seed=seed, byzantine=byzantine,
            max_phases=args.max_phases,
        )
        if not outcome.agreement_holds:
            print(f"seed {seed}: AGREEMENT VIOLATED", file=sys.stderr)
            return 1
        key = (
            outcome.phases_to_last_decision
            if outcome.all_correct_decided
            else ">max"
        )
        phases[key] += 1
    print(f"{spec.name} over {args.seeds} seeds (phases to decide):")
    for key in sorted(phases, key=str):
        print(f"  {key!s:>5}: {phases[key]}")
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios

    print("Registered scenarios:")
    for spec in list_scenarios():
        print(f"  {spec.name:<18} {spec.describe_fault()}")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.campaigns.spec import resolve_algorithm
    from repro.scenarios import ScenarioInapplicable, get_scenario, run_scenario

    try:
        spec = get_scenario(args.name)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        model = FaultModel(args.n, args.b, args.f)
        parameters, config = resolve_algorithm(args.algorithm, model)
    except (KeyError, ValueError) as exc:
        print(f"cannot build {args.algorithm}: {exc}", file=sys.stderr)
        return 2
    try:
        outcome = run_scenario(
            spec,
            parameters,
            engine=args.engine,
            rng=args.seed,
            config=config,
            max_phases=args.max_phases,
        )
    except ScenarioInapplicable as exc:
        print(f"scenario inapplicable: {exc}", file=sys.stderr)
        return 2
    decided = {
        pid: d.value for pid, d in sorted(outcome.decisions.items())
    }
    print(
        f"{spec.name} [{spec.describe_fault()}] on {args.algorithm} "
        f"n={args.n} b={args.b} f={args.f} ({args.engine}, seed {args.seed})"
    )
    print(f"  decided     : {decided}")
    print(f"  agreement   : {outcome.agreement_holds}")
    print(f"  termination : {outcome.all_correct_decided}")
    print(f"  rounds      : {outcome.rounds_executed}")
    print(f"  phases      : {outcome.phases_to_last_decision}")
    print(f"  messages    : {outcome.messages_sent} sent, "
          f"{outcome.messages_delivered} delivered, "
          f"{outcome.messages_dropped} dropped")
    if outcome.simulated_time is not None:
        print(f"  time        : {outcome.simulated_time:g} "
              f"(last decision {outcome.last_decision_time})")
    return 0 if outcome.agreement_holds else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_scenario_list,
        "run": _cmd_scenario_run,
    }
    return handlers[args.scenario_command](args)


def _cmd_profile_batch(args: argparse.Namespace) -> int:
    """``repro profile --batch B``: one cell through the batch kernel.

    Expands B campaign-style repetitions of the profiled cell (same
    coordinate-derived seeds a real campaign would use), executes them as
    one batch with telemetry bound, and prints the plan, the per-tier
    ``batch.*`` counters and the span breakdown — the quickest way to see
    whether a cell actually runs columnar and where its time goes.
    """
    from collections import Counter
    from time import perf_counter

    from repro.campaigns import CampaignSpec
    from repro.engine.batch import plan_for_run, run_batch
    from repro.observability import Telemetry, format_phase_table

    try:
        spec = CampaignSpec(
            name=f"profile-{args.scenario}",
            algorithms=(args.algorithm,),
            models=((args.n, args.b, args.f),),
            engines=(args.engine,),
            scenarios=(args.scenario,),
            repetitions=args.batch,
            seed=args.seed,
            **(
                {"max_phases": args.max_phases}
                if args.max_phases is not None
                else {}
            ),
        )
        runs = list(spec.iter_runs())
    except (KeyError, ValueError) as exc:
        print(f"cannot expand cell: {exc}", file=sys.stderr)
        return 2
    plan = plan_for_run(runs[0])
    telemetry = Telemetry()
    wall_start = perf_counter()
    rows = run_batch(runs, telemetry=telemetry)
    wall = perf_counter() - wall_start
    statuses = Counter(str(row.get("status")) for row in rows)
    backends = Counter(str(row.get("_backend")) for row in rows)
    print(
        f"batch profile: {args.scenario} on {args.algorithm} n={args.n} "
        f"b={args.b} f={args.f} ({args.engine}, seed {args.seed}, "
        f"{args.batch} run(s))"
    )
    print(f"  plan: {plan.mode} — {plan.reason}")
    print(
        "  rows: "
        + "  ".join(f"{name} {count}" for name, count in sorted(backends.items()))
        + "  |  status: "
        + "  ".join(f"{name} {count}" for name, count in sorted(statuses.items()))
    )
    counters = {
        name: value
        for name, value in sorted(telemetry.counters.items())
        if name.startswith("batch.")
    }
    if counters:
        print(
            "  counters: "
            + "  ".join(f"{name}={value}" for name, value in counters.items())
        )
    print()
    print(format_phase_table(telemetry, wall_seconds=wall))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.campaigns.spec import resolve_algorithm
    from repro.observability import Telemetry, format_phase_table
    from repro.scenarios import ScenarioInapplicable, get_scenario, run_scenario

    if args.batch is not None:
        return _cmd_profile_batch(args)
    telemetry = Telemetry()
    wall_start = perf_counter()
    # Setup and analysis get spans of their own so the phase table accounts
    # for (nearly) the whole command wall, not just the engine's share.
    with telemetry.span("setup.resolve"):
        try:
            spec = get_scenario(args.scenario)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        try:
            model = FaultModel(args.n, args.b, args.f)
            parameters, config = resolve_algorithm(args.algorithm, model)
        except (KeyError, ValueError) as exc:
            print(f"cannot build {args.algorithm}: {exc}", file=sys.stderr)
            return 2
    outcome = None
    for repeat in range(args.repeat):
        # engine.run wraps scenario compilation + instance build + the
        # kernel loop; the kernel's own spans nest inside it, so its self
        # time is exactly the non-kernel glue.
        with telemetry.span("engine.run"):
            try:
                outcome = run_scenario(
                    spec,
                    parameters,
                    engine=args.engine,
                    rng=args.seed + repeat,
                    config=config,
                    observe="profile",
                    max_phases=args.max_phases,
                    telemetry=telemetry,
                )
            except ScenarioInapplicable as exc:
                print(f"scenario inapplicable: {exc}", file=sys.stderr)
                return 2
    with telemetry.span("analysis.invariants"):
        report = outcome.invariant_report()
    wall = perf_counter() - wall_start
    print(
        f"profile: {spec.name} on {args.algorithm} n={args.n} b={args.b} "
        f"f={args.f} ({args.engine}, seed {args.seed}, "
        f"{args.repeat} run(s))"
    )
    print(
        f"  agreement {report.get('agreement')}  "
        f"termination {report.get('termination')}  "
        f"rounds {outcome.rounds_executed}  "
        f"messages {outcome.messages_sent}"
    )
    print()
    print(format_phase_table(telemetry, wall_seconds=wall))
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.smr import ServeConfig, WorkloadSpec

    config = ServeConfig(
        algorithm=args.algorithm,
        n=args.n,
        b=args.b,
        f=args.f,
        scenario=args.scenario,
        engine=args.engine,
        batch=args.batch,
        batch_bytes=args.batch_bytes,
        depth=args.depth,
        seed=args.seed,
        max_phases=args.max_phases,
    )
    workload = WorkloadSpec(
        clients=args.clients,
        rate=args.rate,
        duration=args.duration,
        arrival=args.arrival,
        seed=args.seed,
    )
    return config, workload


def _cmd_smr_serve(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import ScenarioInapplicable
    from repro.smr import run_serve

    config, workload = _serve_config(args)
    try:
        report = run_serve(config, workload)
    except (KeyError, ValueError) as exc:
        if isinstance(exc, ScenarioInapplicable):
            print(f"scenario inapplicable: {exc}", file=sys.stderr)
        else:
            print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_row(), sort_keys=True))
        return 0 if report.digests_agree and not report.stalled else 1
    print(
        f"serve: {config.algorithm} n={config.n} b={config.b} f={config.f} "
        f"[{report.scenario}] ({config.engine}, seed {config.seed})"
    )
    print(
        f"  load        : {workload.arrival} rate {workload.rate:g}/t "
        f"x {workload.duration:g}t over {workload.clients} client(s)"
    )
    print(
        f"  pipeline    : batch ≤ {config.batch}"
        + (f" (≤ {config.batch_bytes}B)" if config.batch_bytes else "")
        + f", depth {config.depth}"
    )
    print(
        f"  commands    : {report.offered} offered, "
        f"{report.committed_commands} committed in "
        f"{report.slots_committed} slot(s) "
        f"(mean batch {report.mean_batch_size:.2f})"
    )
    print(
        f"  consensus   : {report.retries} retried, "
        f"{report.rejected} rejected"
        + ("  ** STALLED **" if report.stalled else "")
    )
    print(
        f"  state       : digests agree {report.digests_agree} "
        f"(log {report.log_digest[:16]})"
    )
    print(
        f"  throughput  : {report.throughput:,.0f} cmd/s wall "
        f"({report.simulated_duration:g} simulated time units)"
    )
    if report.latency:
        lat = report.latency
        print(
            f"  latency     : p50 {lat['p50']:.3f}  p95 {lat['p95']:.3f}  "
            f"p99 {lat['p99']:.3f}  mean {lat['mean']:.3f}  "
            f"max {lat['max']:.3f} (simulated units)"
        )
    return 0 if report.digests_agree and not report.stalled else 1


def _cmd_smr_sweep(args: argparse.Namespace) -> int:
    from repro.smr import sweep_serve

    config, workload = _serve_config(args)
    rates = [float(rate) for rate in args.rates.split(",") if rate]
    scenarios = (
        [name for name in args.scenarios.split(",") if name]
        if args.scenarios
        else None
    )
    rows = sweep_serve(
        config, workload, rates=rates, scenarios=scenarios, out=args.out
    )
    headers = [
        "cell", "status", "offered", "committed", "slots",
        "retries", "p50", "p99", "digests",
    ]
    table_rows = []
    for row in rows:
        if row["status"] == "inapplicable":
            table_rows.append(
                [row["cell"], row["status"]] + ["-"] * 7
            )
            continue
        table_rows.append([
            row["cell"],
            row["status"],
            row["offered"],
            row["committed_commands"],
            row["slots_committed"],
            row["retries"],
            f"{row['latency_p50']:.3f}" if row["latency_p50"] is not None else "-",
            f"{row['latency_p99']:.3f}" if row["latency_p99"] is not None else "-",
            "ok" if row["digests_agree"] else "DIVERGED",
        ])
    print(format_table(headers, table_rows))
    if args.out:
        print(f"\nwrote {len(rows)} row(s) to {args.out}")
    bad = [
        row for row in rows
        if row["status"] == "stalled"
        or (row["status"] == "ok" and not row["digests_agree"])
    ]
    return 1 if bad else 0


def _cmd_smr(args: argparse.Namespace) -> int:
    handlers = {
        "serve": _cmd_smr_serve,
        "sweep": _cmd_smr_sweep,
    }
    return handlers[args.smr_command](args)


def _load_campaign(source: str):
    """A campaign spec from a file path or a built-in name."""
    from repro.campaigns import BUILTIN_CAMPAIGNS, load_spec

    if source in BUILTIN_CAMPAIGNS:
        return BUILTIN_CAMPAIGNS[source]
    path = Path(source)
    if path.exists():
        try:
            return load_spec(path)
        except (ValueError, TypeError, OSError) as exc:
            print(f"cannot load campaign spec {source}: {exc}", file=sys.stderr)
            return None
    print(
        f"no such campaign: {source!r} is neither a spec file nor a "
        f"built-in ({', '.join(sorted(BUILTIN_CAMPAIGNS))})",
        file=sys.stderr,
    )
    return None


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from repro.campaigns import BUILTIN_CAMPAIGNS

    print("Built-in campaigns:")
    for name, spec in sorted(BUILTIN_CAMPAIGNS.items()):
        print(f"  {name:<18} {spec.total_runs:>4} runs")
    return 0


#: ``campaign run`` exit code when ``--stop-after`` leaves a checkpoint.
EXIT_INTERRUPTED = 3


#: A ``worker_heartbeat`` event is emitted every this many rows per worker.
HEARTBEAT_EVERY = 20


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import os
    from dataclasses import replace as dc_replace
    from time import perf_counter

    from repro.campaigns import (
        format_report,
        format_slowest_cells,
        iter_campaign,
        resolve_backend,
    )
    from repro.campaigns.aggregate import SummaryFold
    from repro.campaigns.results import (
        ResultStore,
        checkpoint_path,
        finalize_checkpoint,
        iter_rows,
        validate_resume,
    )
    from repro.observability import EventLog, ProgressLine

    spec = _load_campaign(args.spec)
    if spec is None:
        return 2
    try:
        backend = resolve_backend(args.backend)
    except ValueError as exc:
        print(exc, file=sys.stderr)  # a bad REPRO_BACKEND value
        return 2
    if args.seed is not None:
        spec = dc_replace(spec, seed=args.seed)
    out = Path(args.out or f"{spec.name}.results.jsonl")
    checkpoint = checkpoint_path(out)

    skip: set = set()
    if args.resume:
        if not checkpoint.exists():
            hint = (
                f" ({out} exists — campaign already finalized?)"
                if out.exists()
                else ""
            )
            print(
                f"nothing to resume: no checkpoint at {checkpoint}{hint}",
                file=sys.stderr,
            )
            return 2
        # Validation before any mutation: a corrupt, foreign, reseeded or
        # reshaped checkpoint is refused untouched (delete it to start
        # over).  Only then is a torn final line truncated so new appends
        # start on a clean row.
        try:
            skip, intact = validate_resume(spec, checkpoint)
        except ValueError as exc:
            print(
                f"cannot resume: {exc}; delete the checkpoint to start over",
                file=sys.stderr,
            )
            return 2
        os.truncate(checkpoint, intact)
    elif checkpoint.exists():
        print(
            f"checkpoint {checkpoint} already exists; "
            "pass --resume to complete it or delete it to start over",
            file=sys.stderr,
        )
        return 2

    total = spec.total_runs
    step = max(1, total // 10)

    if args.events and not args.resume:
        # A fresh campaign starts a fresh flight recorder; only --resume
        # appends to the existing event history.
        Path(args.events).unlink(missing_ok=True)
    events = EventLog(args.events) if args.events else None
    progress_line = (
        ProgressLine(spec.name, total, stream=sys.stderr)
        if args.progress
        else None
    )
    live = {"errors": 0, "inadmissible": 0}

    def progress(completed: int, _total: int) -> None:
        if progress_line is not None:
            progress_line.render(
                completed, live["errors"], live["inadmissible"]
            )
        elif not args.quiet and (completed % step == 0 or completed == _total):
            print(f"  {completed}/{_total} runs", file=sys.stderr)

    print(
        f"campaign {spec.name!r}: {total} runs"
        + (f" ({len(skip)} already recorded)" if skip else "")
        + f", {args.workers} worker(s), seed {spec.seed}, "
        + f"backend {backend}",
        file=sys.stderr,
    )
    # Error/violation counts and the per-cell report fold in the same pass
    # that streams rows to the checkpoint.  Only a resumed campaign needs a
    # post-finalize file pass instead: rows recorded by the earlier session
    # never flow through this process's run loop.
    errors = 0
    violations = 0
    fold = SummaryFold() if not args.no_report else None

    def absorb(row) -> None:
        nonlocal errors, violations
        if row.get("status") == "error":
            errors += 1
        if any(
            row.get(prop) is False
            for prop in ("agreement", "validity", "unanimity")
        ):
            violations += 1
        if fold is not None:
            fold.add(row)

    executed = 0
    interrupted = False
    started_at = perf_counter()
    worker_rows: dict = {}
    backend_rows: dict = {}
    store = ResultStore(checkpoint)

    def on_event(kind: str, fields: dict) -> None:
        events.emit(kind, **fields)

    if events is not None:
        events.emit(
            "campaign_started",
            campaign=spec.name,
            total_runs=total,
            workers=args.workers,
            chunk=args.chunk,
            seed=spec.seed,
            backend=backend,
            skipped=len(skip),
            resume=bool(args.resume),
        )
        if skip:
            events.emit("resume_skipped", rows=len(skip))
    try:
        try:
            with store.open_append() as sink:
                for row in iter_campaign(
                    spec,
                    workers=args.workers,
                    progress=progress,
                    skip_run_ids=skip,
                    chunk=args.chunk,
                    timings=True,
                    on_event=on_event if events is not None else None,
                    backend=backend,
                ):
                    sink.append(row)
                    status = row.get("status")
                    row_backend = row.get("_backend", "scalar")
                    backend_rows[row_backend] = (
                        backend_rows.get(row_backend, 0) + 1
                    )
                    if status == "error":
                        live["errors"] += 1
                    elif status == "inadmissible":
                        live["inadmissible"] += 1
                    if not skip:
                        absorb(row)
                    executed += 1
                    if events is not None:
                        events.emit(
                            "row_completed",
                            run_id=row.get("run_id"),
                            status=status,
                            backend=row_backend,
                            duration_ms=row.get("_elapsed_ms"),
                            pid=row.get("_pid"),
                        )
                        pid = row.get("_pid")
                        if isinstance(pid, int):
                            rows = worker_rows[pid] = worker_rows.get(pid, 0) + 1
                            if rows % HEARTBEAT_EVERY == 0:
                                elapsed = perf_counter() - started_at
                                events.emit(
                                    "worker_heartbeat",
                                    pid=pid,
                                    rows=rows,
                                    rows_per_s=(
                                        round(rows / elapsed, 3)
                                        if elapsed > 0
                                        else None
                                    ),
                                )
                        if executed % step == 0 or executed == total - len(skip):
                            events.emit("checkpoint_flushed", rows=executed)
                    if (
                        args.stop_after is not None
                        and executed >= args.stop_after
                    ):
                        interrupted = True
                        break
        except KeyboardInterrupt:
            interrupted = True
            print(
                f"\ninterrupted after {executed} run(s); checkpoint retained "
                f"at {checkpoint} — rerun with --resume to complete",
                file=sys.stderr,
            )
            return 130
        if interrupted:
            print(
                f"stopped after {executed} run(s); checkpoint retained at "
                f"{checkpoint} — rerun with --resume to complete",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
    finally:
        if progress_line is not None and not interrupted:
            progress_line.finish(
                len(skip) + executed, live["errors"], live["inadmissible"]
            )
        if events is not None:
            events.emit(
                "campaign_finished",
                rows=executed,
                errors=live["errors"],
                elapsed_s=round(perf_counter() - started_at, 6),
                interrupted=interrupted,
                backends={
                    name: backend_rows[name] for name in sorted(backend_rows)
                },
            )
            events.close()

    finalize_checkpoint(checkpoint, out)
    print(f"wrote {total} rows to {out}", file=sys.stderr)
    if args.resume:
        # Always reported, so a fully-recorded checkpoint resumes loudly
        # ("N rows skipped, 0 executed") instead of exiting near-silently.
        print(
            f"resumed: {len(skip)} rows skipped, {executed} executed",
            file=sys.stderr,
        )
    if skip:
        for row in iter_rows(out):
            absorb(row)
    if fold is not None:
        summaries = fold.summaries()
        print(format_report(summaries))
        ranking = format_slowest_cells(summaries)
        if ranking:
            print(ranking)
    if errors or violations:
        print(
            f"{errors} error row(s), {violations} safety violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_campaign_plan(args: argparse.Namespace) -> int:
    """``repro campaign plan``: per-cell tier classification, no execution.

    Expands the spec's grid, groups runs into campaign cells, and prints
    the batch tier the planner assigns each cell together with its reason
    — the quickest way to see how much of a campaign will replicate, run
    as one array program, or fall back to the per-run oracle, before
    spending any cycles on it.
    """
    from collections import Counter

    from repro.engine.batch import cell_key, plan_for_run

    spec = _load_campaign(args.spec)
    if spec is None:
        return 2
    cells = {}  # cell key -> (representative run, reps)
    for run in spec.iter_runs():
        key = cell_key(run)
        if key in cells:
            cells[key][1] += 1
        else:
            cells[key] = [run, 1]
    print(f"campaign {spec.name!r}: {spec.total_runs} runs, {len(cells)} cells")
    tier_counts: Counter = Counter()
    header = (
        f"  {'algorithm':<14} {'model':<10} {'engine':<9} "
        f"{'scenario':<18} {'reps':>4}  {'tier':<15} reason"
    )
    print(header)
    for run, reps in cells.values():
        plan = plan_for_run(run)
        tier_counts[plan.mode] += reps
        model = f"({run.n},{run.b},{run.f})"
        print(
            f"  {run.algorithm:<14} {model:<10} {run.engine:<9} "
            f"{run.scenario.name:<18} {reps:>4}  {plan.mode:<15} {plan.reason}"
        )
    print(
        "  tiers: "
        + "  ".join(
            f"{mode} {count}" for mode, count in sorted(tier_counts.items())
        )
    )
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaigns import (
        DEFAULT_GROUP_KEYS,
        format_report,
        format_slowest_cells,
    )
    from repro.campaigns.aggregate import SummaryFold
    from repro.campaigns.results import iter_rows

    keys = (
        tuple(key.strip() for key in args.group_by.split(",") if key.strip())
        if args.group_by
        else DEFAULT_GROUP_KEYS
    )
    # Wall durations never enter the canonical JSONL (they are volatile
    # and nondeterministic); --events joins them back from the sidecar's
    # row_completed events so the report can grow its timing columns.
    durations: dict = {}
    if args.events:
        from repro.observability import load_row_durations

        try:
            durations = load_row_durations(args.events)
        except (OSError, ValueError) as exc:
            print(f"cannot read events {args.events}: {exc}", file=sys.stderr)
            return 2
    # One streaming pass: every row folds into its cell immediately, so
    # report memory scales with cells, not grid rows.  A group-by key is
    # valid if *any* row carries it; the field union is only accumulated
    # while some key is still unseen (one row's worth of work in practice).
    fold = SummaryFold(keys)
    missing = set(keys)
    fields: set = set()
    empty = True
    try:
        for row in iter_rows(args.results):
            empty = False
            if missing:
                fields |= row.keys()
                missing -= row.keys()
            if durations:
                duration = durations.get(row.get("run_id"))
                if duration is not None:
                    row["_elapsed_ms"] = duration
            fold.add(row)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.results}: {exc}", file=sys.stderr)
        return 2
    if missing and not empty:
        unknown = [key for key in keys if key in missing]
        print(
            f"unknown --group-by field(s) {', '.join(unknown)}; "
            f"row fields: {', '.join(sorted(fields))}",
            file=sys.stderr,
        )
        return 2
    summaries = fold.summaries()
    print(format_report(summaries, keys))
    ranking = format_slowest_cells(summaries, keys)
    if ranking:
        print(ranking)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_campaign_list,
        "run": _cmd_campaign_run,
        "plan": _cmd_campaign_plan,
        "report": _cmd_campaign_report,
    }
    return handlers[args.campaign_command](args)


def _fuzz_space(args: argparse.Namespace):
    """Build a :class:`FuzzSpace` from ``fuzz run`` arguments (or exit 2)."""
    from repro.fuzz import DEFAULT_ALGORITHMS, DEFAULT_STRATEGIES, FuzzSpace

    models = None
    if args.models:
        models = []
        for text in args.models:
            parts = text.split(",")
            if len(parts) != 3:
                print(
                    f"bad --models entry {text!r}: expected N,B,F",
                    file=sys.stderr,
                )
                return None
            try:
                models.append(tuple(int(p) for p in parts))
            except ValueError:
                print(
                    f"bad --models entry {text!r}: expected three integers",
                    file=sys.stderr,
                )
                return None
        models = tuple(models)
    try:
        return FuzzSpace(
            algorithms=(
                tuple(args.algorithms) if args.algorithms else DEFAULT_ALGORITHMS
            ),
            engines=tuple(args.engines) if args.engines else ("lockstep", "timed"),
            models=models,
            n_range=(args.n_min, args.n_max),
            strategies=(
                tuple(args.strategies) if args.strategies else DEFAULT_STRATEGIES
            ),
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return None


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzConfig, run_fuzz

    space = _fuzz_space(args)
    if space is None:
        return 2
    try:
        config = FuzzConfig(
            space=space,
            seed=args.seed,
            budget=args.budget,
            over_bound=args.over_bound,
            mutate_prob=args.mutate_prob,
            shrink=not args.no_shrink,
            shrink_attempts=args.shrink_attempts,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    out = Path(args.out)
    step = max(1, config.budget // 10)

    def progress(done: int, budget: int, findings: int) -> None:
        if not args.quiet and (done % step == 0 or done == budget):
            print(
                f"  {done}/{budget} candidates, {findings} finding(s)",
                file=sys.stderr,
            )

    print(
        f"fuzz: seed {config.seed}, budget {config.budget}, "
        f"over-bound {config.over_bound}, space {space.fingerprint()[:12]}",
        file=sys.stderr,
    )
    try:
        summary = run_fuzz(
            config,
            out,
            resume=args.resume,
            stop_after=args.stop_after,
            progress=progress,
        )
    except FileExistsError as exc:
        print(exc, file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"\ninterrupted; fuzz state retained next to {out} — "
            "rerun with --resume to complete",
            file=sys.stderr,
        )
        return 130
    if summary.interrupted:
        print(
            f"stopped after {summary.executed + summary.duplicates} "
            f"candidate(s); fuzz state retained next to {out} — rerun "
            "with --resume to complete",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    kinds = ", ".join(
        f"{kind}: {count}" for kind, count in sorted(summary.by_kind.items())
    )
    print(
        f"fuzzed {config.budget} candidates ({summary.executed} executed, "
        f"{summary.duplicates} duplicate(s), {summary.skipped} skipped): "
        f"{summary.findings} finding(s)"
        + (f" [{kinds}]" if kinds else "")
        + f" -> {out}",
        file=sys.stderr,
    )
    if args.fail_on_finding and summary.findings:
        return 1
    return 0


def _load_finding(path: str, index: Optional[int]):
    """One record from a findings corpus (by index, default the first)."""
    from repro.fuzz import scan_findings

    try:
        records = scan_findings(Path(path))
    except (OSError, ValueError) as exc:
        print(f"cannot read findings {path}: {exc}", file=sys.stderr)
        return None
    if not records:
        print(f"no findings in {path}", file=sys.stderr)
        return None
    if index is None:
        return records[0]
    for record in records:
        if int(record["index"]) == index:
            return record
    known = ", ".join(str(r["index"]) for r in records)
    print(
        f"no finding with index {index} in {path} (have: {known})",
        file=sys.stderr,
    )
    return None


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz import replay_finding

    record = _load_finding(args.findings, args.index)
    if record is None:
        return 2
    shrunk = args.shrunk and "shrunk" in record
    if args.shrunk and "shrunk" not in record:
        print(
            "record has no shrunk form (run was --no-shrink); "
            "replaying the original candidate",
            file=sys.stderr,
        )
    key = record["shrunk_key"] if shrunk else record["key"]
    verdict = replay_finding(record, shrunk=shrunk)
    expected = record["kind"]
    print(f"candidate {key}")
    print(f"recorded kind: {expected}")
    print(
        f"replayed kind: {verdict.kind} (status {verdict.status}, "
        f"violated {list(verdict.violated)})"
    )
    if verdict.kind != expected:
        print("REPLAY MISMATCH: finding did not reproduce", file=sys.stderr)
        return 1
    print("finding reproduced")
    return 0


def _cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        FuzzCandidate,
        candidate_seed,
        classify_candidate,
        shrink_candidate,
    )

    record = _load_finding(args.findings, args.index)
    if record is None:
        return 2
    kind = record["kind"]
    candidate = FuzzCandidate.from_mapping(record["candidate"])
    fuzz_seed = int(record["fuzz_seed"])
    mode = "allow" if record.get("over_bound") else "never"
    result = shrink_candidate(
        candidate,
        kind,
        fuzz_seed=fuzz_seed,
        over_bound=mode,
        max_attempts=args.shrink_attempts,
    )
    print(f"original: {candidate.key()}")
    print(f"shrunk:   {result.candidate.key()}")
    print(
        f"{len(result.ops)} accepted step(s) in {result.attempts} attempt(s):"
    )
    for op in result.ops:
        print(f"  - {op}")
    verdict = classify_candidate(
        result.candidate,
        candidate_seed(fuzz_seed, result.candidate),
        over_bound=mode,
    )
    if verdict.kind != kind:
        print("SHRINK MISMATCH: minimal candidate lost the finding",
              file=sys.stderr)
        return 1
    print(
        json.dumps(
            {
                "shrunk": result.candidate.to_mapping(),
                "shrunk_key": result.candidate.key(),
                "shrunk_seed": candidate_seed(fuzz_seed, result.candidate),
                "shrink_ops": list(result.ops),
                "shrink_attempts": result.attempts,
            },
            sort_keys=True,
        )
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_fuzz_run,
        "replay": _cmd_fuzz_replay,
        "shrink": _cmd_fuzz_shrink,
    }
    return handlers[args.fuzz_command](args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generic consensus algorithms (DSN 2010) — experiment CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms and strategies")

    run = sub.add_parser("run", help="run one consensus instance")
    run.add_argument("--algorithm", required=True)
    run.add_argument("--n", type=int, required=True)
    run.add_argument("--b", type=int, default=None)
    run.add_argument("--f", type=int, default=None)
    run.add_argument("--byzantine", default=None, help="strategy name")
    run.add_argument("--max-phases", type=int, default=15)

    sub.add_parser("table1", help="print Table 1")

    sweep = sub.add_parser("sweep", help="resilience sweep for one class")
    sweep.add_argument("--class", dest="cls", type=int, required=True, choices=[1, 2, 3])
    sweep.add_argument("--b", type=int, default=1)
    sweep.add_argument("--n-max", type=int, default=8)
    sweep.add_argument("--max-phases", type=int, default=8)

    ben_or = sub.add_parser("ben-or", help="randomized Ben-Or seed study")
    ben_or.add_argument("--n", type=int, default=3)
    ben_or.add_argument("--b", type=int, default=None)
    ben_or.add_argument("--seeds", type=int, default=20)
    ben_or.add_argument("--max-phases", type=int, default=400)

    scenario = sub.add_parser(
        "scenario", help="declarative scenarios (list/run)"
    )
    ssub = scenario.add_subparsers(dest="scenario_command", required=True)
    ssub.add_parser("list", help="list registered scenarios")
    srun = ssub.add_parser(
        "run", help="compile one scenario and run it on either engine"
    )
    srun.add_argument("name", help="a registered scenario name")
    srun.add_argument("--algorithm", required=True,
                      help="builder name or class-N")
    srun.add_argument("--n", type=int, required=True)
    srun.add_argument("--b", type=int, default=0)
    srun.add_argument("--f", type=int, default=0)
    srun.add_argument("--engine", choices=["lockstep", "timed"],
                      default="lockstep")
    srun.add_argument("--seed", type=int, default=0)
    srun.add_argument("--max-phases", type=int, default=None)

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be ≥ 1, got {value}")
        return value

    profile = sub.add_parser(
        "profile",
        help="run one scenario under phase-level profiling and print the "
        "span breakdown",
    )
    profile.add_argument("scenario", help="a registered scenario name")
    profile.add_argument("--algorithm", required=True,
                         help="builder name or class-N")
    profile.add_argument("--n", type=int, required=True)
    profile.add_argument("--b", type=int, default=0)
    profile.add_argument("--f", type=int, default=0)
    profile.add_argument("--engine", choices=["lockstep", "timed"],
                         default="lockstep")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--repeat",
        type=positive_int,
        default=1,
        metavar="N",
        help="aggregate spans over N runs (seeds seed..seed+N-1)",
    )
    profile.add_argument("--max-phases", type=int, default=None)
    profile.add_argument(
        "--batch",
        type=positive_int,
        default=None,
        metavar="B",
        help="profile the batch kernel instead: execute B campaign-style "
        "repetitions of this cell as one batch and print the plan, the "
        "batch.* counters and the span breakdown",
    )

    smr = sub.add_parser(
        "smr",
        help="replicated state-machine serving (batched, pipelined "
        "consensus under open-loop load)",
    )
    smrsub = smr.add_subparsers(dest="smr_command", required=True)

    def add_serve_arguments(target: argparse.ArgumentParser) -> None:
        target.add_argument("--algorithm", default="pbft",
                            help="builder name or class-N (default pbft)")
        target.add_argument("--n", type=int, default=4)
        target.add_argument("--b", type=int, default=1)
        target.add_argument("--f", type=int, default=0)
        target.add_argument("--scenario", default="fault-free",
                            help="fault scenario name (default fault-free)")
        target.add_argument("--engine", choices=["lockstep", "timed"],
                            default="lockstep")
        target.add_argument("--batch", type=positive_int, default=8,
                            metavar="B",
                            help="max commands per slot (default 8)")
        target.add_argument("--batch-bytes", type=positive_int, default=None,
                            metavar="BYTES",
                            help="additional per-batch payload cap")
        target.add_argument("--depth", type=positive_int, default=2,
                            metavar="D",
                            help="pipeline window: slots in flight "
                            "(default 2)")
        target.add_argument("--clients", type=positive_int, default=4)
        target.add_argument("--rate", type=float, default=200.0,
                            help="aggregate arrival rate per simulated "
                            "time unit (default 200)")
        target.add_argument("--duration", type=float, default=1.0,
                            help="workload length in simulated time units")
        target.add_argument("--arrival", choices=["poisson", "fixed"],
                            default="poisson")
        target.add_argument("--seed", type=int, default=0)
        target.add_argument("--max-phases", type=int, default=None)

    serve = smrsub.add_parser(
        "serve",
        help="serve one open-loop workload and report throughput + "
        "request-latency percentiles",
    )
    add_serve_arguments(serve)
    serve.add_argument(
        "--json",
        action="store_true",
        help="print the report as one JSON object (CI digest checks)",
    )

    ssweep = smrsub.add_parser(
        "sweep",
        help="serve campaign cells over load rates x fault scenarios",
    )
    add_serve_arguments(ssweep)
    ssweep.add_argument(
        "--rates",
        default="50,200,800",
        help="comma-separated load axis (default 50,200,800)",
    )
    ssweep.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: every registered "
        "scenario)",
    )
    ssweep.add_argument("--out", default=None, help="results JSONL path")

    campaign = sub.add_parser(
        "campaign", help="declarative scenario sweeps (run/report/list)"
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    csub.add_parser("list", help="list built-in campaigns")

    crun = csub.add_parser("run", help="expand and execute a campaign grid")
    crun.add_argument("spec", help="spec file (.json/.toml) or built-in name")
    crun.add_argument("--workers", type=positive_int, default=1)
    crun.add_argument(
        "--chunk",
        type=positive_int,
        default=None,
        help="runs submitted per worker task (default: auto-sized from the "
        "grid); row contents are identical at any chunk size",
    )
    crun.add_argument("--seed", type=int, default=None, help="override campaign seed")
    crun.add_argument("--out", default=None, help="results JSONL path")
    crun.add_argument("--quiet", action="store_true", help="suppress progress")
    crun.add_argument(
        "--no-report", action="store_true", help="skip the aggregated summary"
    )
    crun.add_argument(
        "--resume",
        action="store_true",
        help="complete an interrupted campaign from its <out>.partial "
        "checkpoint (recorded runs are skipped, not re-executed)",
    )
    crun.add_argument(
        "--stop-after",
        type=positive_int,
        default=None,
        metavar="N",
        help="stop gracefully after N runs this session, leaving the "
        "checkpoint for --resume (exit code 3); used by interrupt testing",
    )
    crun.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="append structured lifecycle events (campaign/chunk/row/"
        "heartbeat) as JSONL to PATH; result rows are byte-identical "
        "with or without it",
    )
    crun.add_argument(
        "--progress",
        action="store_true",
        help="live single-line stderr progress (rows done/total, rows/s, "
        "eta, error counts) instead of the every-10%% prints",
    )
    crun.add_argument(
        "--backend",
        choices=["auto", "batch", "scalar"],
        default=None,
        help="execution backend: auto batches campaign cells of ≥ 4 runs "
        "through the batch kernel, batch forces it on every cell, scalar "
        "forces the per-run oracle (default: the REPRO_BACKEND env var, "
        "else auto); result rows are byte-identical at every backend",
    )

    cplan = csub.add_parser(
        "plan",
        help="print each campaign cell's batch tier (replicate / "
        "columnar-state / columnar / scalar) and why, without executing",
    )
    cplan.add_argument("spec", help="spec file (.json/.toml) or built-in name")

    fuzz = sub.add_parser(
        "fuzz",
        help="adversarial scenario fuzzing (run/replay/shrink)",
    )
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    frun = fsub.add_parser(
        "run",
        help="seeded violation hunt over the scenario space; findings are "
        "shrunk and logged to a replayable JSONL corpus",
    )
    frun.add_argument("--seed", type=int, default=0, help="fuzz seed")
    frun.add_argument(
        "--budget",
        type=positive_int,
        default=100,
        help="candidate indices to walk (a fixed seed+budget is a "
        "deterministic run: the findings file is byte-identical across "
        "reruns and kill/--resume cycles)",
    )
    frun.add_argument(
        "--out", default="findings.jsonl", help="findings JSONL path"
    )
    frun.add_argument(
        "--resume",
        action="store_true",
        help="complete an interrupted fuzz run from its <out>.state sidecar",
    )
    frun.add_argument(
        "--stop-after",
        type=positive_int,
        default=None,
        metavar="N",
        help="stop gracefully after N candidates this session, leaving the "
        "state for --resume (exit code 3); used by interrupt testing",
    )
    frun.add_argument("--quiet", action="store_true", help="suppress progress")
    frun.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict the algorithm pool (default: all deterministic "
        "builders plus class-1/2/3)",
    )
    frun.add_argument(
        "--engines",
        nargs="+",
        choices=["lockstep", "timed"],
        default=None,
        help="restrict the engine pool (default: both)",
    )
    frun.add_argument(
        "--models",
        nargs="+",
        default=None,
        metavar="N,B,F",
        help="explicit (n,b,f) pool, e.g. --models 4,2,0 3,1,1 "
        "(default: sampled from --n-min/--n-max)",
    )
    frun.add_argument(
        "--n-min", type=positive_int, default=3, help="smallest sampled n"
    )
    frun.add_argument(
        "--n-max", type=positive_int, default=9, help="largest sampled n"
    )
    frun.add_argument(
        "--strategies",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict the Byzantine strategy pool",
    )
    frun.add_argument(
        "--over-bound",
        choices=["never", "allow", "only"],
        default="never",
        help="whether models rejected by the Theorem 1 bounds execute on "
        "clamped boundary parameters (allow), are the only cells executed "
        "(only), or classify as skipped (never, the default)",
    )
    frun.add_argument(
        "--mutate-prob",
        type=float,
        default=0.5,
        help="probability a candidate mutates a prior finding instead of "
        "sampling fresh (once the corpus is non-empty)",
    )
    frun.add_argument(
        "--no-shrink",
        action="store_true",
        help="log findings without the delta-debugging minimization pass",
    )
    frun.add_argument(
        "--shrink-attempts",
        type=positive_int,
        default=160,
        help="upper bound on reproduction attempts per shrink",
    )
    frun.add_argument(
        "--fail-on-finding",
        action="store_true",
        help="exit 1 when any finding is recorded (CI in-bounds gate)",
    )

    freplay = fsub.add_parser(
        "replay",
        help="re-execute one corpus finding and check it still reproduces",
    )
    freplay.add_argument("findings", help="path to a findings .jsonl file")
    freplay.add_argument(
        "--index",
        type=int,
        default=None,
        help="finding index to replay (default: the first record)",
    )
    freplay.add_argument(
        "--shrunk",
        action="store_true",
        help="replay the minimized candidate instead of the original",
    )

    fshrink = fsub.add_parser(
        "shrink",
        help="re-shrink one corpus finding and print the minimal candidate",
    )
    fshrink.add_argument("findings", help="path to a findings .jsonl file")
    fshrink.add_argument(
        "--index",
        type=int,
        default=None,
        help="finding index to shrink (default: the first record)",
    )
    fshrink.add_argument(
        "--shrink-attempts",
        type=positive_int,
        default=160,
        help="upper bound on reproduction attempts",
    )

    creport = csub.add_parser("report", help="aggregate a results JSONL file")
    creport.add_argument("results", help="path to a results .jsonl file")
    creport.add_argument(
        "--group-by",
        default=None,
        help="comma-separated row fields (default algorithm,n,b,f,engine,fault)",
    )
    creport.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="join per-run wall durations back from a campaign-run events "
        "sidecar (adds wall-ms columns and the slowest-cell ranking)",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "table1": _cmd_table1,
        "sweep": _cmd_sweep,
        "ben-or": _cmd_ben_or,
        "scenario": _cmd_scenario,
        "profile": _cmd_profile,
        "smr": _cmd_smr,
        "campaign": _cmd_campaign,
        "fuzz": _cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
