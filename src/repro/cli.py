"""Command-line interface: run paper experiments from a shell.

Usage examples::

    python -m repro.cli list
    python -m repro.cli run --algorithm pbft --n 4 --byzantine equivocator
    python -m repro.cli run --algorithm mqb --n 9 --b 2 --byzantine silent
    python -m repro.cli table1
    python -m repro.cli sweep --class 2 --b 1 --n-max 8
    python -m repro.cli ben-or --n 3 --seeds 20
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.algorithms import ALGORITHM_BUILDERS
from repro.analysis.metrics import RunMetrics
from repro.analysis.reporting import format_table
from repro.analysis.resilience import sweep_class
from repro.core.classification import AlgorithmClass
from repro.core.run import STRATEGY_REGISTRY
from repro.core.types import FaultModel


def _cmd_list(args: argparse.Namespace) -> int:
    print("Algorithms:")
    for name in sorted(ALGORITHM_BUILDERS):
        print(f"  {name}")
    print("Byzantine strategies:")
    for name in sorted(STRATEGY_REGISTRY):
        print(f"  {name}")
    return 0


def _build_spec(args: argparse.Namespace):
    builder = ALGORITHM_BUILDERS.get(args.algorithm)
    if builder is None:
        print(
            f"unknown algorithm {args.algorithm!r}; try: "
            f"{', '.join(sorted(ALGORITHM_BUILDERS))}",
            file=sys.stderr,
        )
        return None
    kwargs = {}
    if args.b is not None:
        kwargs["b"] = args.b
    if args.f is not None:
        kwargs["f"] = args.f
    try:
        return builder(args.n, **kwargs)
    except (TypeError, ValueError) as exc:
        print(f"cannot build {args.algorithm}: {exc}", file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    if spec is None:
        return 2
    model = spec.parameters.model
    byzantine = {}
    if args.byzantine:
        if model.b == 0:
            print("model has b = 0; --byzantine ignored", file=sys.stderr)
        else:
            byzantine = {
                model.n - 1 - i: args.byzantine for i in range(model.b)
            }
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }
    outcome = spec.run(values, byzantine=byzantine, max_phases=args.max_phases)
    metrics = RunMetrics.from_outcome(outcome)
    print(f"{spec.name}  [{spec.parameters.describe()}]")
    decided = {pid: d.value for pid, d in sorted(outcome.decisions.items())}
    print(f"  decided     : {decided}")
    print(f"  agreement   : {outcome.agreement_holds}")
    print(f"  termination : {outcome.all_correct_decided}")
    print(f"  phases      : {metrics.phases_to_last_decision}")
    print(f"  rounds      : {metrics.rounds_to_last_decision}")
    print(f"  messages    : {metrics.messages_sent}")
    return 0 if outcome.agreement_holds else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for cls in AlgorithmClass:
        row = cls.row
        rows.append(
            [
                cls.value,
                str(row.flag),
                f"n>{row.n_bound[0]}b+{row.n_bound[1]}f",
                "/".join(row.state),
                row.rounds_per_phase,
                "; ".join(row.examples),
            ]
        )
    print(
        format_table(
            ["class", "FLAG", "n bound", "state", "rounds/phase", "examples"],
            rows,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    cls = AlgorithmClass(args.cls)
    factor, _ = cls.row.n_bound
    n_min = max(args.b + 1, factor * args.b - 1)
    configurations = []
    for n in range(n_min, args.n_max + 1):
        try:
            configurations.append(FaultModel(n, args.b, 0))
        except ValueError:
            continue
    rows = sweep_class(cls, configurations, max_phases=args.max_phases)
    print(
        format_table(
            ["n", "b", "scenario", "admitted", "agreement", "termination", "phases"],
            [
                [r.n, r.b, r.scenario, r.admitted, r.agreement, r.termination, r.phases]
                for r in rows
            ],
        )
    )
    return 0


def _cmd_ben_or(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.algorithms.ben_or import build_ben_or
    from repro.core.randomized import run_randomized_consensus

    spec = build_ben_or(args.n, b=args.b or 0)
    model = spec.parameters.model
    values = {
        pid: (pid + 1) % 2 for pid in range(model.n - (1 if args.b else 0))
    }
    byzantine = {model.n - 1: "equivocator"} if args.b else None
    phases = Counter()
    for seed in range(args.seeds):
        outcome = run_randomized_consensus(
            spec.parameters, values, seed=seed, byzantine=byzantine,
            max_phases=args.max_phases,
        )
        if not outcome.agreement_holds:
            print(f"seed {seed}: AGREEMENT VIOLATED", file=sys.stderr)
            return 1
        key = (
            outcome.phases_to_last_decision
            if outcome.all_correct_decided
            else ">max"
        )
        phases[key] += 1
    print(f"{spec.name} over {args.seeds} seeds (phases to decide):")
    for key in sorted(phases, key=str):
        print(f"  {key!s:>5}: {phases[key]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generic consensus algorithms (DSN 2010) — experiment CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms and strategies")

    run = sub.add_parser("run", help="run one consensus instance")
    run.add_argument("--algorithm", required=True)
    run.add_argument("--n", type=int, required=True)
    run.add_argument("--b", type=int, default=None)
    run.add_argument("--f", type=int, default=None)
    run.add_argument("--byzantine", default=None, help="strategy name")
    run.add_argument("--max-phases", type=int, default=15)

    sub.add_parser("table1", help="print Table 1")

    sweep = sub.add_parser("sweep", help="resilience sweep for one class")
    sweep.add_argument("--class", dest="cls", type=int, required=True, choices=[1, 2, 3])
    sweep.add_argument("--b", type=int, default=1)
    sweep.add_argument("--n-max", type=int, default=8)
    sweep.add_argument("--max-phases", type=int, default=8)

    ben_or = sub.add_parser("ben-or", help="randomized Ben-Or seed study")
    ben_or.add_argument("--n", type=int, default=3)
    ben_or.add_argument("--b", type=int, default=None)
    ben_or.add_argument("--seeds", type=int, default=20)
    ben_or.add_argument("--max-phases", type=int, default=400)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "table1": _cmd_table1,
        "sweep": _cmd_sweep,
        "ben-or": _cmd_ben_or,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
