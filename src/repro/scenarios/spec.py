"""Declarative scenario descriptions: one dialect for every environment.

A :class:`ScenarioSpec` captures everything that distinguishes one execution
environment from another — Byzantine placement and strategy per slot, the
crash script, the communication schedule, and the timed-network conditions —
in plain data.  It is model-agnostic: the same spec compiles onto any
``(n, b, f)`` resilience point and onto **both** timing disciplines (the
lockstep oracle scheduler and the Δ-paced timed scheduler), via
:func:`repro.scenarios.compile.compile_scenario`.

Before this layer the same environments were described in four incompatible
dialects (``FaultSpec``, ``AdversaryScenario``, raw ``DeliveryPolicy`` /
``GoodBadSchedule`` objects, ``NetworkSpec``); all of them now either embed
here or convert losslessly via :meth:`ScenarioSpec.from_legacy`.

Specs round-trip through plain mappings (:meth:`ScenarioSpec.to_mapping` /
:meth:`ScenarioSpec.from_mapping`), so campaigns can load them from JSON or
TOML files, and :meth:`describe_fault` / :meth:`describe_network` emit the
stable coordinate strings campaign seed derivation keys on — for specs
converted from the legacy axes the strings are byte-identical to the old
``FaultSpec.describe()`` / ``NetworkSpec.describe()`` output, so existing
campaign seeds (and therefore rows) are unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.core.types import FaultModel
from repro.eventsim.network import NetworkSpec

#: Communication kinds a scenario may select.
COMM_KINDS = ("reliable", "good-bad", "lossy", "async-prel", "silent")

#: Good/bad schedule shapes for ``kind="good-bad"``.
SCHEDULE_KINDS = ("always", "after", "windows", "alternating", "never")

#: Bad-period behaviours for ``kind="good-bad"``.
BAD_BEHAVIORS = ("drop", "partition", "silence")


@dataclass(frozen=True)
class CommSpec:
    """The communication schedule of a scenario, as plain data.

    ``kind`` selects the delivery regime:

    * ``"reliable"`` — permanently good periods (``Pgood`` always, ``Pcons``
      in selection rounds);
    * ``"good-bad"`` — a good/bad period schedule (``schedule`` + its
      parameters) with a pluggable bad-period behaviour (``bad`` + its
      parameters).  ``schedule="after"`` with ``good_from=r`` is the
      GST-style shape: bad prefix, then permanently good;
    * ``"lossy"`` — unconstrained i.i.d. loss with ``drop_prob`` (no
      predicate holds; safety must survive);
    * ``"async-prel"`` — the randomized-algorithm adversary (``Prel`` only;
      lockstep engine only);
    * ``"silent"`` — nothing is ever delivered to honest processes.

    ``groups`` fixes the partition sides explicitly; ``None`` splits the
    process set into halves at compile time.
    """

    kind: str = "reliable"
    schedule: str = "after"
    good_from: int = 1
    windows: Tuple[Tuple[int, int], ...] = ()
    good_len: int = 1
    bad_len: int = 0
    bad: str = "drop"
    drop_prob: float = 0.5
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in COMM_KINDS:
            raise ValueError(
                f"unknown communication kind {self.kind!r}; known: {COMM_KINDS}"
            )
        if self.schedule not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; known: {SCHEDULE_KINDS}"
            )
        if self.bad not in BAD_BEHAVIORS:
            raise ValueError(
                f"unknown bad behaviour {self.bad!r}; known: {BAD_BEHAVIORS}"
            )
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in [0, 1], got {self.drop_prob}")
        if self.good_from < 1:
            raise ValueError(f"good_from must be ≥ 1, got {self.good_from}")
        # Mapping loaders hand in lists; freeze them so specs stay hashable.
        # An *empty* list must freeze too — an unhashable spec would poison
        # the compilation memo for any equal-looking tuple-built spec.
        if not isinstance(self.windows, tuple):
            object.__setattr__(
                self, "windows", tuple(tuple(w) for w in self.windows)
            )
        if self.groups is not None and not isinstance(self.groups, tuple):
            object.__setattr__(
                self, "groups", tuple(tuple(g) for g in self.groups)
            )

    def describe(self) -> str:
        """A compact, alias-free coordinate string (empty for reliable)."""
        if self.kind == "reliable":
            return ""
        if self.kind == "lossy":
            return f"lossy:{self.drop_prob:g}"
        if self.kind == "async-prel":
            return "prel"
        if self.kind == "silent":
            return "silent-net"
        # good-bad: schedule shape, then the bad behaviour.
        if self.schedule == "after":
            shape = f"gst@{self.good_from}"
        elif self.schedule == "windows":
            shape = "win" + ",".join(f"{a}-{b}" for a, b in self.windows)
        elif self.schedule == "alternating":
            shape = f"alt{self.good_len}g{self.bad_len}b"
        else:
            shape = self.schedule
        if self.bad == "drop":
            behaviour = f"drop{self.drop_prob:g}"
        elif self.bad == "partition":
            sides = (
                "halves"
                if self.groups is None
                else "|".join(",".join(map(str, g)) for g in self.groups)
            )
            behaviour = f"part[{sides}]"
        else:
            behaviour = "silence"
        return f"{shape}:{behaviour}"


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative execution environment.

    * ``byzantine`` — strategy names assigned per slot, starting at process
      ``n − 1`` and walking down (the placement convention every sweep
      already used); the list is cycled when there are more slots than
      names.  ``byzantine_count`` bounds the slots: ``-1`` fills all ``b``.
    * ``crashes`` / ``crash_round`` / ``clean`` — the crash script:
      ``crashes`` processes (``-1`` = all ``f``), ids ``0..k-1``, crash in
      ``crash_round``; ``clean`` selects crash-after-send semantics.
    * ``comm`` — the communication schedule (see :class:`CommSpec`).
    * ``timing`` — timed-engine network conditions (see
      :class:`~repro.eventsim.network.NetworkSpec`).
    * ``max_phases`` — a scenario-suggested horizon (e.g. "GST at round 10
      needs ≥ 18 phases"); ``None`` defers to the caller.
    """

    name: str = "custom"
    byzantine: Tuple[str, ...] = ()
    byzantine_count: int = -1
    crashes: int = 0
    crash_round: int = 1
    clean: bool = True
    comm: CommSpec = field(default_factory=CommSpec)
    timing: NetworkSpec = field(default_factory=NetworkSpec)
    max_phases: Optional[int] = None

    def __post_init__(self) -> None:
        if self.crashes < -1:
            raise ValueError(f"crashes must be ≥ -1, got {self.crashes}")
        if self.crash_round < 1:
            raise ValueError(f"crash_round must be ≥ 1, got {self.crash_round}")
        if self.byzantine_count < -1:
            raise ValueError(
                f"byzantine_count must be ≥ -1, got {self.byzantine_count}"
            )
        if self.byzantine_count > 0 and not self.byzantine:
            raise ValueError("byzantine_count > 0 needs at least one strategy")
        if not isinstance(self.byzantine, tuple):
            object.__setattr__(self, "byzantine", tuple(self.byzantine))

    # ------------------------------------------------------------ resolution

    def byzantine_map(self, model: FaultModel) -> Dict[int, str]:
        """slot → strategy-name placement under ``model`` (pure data).

        Admissibility (``b > 0``, count ≤ ``b``) is checked by the compiler,
        not here.
        """
        if not self.byzantine:
            return {}
        count = model.b if self.byzantine_count == -1 else self.byzantine_count
        return {
            model.n - 1 - i: self.byzantine[i % len(self.byzantine)]
            for i in range(count)
        }

    def crash_count(self, model: FaultModel) -> int:
        """The number of processes this scenario crashes under ``model``."""
        return model.f if self.crashes == -1 else self.crashes

    # ------------------------------------------------------------- describe

    def describe_fault(self) -> str:
        """The fault/communication coordinate string.

        For specs converted from the legacy ``FaultSpec`` axis this is
        byte-identical to ``FaultSpec.describe()`` — the seed-stability
        guarantee campaigns rely on.
        """
        parts = []
        if self.byzantine:
            strategies = ",".join(self.byzantine)
            suffix = (
                "" if self.byzantine_count == -1 else f"×{self.byzantine_count}"
            )
            parts.append(f"byz:{strategies}{suffix}")
        if self.crashes:
            count = "f" if self.crashes == -1 else str(self.crashes)
            mode = "" if self.clean else "!"
            parts.append(f"crash{mode}:{count}@{self.crash_round}")
        comm = self.comm.describe()
        if comm:
            parts.append(comm)
        if self.max_phases is not None:
            parts.append(f"ph:{self.max_phases}")
        return "+".join(parts) or "fault-free"

    def describe_network(self) -> str:
        """The timed-network coordinate string (legacy ``NetworkSpec`` one)."""
        return self.timing.describe()

    def describe(self) -> str:
        return f"{self.describe_fault()} / {self.describe_network()}"

    # -------------------------------------------------------- (de)serialize

    def to_mapping(self) -> Dict[str, object]:
        """A JSON/TOML-friendly mapping (inverse of :meth:`from_mapping`)."""
        data: Dict[str, object] = {
            "name": self.name,
            "byzantine": list(self.byzantine),
            "byzantine_count": self.byzantine_count,
            "crashes": self.crashes,
            "crash_round": self.crash_round,
            "clean": self.clean,
            "comm": asdict(self.comm),
            "timing": asdict(self.timing),
        }
        if self.comm.windows:
            data["comm"]["windows"] = [list(w) for w in self.comm.windows]
        if self.comm.groups is not None:
            data["comm"]["groups"] = [list(g) for g in self.comm.groups]
        if self.max_phases is not None:
            data["max_phases"] = self.max_phases
        return data

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "ScenarioSpec":
        data = dict(mapping)
        unknown = set(data) - {
            "name", "byzantine", "byzantine_count", "crashes", "crash_round",
            "clean", "comm", "timing", "max_phases",
        }
        if unknown:
            raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        for key in ("name", "byzantine_count", "crashes", "crash_round",
                    "clean", "max_phases"):
            if key in data:
                kwargs[key] = data[key]
        if "byzantine" in data:
            kwargs["byzantine"] = tuple(data["byzantine"])
        if "comm" in data:
            kwargs["comm"] = CommSpec(**dict(data["comm"]))
        if "timing" in data:
            kwargs["timing"] = NetworkSpec(**dict(data["timing"]))
        return cls(**kwargs)

    # ------------------------------------------------------------ converters

    @classmethod
    def from_legacy(cls, fault, network: Optional[NetworkSpec] = None) -> "ScenarioSpec":
        """Convert one legacy ``(FaultSpec, NetworkSpec)`` cell losslessly.

        The resulting spec places ``fault.byzantine`` on all ``b`` slots,
        scripts the same crashes, keeps reliable lockstep communication and
        carries ``network`` as the timed conditions — exactly what the
        campaign runner hard-coded before the scenario layer existed.
        """
        return cls(
            name="legacy",
            byzantine=(fault.byzantine,) if fault.byzantine else (),
            crashes=fault.crashes,
            crash_round=fault.crash_round,
            clean=fault.clean,
            timing=network if network is not None else NetworkSpec(),
        )

    def with_timing(self, timing: NetworkSpec) -> "ScenarioSpec":
        """The same scenario under different timed-network conditions."""
        return replace(self, timing=timing)


def split_values(model: FaultModel, byzantine: Mapping[int, object],
                 split: bool = True) -> Dict[int, str]:
    """The standard honest proposals (``v0``/``v1`` split, or uniform)."""
    return {
        pid: (f"v{pid % 2}" if split else "v")
        for pid in model.processes
        if pid not in byzantine
    }
