"""Scenario compilation: one spec onto both timing disciplines.

:func:`compile_scenario` turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into the three concrete objects
an execution needs — the Byzantine placement map, the crash schedule, and a
ready :class:`~repro.engine.scheduler.RoundScheduler` — for either engine:

* ``engine="lockstep"`` — the communication schedule becomes a
  :class:`~repro.rounds.policies.DeliveryPolicy` (oracle predicates);
* ``engine="timed"`` — the timing spec builds a
  :class:`~repro.eventsim.network.PartialSynchronyNetwork` and the
  communication schedule becomes a per-message
  :data:`~repro.engine.scheduler.DeliveryFilter` on the
  :class:`~repro.engine.scheduler.TimedScheduler`, so partitions, loss
  windows and GST prefixes run under Δ-paced deadline delivery too.

Compilation pre-resolves per-round delivery behaviour: good/bad schedule
lookups are memoized per round number and partition masks are flattened to
one precomputed edge set, so the ``observe="metrics"`` hot path pays no
repeated predicate evaluation inside the round loop.

A scenario a configuration cannot host raises :class:`ScenarioInapplicable`
(a ``ValueError``): Byzantine placement with ``b = 0``, more crashes than
``f``, or ``Prel``-only delivery on the timed engine.  The campaign runner
maps it to an ``inapplicable`` row instead of an error.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.types import FaultModel, ProcessId, RoundInfo
from repro.engine.scheduler import (
    DeliveryFilter,
    LockstepScheduler,
    RoundScheduler,
    TimedScheduler,
)
from repro.eventsim.network import PartialSynchronyNetwork
from repro.faults.crash import CrashEvent, CrashSchedule
from repro.rounds.base import DeliveryMatrix, OutboundMatrix, RunContext
from repro.rounds.policies import (
    AsyncPrelPolicy,
    DeliveryPolicy,
    GoodBadPolicy,
    LossyPolicy,
    ReliablePolicy,
    SilentPolicy,
    silent_behavior,
)
from repro.rounds.schedule import GoodBadSchedule
from repro.scenarios.spec import CommSpec, ScenarioSpec
from repro.utils.memo import cached_outcome

#: Engines a scenario may compile onto.
ENGINES = ("lockstep", "timed")

#: A seed, a ready RNG, or nothing (seed 0).
RngLike = Union[int, random.Random, None]


class ScenarioInapplicable(ValueError):
    """This configuration (model / engine) cannot host the scenario."""


def _coerce_rng(rng: RngLike) -> Tuple[int, random.Random]:
    """Normalize to ``(network_seed, policy_rng)``.

    Campaigns pass the per-run derived seed (an ``int``), which seeds both
    the lockstep policy stream and the timed network identically to the
    pre-scenario runner.  A ready :class:`random.Random` is honoured as the
    policy stream, with the network seed drawn from it.
    """
    if rng is None:
        return 0, random.Random(0)
    if isinstance(rng, random.Random):
        return rng.getrandbits(63), rng
    seed = int(rng)
    return seed, random.Random(seed)


# ----------------------------------------------------------- schedule memo


#: Seed-independent compilation artifacts, memoized per worker process: one
#: campaign typically re-compiles the same few dozen (spec, model, engine)
#: cells thousands of times — every repetition and every derived-seed run
#: shares the same schedule object, partition edge set, Byzantine placement
#: and crash schedule (all immutable once built, so sharing is safe).
_TEMPLATE_MEMO: Dict[Tuple[ScenarioSpec, FaultModel], Tuple[bool, object]] = {}


@functools.cache
def _memoized_schedule(comm: CommSpec) -> GoodBadSchedule:
    """The good/bad schedule of ``comm`` with per-round lookups memoized.

    Round structures repeat the same round numbers across thousands of
    campaign runs of one process; windows/alternating predicates otherwise
    re-scan their window lists every round.  The schedule object itself is
    cached per ``comm`` spec, so those per-round memo hits accumulate
    across every run of a campaign cell instead of starting cold each run.
    """
    if comm.schedule == "after":
        base = GoodBadSchedule.good_after(comm.good_from)
    elif comm.schedule == "windows":
        base = GoodBadSchedule.windows(comm.windows)
    elif comm.schedule == "alternating":
        base = GoodBadSchedule.alternating(comm.good_len, comm.bad_len)
    elif comm.schedule == "never":
        base = GoodBadSchedule.never_good()
    else:
        base = GoodBadSchedule.always_good()

    memo: Dict[int, bool] = {}

    def is_good(round_number: int) -> bool:
        cached = memo.get(round_number)
        if cached is None:
            memo[round_number] = cached = base.is_good(round_number)
        return cached

    return GoodBadSchedule(is_good, base.description)


def _partition_groups(
    comm: CommSpec, model: FaultModel
) -> Tuple[Tuple[ProcessId, ...], ...]:
    """The partition sides: explicit groups, or the canonical halves split."""
    if comm.groups is not None:
        return comm.groups
    half = model.n // 2
    return (tuple(range(half)), tuple(range(half, model.n)))


@functools.cache
def _partition_edges(
    groups: Tuple[Tuple[ProcessId, ...], ...]
) -> frozenset:
    """Flatten the group predicate to one (sender, dest) membership set."""
    edges = set()
    for group in groups:
        for sender in group:
            for dest in group:
                edges.add((sender, dest))
    return frozenset(edges)


def _partition_behavior_fast(edges: frozenset):
    """Same delivery as ``partition_behavior`` with O(1) edge lookups."""

    def behave(
        info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        matrix: DeliveryMatrix = {}
        byzantine = ctx.byzantine
        for sender, messages in outbound.items():
            for dest, payload in messages.items():
                if (sender, dest) in edges or dest in byzantine:
                    matrix.setdefault(dest, {})[sender] = payload
        return matrix

    # Only omits edges, never injects: the wrapping GoodBadPolicy may
    # report drops as sent − delivered without the scheduler's rescan.
    behave.exact_subset = True
    return behave


# ------------------------------------------------------- lockstep policies


def _lockstep_policy(
    comm: CommSpec, model: FaultModel, rng: random.Random
) -> DeliveryPolicy:
    if comm.kind == "reliable":
        return ReliablePolicy()
    if comm.kind == "lossy":
        return LossyPolicy(rng, comm.drop_prob)
    if comm.kind == "async-prel":
        return AsyncPrelPolicy(rng)
    if comm.kind == "silent":
        return SilentPolicy()
    schedule = _memoized_schedule(comm)
    if comm.bad == "partition":
        behaviour = _partition_behavior_fast(
            _partition_edges(_partition_groups(comm, model))
        )
    elif comm.bad == "silence":
        behaviour = silent_behavior()
    else:
        behaviour = None  # GoodBadPolicy owns the rng-driven drop behaviour.
    return GoodBadPolicy(
        schedule, bad_behavior=behaviour, rng=rng, drop_prob=comm.drop_prob
    )


# --------------------------------------------------------- timed filters


def _timed_filter(
    comm: CommSpec, model: FaultModel, rng: random.Random
) -> Optional[DeliveryFilter]:
    """The per-message admission test hosting ``comm`` on the timed engine.

    Byzantine receivers are always admitted (the adversary has maximal
    information, as in every lockstep behaviour); everything else follows
    the same schedule/behaviour semantics as the lockstep policy, applied
    before latency sampling.
    """
    if comm.kind == "reliable":
        return None
    if comm.kind == "async-prel":
        raise ScenarioInapplicable(
            "Prel-only delivery needs the per-receiver subset oracle; "
            "it runs on the lockstep engine only"
        )
    if comm.kind == "lossy":
        drop_prob = comm.drop_prob

        def lossy(info, sender, dest, ctx):
            return dest in ctx.byzantine or rng.random() >= drop_prob

        return lossy
    if comm.kind == "silent":

        def silent(info, sender, dest, ctx):
            return dest in ctx.byzantine

        return silent

    schedule = _memoized_schedule(comm)
    is_good = schedule.is_good
    if comm.bad == "partition":
        edges = _partition_edges(_partition_groups(comm, model))

        def bad_edge(info, sender, dest, ctx):
            return (sender, dest) in edges or dest in ctx.byzantine

    elif comm.bad == "silence":

        def bad_edge(info, sender, dest, ctx):
            return dest in ctx.byzantine

    else:
        drop_prob = comm.drop_prob

        def bad_edge(info, sender, dest, ctx):
            return dest in ctx.byzantine or rng.random() >= drop_prob

    def good_bad(info, sender, dest, ctx):
        return is_good(info.number) or bad_edge(info, sender, dest, ctx)

    return good_bad


# ------------------------------------------------------------- compilation


@dataclass
class CompiledScenario:
    """A scenario resolved against one model and one timing discipline."""

    spec: ScenarioSpec
    model: FaultModel
    engine: str
    #: pid → strategy name (resolved placement; at most ``b`` entries).
    byzantine: Dict[ProcessId, str]
    crash_schedule: Optional[CrashSchedule]
    scheduler: RoundScheduler

    def honest_values(self, split: bool = True) -> Dict[ProcessId, str]:
        """Standard proposals for the scenario's honest processes."""
        from repro.scenarios.spec import split_values

        return split_values(self.model, self.byzantine, split)

    def max_phases(self, default: int = 15) -> int:
        """The scenario-suggested horizon, or ``default``."""
        suggested = self.spec.max_phases
        return default if suggested is None else suggested


def _resolve_byzantine(
    spec: ScenarioSpec, model: FaultModel
) -> Dict[ProcessId, str]:
    if not spec.byzantine:
        return {}
    if model.b == 0:
        raise ScenarioInapplicable("byzantine fault script but model has b = 0")
    count = (
        model.b if spec.byzantine_count == -1 else spec.byzantine_count
    )
    if count > model.b:
        raise ScenarioInapplicable(
            f"scenario places {count} Byzantine processes but model has "
            f"b = {model.b}"
        )
    return spec.byzantine_map(model)


def _resolve_crashes(
    spec: ScenarioSpec, model: FaultModel
) -> Optional[CrashSchedule]:
    count = spec.crash_count(model)
    if not count:
        return None
    if count > model.f:
        raise ScenarioInapplicable(
            f"fault script crashes {count} > f = {model.f} processes"
        )
    deliver = None if spec.clean else frozenset()
    return CrashSchedule(
        model,
        [CrashEvent(pid, spec.crash_round, deliver) for pid in range(count)],
    )


def _scenario_template(
    spec: ScenarioSpec, model: FaultModel
) -> Tuple[Dict[ProcessId, str], Optional[CrashSchedule]]:
    """The seed-independent half of compilation, memoized per process.

    Byzantine placement and the crash schedule depend only on
    ``(spec, model)``; campaign workers re-compile the same cell once per
    derived seed, so both — including a :class:`ScenarioInapplicable`
    verdict — are computed once and replayed.  The placement dict is
    copied per call (callers receive it as mutable state); the crash
    schedule is immutable after construction and shared.
    """
    byzantine, crash_schedule = cached_outcome(
        _TEMPLATE_MEMO,
        (spec, model),
        lambda: (_resolve_byzantine(spec, model), _resolve_crashes(spec, model)),
        cache_exceptions=(ScenarioInapplicable,),
    )
    return dict(byzantine), crash_schedule


def compile_scenario(
    spec: ScenarioSpec,
    model: FaultModel,
    engine: str = "lockstep",
    rng: RngLike = None,
    *,
    network: Optional[PartialSynchronyNetwork] = None,
    policy_rng: Optional[random.Random] = None,
) -> CompiledScenario:
    """Resolve ``spec`` against ``model`` for one timing discipline.

    ``rng`` is the per-run randomness: an ``int`` seed (what campaigns
    pass — it also seeds the timed network, exactly as the pre-scenario
    runner did), a ready :class:`random.Random`, or ``None`` for seed 0.
    ``network`` overrides the timing spec with a caller-built network;
    ``policy_rng`` overrides the policy/filter stream (the batch backend
    passes a block-capable stream seeded identically to the one
    ``_coerce_rng`` would build, keeping draw order byte-compatible).

    Raises :class:`ScenarioInapplicable` when the configuration cannot host
    the scenario; any other spec inconsistency raises :class:`ValueError`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    seed, coerced_rng = _coerce_rng(rng)
    if policy_rng is None:
        policy_rng = coerced_rng
    byzantine, crash_schedule = _scenario_template(spec, model)
    if engine == "lockstep":
        scheduler: RoundScheduler = LockstepScheduler(
            _lockstep_policy(spec.comm, model, policy_rng)
        )
    else:
        delivery_filter = _timed_filter(spec.comm, model, policy_rng)
        scheduler = TimedScheduler(
            network if network is not None else spec.timing.build(seed),
            round_duration=spec.timing.round_duration,
            delivery_filter=delivery_filter,
        )
    return CompiledScenario(
        spec=spec,
        model=model,
        engine=engine,
        byzantine=byzantine,
        crash_schedule=crash_schedule,
        scheduler=scheduler,
    )


def run_scenario(
    spec: Union[str, ScenarioSpec],
    parameters,
    *,
    engine: str = "lockstep",
    rng: RngLike = None,
    initial_values=None,
    config=None,
    observe: str = "full",
    max_phases: Optional[int] = None,
    network: Optional[PartialSynchronyNetwork] = None,
    telemetry=None,
):
    """Compile ``spec`` (a name or a spec) and run one instance through the
    unified kernel, returning the engine :class:`~repro.engine.Outcome`.

    ``observe="profile"`` (or an explicit ``telemetry`` registry) wall-times
    the run's phases; the registry comes back as ``Outcome.telemetry``."""
    from repro.engine.assembly import build_instance
    from repro.engine.kernel import run_instance

    if isinstance(spec, str):
        from repro.scenarios.registry import get_scenario

        spec = get_scenario(spec)
    compiled = compile_scenario(
        spec, parameters.model, engine, rng, network=network
    )
    values = (
        initial_values
        if initial_values is not None
        else compiled.honest_values()
    )
    instance = build_instance(
        parameters, values, config=config, byzantine=compiled.byzantine
    )
    return run_instance(
        instance,
        compiled.scheduler,
        max_phases=compiled.max_phases() if max_phases is None else max_phases,
        observe=observe,
        crash_schedule=compiled.crash_schedule,
        telemetry=telemetry,
    )
