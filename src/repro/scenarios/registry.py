"""Named scenario presets: the catalogue every layer shares.

Each entry is a model-agnostic :class:`~repro.scenarios.spec.ScenarioSpec`
that compiles onto any resilience point and onto both engines (where
admissible).  The adversary presets of :mod:`repro.faults.adversary`, the
``gauntlet`` campaign, the CLI (``repro scenario list|run``) and the benches
all resolve names through this one registry.

==================  ==========================================================
preset              description
==================  ==========================================================
``fault-free``      no faults, permanently good periods — the baseline cell
``worst_case``      max-b Byzantine (strongest strategy mix), permanent
                    synchrony — attacks must be beaten in one phase
``partition_heal``  network split in halves during a bad prefix, healing at
                    round 7, one equivocator riding the partition
``async_then_sync`` random 50% loss until a GST-style round 10, one
                    adaptive liar
``silent_minority`` max-b silent Byzantine (pure withholding)
``crash_storm``     benign: all f crashes land in round 1, messages lost
``lossy_channel``   30% i.i.d. loss in every round (no predicate holds;
                    safety must survive)
``flaky_gst``       alternating 2 good / 1 bad rounds with 50% bad-period
                    loss — repeated short bad periods instead of one prefix
==================  ==========================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import CommSpec, ScenarioSpec

#: All registered scenarios, keyed by name.
SCENARIO_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry under its own name."""
    if not replace and spec.name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIO_REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_REGISTRY)}"
        ) from None


def list_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    return [SCENARIO_REGISTRY[name] for name in sorted(SCENARIO_REGISTRY)]


register_scenario(ScenarioSpec(name="fault-free"))

register_scenario(
    ScenarioSpec(
        name="worst_case",
        byzantine=(
            "equivocator", "high-ts-liar", "fake-history-liar", "adaptive-liar",
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="partition_heal",
        byzantine=("equivocator",),
        byzantine_count=1,
        comm=CommSpec(
            kind="good-bad", schedule="after", good_from=7, bad="partition"
        ),
        max_phases=15,
    )
)

register_scenario(
    ScenarioSpec(
        name="async_then_sync",
        byzantine=("adaptive-liar",),
        byzantine_count=1,
        comm=CommSpec(
            kind="good-bad", schedule="after", good_from=10, bad="drop",
            drop_prob=0.5,
        ),
        max_phases=18,
    )
)

register_scenario(
    ScenarioSpec(name="silent_minority", byzantine=("silent",))
)

register_scenario(
    ScenarioSpec(name="crash_storm", crashes=-1, crash_round=1, clean=False)
)

register_scenario(
    ScenarioSpec(
        name="lossy_channel",
        comm=CommSpec(kind="lossy", drop_prob=0.3),
        max_phases=18,
    )
)

register_scenario(
    ScenarioSpec(
        name="flaky_gst",
        comm=CommSpec(
            kind="good-bad", schedule="alternating", good_len=2, bad_len=1,
            bad="drop", drop_prob=0.5,
        ),
        max_phases=18,
    )
)
