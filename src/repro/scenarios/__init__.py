"""Declarative scenarios: one spec language compiled onto both schedulers.

A :class:`ScenarioSpec` describes an execution environment — Byzantine
placement and strategy per slot, a crash script, the communication schedule
(reliable / good-bad with pluggable bad behaviour / partition / i.i.d. loss
/ silence / GST) and timed-network conditions — as plain, model-agnostic
data.  :func:`compile_scenario` resolves it against one ``(n, b, f)`` model
and one timing discipline into the Byzantine map, crash schedule and
:class:`~repro.engine.scheduler.RoundScheduler` the unified kernel runs::

    from repro.scenarios import compile_scenario, get_scenario, run_scenario

    outcome = run_scenario("partition_heal", params, engine="timed", rng=7)
    assert outcome.agreement_holds

Named presets live in :data:`SCENARIO_REGISTRY`; the adversary presets of
:mod:`repro.faults.adversary`, the campaign ``scenarios`` axis, the
``gauntlet`` campaign and the ``repro scenario`` CLI all resolve through
this one catalogue.
"""

from repro.scenarios.compile import (
    CompiledScenario,
    ScenarioInapplicable,
    compile_scenario,
    run_scenario,
)
from repro.scenarios.registry import (
    SCENARIO_REGISTRY,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.spec import CommSpec, NetworkSpec, ScenarioSpec, split_values

__all__ = [
    "CommSpec",
    "CompiledScenario",
    "NetworkSpec",
    "SCENARIO_REGISTRY",
    "ScenarioInapplicable",
    "ScenarioSpec",
    "compile_scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "split_values",
]
