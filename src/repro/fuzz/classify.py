"""Execute one fuzz candidate and classify the outcome.

:func:`execute_candidate` mirrors the campaign runner's
:func:`~repro.campaigns.runner.execute_run` — same kernel, same
``observe="metrics"`` hot path, never raises — with one twist: when the
algorithm's resilience bound rejects the candidate's model and the caller
opted into ``over_bound`` execution, the cell runs anyway on *boundary
parameters* (the algorithm's Table-1 class at a ``TD`` clamped into the
termination bound but below the agreement bound, built through
:meth:`~repro.core.parameters.ConsensusParameters.unchecked`).  That is
exactly where the paper predicts counterexamples, and finding them is the
fuzzer's positive control.

:func:`classify_candidate` turns the row into a :class:`Verdict`:

* ``"safety"`` — the invariant report shows agreement, validity or
  unanimity violated;
* ``"liveness"`` — termination failed *and* the candidate is
  liveness-eligible (eventually-good communication, post-GST delivery
  within the round, a budget covering the bad prefix, no randomized coin)
  — everything else stalls legitimately and is not a finding;
* ``"error"`` — the engine raised, which for in-bounds cells is always a
  bug worth a corpus entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.campaigns.runner import (
    STATUS_ERROR,
    STATUS_INADMISSIBLE,
    STATUS_INAPPLICABLE,
    STATUS_OK,
    _describe_error,
)
from repro.campaigns.spec import derive_seed, resolve_algorithm
from repro.core.classification import AlgorithmClass
from repro.core.parameters import (
    ConsensusParameters,
    GenericConsensusConfig,
    ParameterError,
)
from repro.core.selector import AllProcessesSelector
from repro.core.types import FaultModel
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_METRICS, run_instance
from repro.fuzz.space import FuzzCandidate, suggest_phases
from repro.scenarios.compile import ScenarioInapplicable, compile_scenario
from repro.scenarios.spec import split_values

#: Over-bound execution modes: ``never`` records bound rejections as
#: inadmissible (the campaign semantics), ``allow`` executes them on
#: boundary parameters, ``only`` additionally skips in-bounds cells (the
#: CI positive-control job uses it to spend its whole budget at the
#: boundary).
OVER_BOUND_MODES = ("never", "allow", "only")

#: Which Table-1 class hosts each algorithm's boundary construction.
#: ``ben-or`` is absent on purpose: its randomized coin has no
#: deterministic boundary cell.
BOUNDARY_CLASSES: Dict[str, AlgorithmClass] = {
    "one-third-rule": AlgorithmClass.CLASS_1,
    "fab-paxos": AlgorithmClass.CLASS_1,
    "paxos": AlgorithmClass.CLASS_2,
    "chandra-toueg": AlgorithmClass.CLASS_2,
    "mqb": AlgorithmClass.CLASS_2,
    "pbft": AlgorithmClass.CLASS_3,
    "class-1": AlgorithmClass.CLASS_1,
    "class-2": AlgorithmClass.CLASS_2,
    "class-3": AlgorithmClass.CLASS_3,
}

#: Statuses (beyond the campaign four) a candidate row may carry.
STATUS_SKIPPED = "skipped"

#: Finding kinds, most severe first.
FINDING_KINDS = ("safety", "liveness", "error")


def candidate_seed(fuzz_seed: int, candidate: FuzzCandidate) -> int:
    """The candidate's run seed — content-derived, not position-derived.

    Shrunk, mutated and replayed candidates each get the seed their own
    coordinates imply, so a finding reproduces from its corpus record alone
    (plus the fuzz seed), independent of search history.
    """
    return derive_seed(fuzz_seed, f"fuzz|{candidate.key()}")


def boundary_parameters(
    name: str, model: FaultModel
) -> Tuple[ConsensusParameters, GenericConsensusConfig]:
    """Deliberately-over-bound parameters for ``name`` at ``model``.

    ``TD`` is the class's minimal agreement-safe threshold clamped into
    ``[1, n − b − f]``: termination stays feasible (the run can decide)
    while the agreement bound is violated whenever the model is outside
    the class's ``n`` bound — the exact regime Theorem 1 stops protecting.
    """
    cls = BOUNDARY_CLASSES.get(name)
    if cls is None:
        raise ParameterError(f"no boundary construction for {name!r}")
    td = max(1, min(cls.min_threshold(model), model.max_decision_threshold))
    return (
        ConsensusParameters.unchecked(
            model, td, cls.flag, cls.make_flv(model, td),
            AllProcessesSelector(model),
        ),
        GenericConsensusConfig(),
    )


def _base_row(candidate: FuzzCandidate, seed: int) -> Dict[str, object]:
    return {
        "algorithm": candidate.algorithm,
        "n": candidate.n,
        "b": candidate.b,
        "f": candidate.f,
        "engine": candidate.engine,
        "fault": candidate.scenario.describe_fault(),
        "network": candidate.scenario.describe_network(),
        "max_phases": candidate.max_phases,
        "seed": seed,
        "status": STATUS_OK,
        "over_bound": False,
        "randomized": False,
        "agreement": None,
        "validity": None,
        "unanimity": None,
        "termination": None,
        "decided": None,
        "rounds": None,
        "error": None,
    }


def execute_candidate(
    candidate: FuzzCandidate, seed: int, *, over_bound: str = "never"
) -> Dict[str, object]:
    """One candidate through the metrics-mode kernel (never raises)."""
    if over_bound not in OVER_BOUND_MODES:
        raise ValueError(
            f"unknown over_bound mode {over_bound!r}; known: {OVER_BOUND_MODES}"
        )
    row = _base_row(candidate, seed)
    try:
        model = FaultModel(candidate.n, candidate.b, candidate.f)
    except ValueError as exc:
        row.update(status=STATUS_INADMISSIBLE, error=str(exc))
        return row
    try:
        parameters, config = resolve_algorithm(candidate.algorithm, model)
        hosted = parameters.model
        if hosted.b < model.b or hosted.f < model.f:
            raise ParameterError(
                f"{candidate.algorithm} hosts (b={hosted.b}, f={hosted.f}), "
                f"candidate wants (b={model.b}, f={model.f})"
            )
        if over_bound == "only":
            row.update(
                status=STATUS_SKIPPED,
                error="in-bounds cell skipped (over_bound='only')",
            )
            return row
    except (ValueError, KeyError) as exc:
        # The resilience bound (or the builder's fault envelope) rejects
        # this model: inadmissible under campaign semantics, the boundary
        # regime under over-bound search.
        if over_bound == "never" or candidate.algorithm not in BOUNDARY_CLASSES:
            row.update(status=STATUS_INADMISSIBLE, error=str(exc))
            return row
        try:
            parameters, config = boundary_parameters(candidate.algorithm, model)
        except ValueError as exc2:
            row.update(status=STATUS_INADMISSIBLE, error=str(exc2))
            return row
        row["over_bound"] = True
    row["randomized"] = config.coin is not None

    try:
        compiled = compile_scenario(
            candidate.scenario, model, candidate.engine, seed
        )
    except ScenarioInapplicable as exc:
        row.update(status=STATUS_INAPPLICABLE, error=str(exc))
        return row
    except Exception as exc:
        row.update(status=STATUS_ERROR, error=_describe_error(exc))
        return row

    initial_values = split_values(model, compiled.byzantine)
    max_phases = max(
        candidate.max_phases, compiled.max_phases(candidate.max_phases)
    )
    try:
        instance = build_instance(
            parameters,
            initial_values,
            config=config,
            byzantine=compiled.byzantine,
        )
        outcome = run_instance(
            instance,
            compiled.scheduler,
            max_phases=max_phases,
            observe=OBSERVE_METRICS,
            crash_schedule=compiled.crash_schedule,
        )
        row.update(
            decided=len(outcome.decisions),
            rounds=outcome.rounds_executed,
            **outcome.invariant_report(),
        )
    except Exception as exc:
        row.update(status=STATUS_ERROR, error=_describe_error(exc))
    return row


def liveness_eligible(candidate: FuzzCandidate, *, randomized: bool) -> bool:
    """Would a stalled run under this candidate be a *finding*?

    Only scenarios whose communication is eventually good, whose timed
    network delivers within the round after GST, and whose phase budget
    covers the bad prefix make a missing decision evidence of a liveness
    violation.  Randomized algorithms are never eligible: their
    termination is probabilistic, so a fixed horizon can stall honestly.
    """
    if randomized:
        return False
    scenario = candidate.scenario
    comm = scenario.comm
    if comm.kind == "good-bad":
        if comm.schedule not in ("after", "always"):
            return False
    elif comm.kind != "reliable":
        return False
    if candidate.engine == "timed":
        timing = scenario.timing
        if timing.delta > timing.round_duration:
            return False
    return candidate.max_phases >= suggest_phases(
        comm, scenario.timing, candidate.engine
    )


@dataclass(frozen=True)
class Verdict:
    """The classified outcome of one candidate execution."""

    status: str
    kind: Optional[str]  # a FINDING_KINDS entry, or None
    violated: Tuple[str, ...]  # which safety properties failed
    row: Dict[str, object]

    @property
    def is_finding(self) -> bool:
        return self.kind is not None


def classify_row(
    candidate: FuzzCandidate, row: Dict[str, object]
) -> Verdict:
    """Classify an executed candidate row (pure, deterministic)."""
    status = str(row["status"])
    if status == STATUS_ERROR:
        return Verdict(status=status, kind="error", violated=(), row=row)
    if status != STATUS_OK:
        return Verdict(status=status, kind=None, violated=(), row=row)
    violated = tuple(
        prop
        for prop in ("agreement", "validity", "unanimity")
        if row.get(prop) is False
    )
    if violated:
        return Verdict(status=status, kind="safety", violated=violated, row=row)
    if row.get("termination") is False and liveness_eligible(
        candidate, randomized=bool(row.get("randomized"))
    ):
        return Verdict(status=status, kind="liveness", violated=(), row=row)
    return Verdict(status=status, kind=None, violated=(), row=row)


def classify_candidate(
    candidate: FuzzCandidate, seed: int, *, over_bound: str = "never"
) -> Verdict:
    """Execute and classify one candidate (the fuzz loop's inner step)."""
    return classify_row(
        candidate, execute_candidate(candidate, seed, over_bound=over_bound)
    )
