"""Delta-debugging shrinker: reduce a finding to a minimal failing spec.

Greedy first-improvement descent over a fixed, deterministic proposal
order: at each step the most aggressive simplification that still
*reproduces the finding* (same kind, under the candidate's own
content-derived seed) is accepted and the descent restarts from the top.
No randomness is consumed — for a fixed fuzz seed the shrink trace is a
pure function of the starting candidate, which is what the determinism
acceptance criterion requires.

Proposals, roughly most-aggressive first:

* drop the timed engine for the lockstep oracle;
* remove / reduce the Byzantine placement (no slots → one slot → one
  fewer), simplify each strategy toward ``silent``;
* remove / simplify the crash script;
* collapse the communication schedule toward reliable, then toward a
  single GST-style ``after`` clause with deterministic loss;
* reset timed-network conditions to the defaults;
* shrink the model (``n − 1``, ``b − 1``, ``f − 1``).

Every accepted step is a *constructible* candidate (dataclass validation
re-runs on every proposal) that still exhibits the finding — the shrinker
invariants the test suite checks.  The phase budget is never reduced:
shrinking the horizon would manufacture liveness "findings" out of thin
air.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from repro.eventsim.network import NetworkSpec
from repro.fuzz.classify import candidate_seed, classify_candidate
from repro.fuzz.space import FuzzCandidate
from repro.scenarios.spec import CommSpec, ScenarioSpec

#: Strategy simplicity order: a slot may only move leftward.
STRATEGY_ORDER = (
    "silent",
    "noise",
    "vote-flipper",
    "equivocator",
    "high-ts-liar",
    "fake-history-liar",
    "adaptive-liar",
)

#: Upper bound on reproduction attempts per shrink (each attempt is one
#: full candidate execution; the greedy restart loop converges long before
#: this on every known finding — it is a runaway guard, not a tuning knob).
DEFAULT_MAX_ATTEMPTS = 160


@dataclass(frozen=True)
class ShrinkResult:
    """The outcome of one shrink: final candidate plus the accepted trace."""

    candidate: FuzzCandidate
    ops: Tuple[str, ...]
    attempts: int
    #: Candidate after each accepted op (same length as ``ops``).
    steps: Tuple[FuzzCandidate, ...]


def _effective_byz(cand: FuzzCandidate) -> int:
    if not cand.scenario.byzantine:
        return 0
    count = cand.scenario.byzantine_count
    return cand.b if count == -1 else count


def _scenario_proposals(
    cand: FuzzCandidate,
) -> Iterator[Tuple[str, ScenarioSpec]]:
    s = cand.scenario
    if s.byzantine:
        yield "byz:none", replace(s, byzantine=(), byzantine_count=-1)
        effective = _effective_byz(cand)
        if effective > 1:
            yield "byz:count-1", replace(s, byzantine_count=1)
            yield f"byz:count-{effective - 1}", replace(
                s, byzantine_count=effective - 1
            )
        if len(s.byzantine) > 1:
            yield "byz:drop-slot", replace(s, byzantine=s.byzantine[:-1])
        for slot, name in enumerate(s.byzantine):
            rank = (
                STRATEGY_ORDER.index(name) if name in STRATEGY_ORDER else None
            )
            for simpler in STRATEGY_ORDER[: rank if rank is not None else 0]:
                yield f"byz:{name}->{simpler}", replace(
                    s,
                    byzantine=(
                        s.byzantine[:slot] + (simpler,) + s.byzantine[slot + 1:]
                    ),
                )
    if s.crashes:
        yield "crash:none", replace(s, crashes=0, crash_round=1, clean=True)
        effective = cand.f if s.crashes == -1 else s.crashes
        if effective > 1:
            yield "crash:1", replace(s, crashes=1)
        if not s.clean:
            yield "crash:clean", replace(s, clean=True)
        if s.crash_round > 1:
            yield "crash:round-1", replace(s, crash_round=1)
    if s.comm != CommSpec():
        yield "comm:reliable", replace(s, comm=CommSpec())
        comm = s.comm
        if comm.kind == "good-bad":
            if comm.schedule != "after":
                # A single GST-style clause is the canonical minimal shape.
                yield "comm:gst-clause", replace(
                    s,
                    comm=replace(
                        comm,
                        schedule="after",
                        good_from=2,
                        windows=(),
                        good_len=1,
                        bad_len=0,
                    ),
                )
            elif comm.good_from > 1:
                yield "comm:good-from-half", replace(
                    s, comm=replace(comm, good_from=max(1, comm.good_from // 2))
                )
            if comm.bad == "partition" and comm.groups is not None:
                yield "comm:halves", replace(s, comm=replace(comm, groups=None))
            if comm.bad == "drop" and comm.drop_prob != 1.0:
                yield "comm:drop-1", replace(
                    s, comm=replace(comm, drop_prob=1.0)
                )
        elif comm.kind == "lossy" and comm.drop_prob != 1.0:
            yield "comm:drop-1", replace(s, comm=replace(comm, drop_prob=1.0))
    # Offered on both engines: lockstep ignores timing, so resetting it is
    # a free spec simplification there (and a real one on the timed engine).
    if s.timing != NetworkSpec():
        yield "timing:default", replace(s, timing=NetworkSpec())


def _proposals(cand: FuzzCandidate) -> Iterator[Tuple[str, FuzzCandidate]]:
    if cand.engine == "timed":
        yield "engine:lockstep", replace(cand, engine="lockstep")
    for name, scenario in _scenario_proposals(cand):
        yield name, replace(cand, scenario=scenario)
    if cand.n > 1 and cand.b + cand.f < cand.n - 1:
        yield "model:n-1", replace(cand, n=cand.n - 1)
    if cand.b > 0:
        yield "model:b-1", replace(cand, b=cand.b - 1)
    if cand.f > 0:
        yield "model:f-1", replace(cand, f=cand.f - 1)


def shrink_candidate(
    candidate: FuzzCandidate,
    kind: str,
    *,
    fuzz_seed: int,
    over_bound: str = "never",
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ShrinkResult:
    """Greedily minimize ``candidate`` while the finding ``kind`` persists.

    ``over_bound`` must match the mode the finding was discovered under —
    it decides whether bound-rejected models execute on boundary
    parameters or classify as (non-reproducing) inadmissible rows.
    """
    from repro.fuzz.classify import FINDING_KINDS

    if kind not in FINDING_KINDS:
        raise ValueError(
            f"can only shrink a finding kind {FINDING_KINDS}, got {kind!r}"
        )
    ops: list = []
    steps: list = []
    attempts = 0

    def reproduces(proposal: FuzzCandidate) -> bool:
        verdict = classify_candidate(
            proposal,
            candidate_seed(fuzz_seed, proposal),
            over_bound=over_bound,
        )
        return verdict.kind == kind

    current = candidate
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for name, proposal in _proposals(current):
            if attempts >= max_attempts:
                break
            if proposal.key() == current.key():
                continue
            attempts += 1
            if reproduces(proposal):
                current = proposal
                ops.append(name)
                steps.append(proposal)
                improved = True
                break
    return ShrinkResult(
        candidate=current,
        ops=tuple(ops),
        attempts=attempts,
        steps=tuple(steps),
    )
