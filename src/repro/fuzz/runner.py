"""The fuzz loop: seeded search, classification, shrinking, checkpointing.

One fuzz run walks candidate indices ``0 .. budget-1``.  At index ``i`` a
fresh :class:`random.Random` is derived from ``(seed, i)``; with probability
``mutate_prob`` (and a non-empty corpus) the candidate is a structured
mutation of a previously-found failing candidate, otherwise a fresh sample.
Duplicates (by coordinate key) are skipped without executing but still
consume their index — so candidate ``i`` is a pure function of
``(config, findings before i)``, which is the whole resumability story:
replaying generation (cheap, no execution) rebuilds the dedup set and the
mutation sources at any interruption point, and re-running the remaining
indices produces byte-identical findings.

Findings are shrunk immediately (:mod:`repro.fuzz.shrink`), appended to the
JSONL corpus, and acknowledged in the state file *after* the append — the
crash window between the two is healed on resume by truncating
unacknowledged records (see :mod:`repro.fuzz.corpus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Callable, Dict, List, Optional

from repro.campaigns.spec import derive_seed
from repro.fuzz.classify import (
    OVER_BOUND_MODES,
    Verdict,
    candidate_seed,
    classify_candidate,
)
from repro.fuzz.corpus import (
    STATE_VERSION,
    FindingLog,
    read_state,
    state_path,
    truncate_findings,
    write_state,
)
from repro.fuzz.shrink import DEFAULT_MAX_ATTEMPTS, shrink_candidate
from repro.fuzz.space import FuzzCandidate, FuzzSpace, generate, mutate

#: Called after each candidate with ``(index, budget, findings_so_far)``.
ProgressFn = Callable[[int, int, int], None]


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a fuzz run's candidate/finding stream."""

    space: FuzzSpace = field(default_factory=FuzzSpace)
    seed: int = 0
    budget: int = 100
    over_bound: str = "never"
    mutate_prob: float = 0.5
    shrink: bool = True
    shrink_attempts: int = DEFAULT_MAX_ATTEMPTS

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be ≥ 1, got {self.budget}")
        if self.over_bound not in OVER_BOUND_MODES:
            raise ValueError(
                f"unknown over_bound mode {self.over_bound!r}; "
                f"known: {OVER_BOUND_MODES}"
            )
        if not 0.0 <= self.mutate_prob <= 1.0:
            raise ValueError(
                f"mutate_prob must be in [0, 1], got {self.mutate_prob}"
            )


def candidate_at(
    config: FuzzConfig, index: int, sources: List[FuzzCandidate]
) -> FuzzCandidate:
    """The candidate at ``index`` given the findings discovered before it."""
    rng = Random(derive_seed(config.seed, f"fuzz-cand:{index}"))
    if sources and rng.random() < config.mutate_prob:
        source = sources[rng.randrange(len(sources))]
        return mutate(config.space, source, rng)
    return generate(config.space, rng)


def build_record(
    config: FuzzConfig, index: int, candidate: FuzzCandidate, verdict: Verdict
) -> Dict[str, object]:
    """The corpus record for one finding (pre-shrink)."""
    row = verdict.row
    error = row.get("error")
    return {
        "index": index,
        "kind": verdict.kind,
        "violated": list(verdict.violated),
        "over_bound": bool(row.get("over_bound")),
        "candidate": candidate.to_mapping(),
        "key": candidate.key(),
        "seed": candidate_seed(config.seed, candidate),
        "fuzz_seed": config.seed,
        "result": {
            "status": row.get("status"),
            "agreement": row.get("agreement"),
            "validity": row.get("validity"),
            "unanimity": row.get("unanimity"),
            "termination": row.get("termination"),
            "decided": row.get("decided"),
            "rounds": row.get("rounds"),
            # Head line only: enough to identify an engine error, stable
            # across machines (no absolute paths from traceback frames).
            "error": str(error).split("\n", 1)[0] if error else None,
        },
    }


def replay_finding(
    record: Dict[str, object], *, shrunk: bool = False
) -> Verdict:
    """Re-execute a corpus record's candidate (original or shrunk form).

    The record is self-contained: candidate coordinates, content-derived
    seed and the over-bound regime all come from the record itself, so a
    finding replays identically on any checkout of the same code.
    """
    mapping = record["shrunk"] if shrunk else record["candidate"]
    candidate = FuzzCandidate.from_mapping(mapping)
    seed = int(record["shrunk_seed"] if shrunk else record["seed"])
    mode = "allow" if record.get("over_bound") else "never"
    return classify_candidate(candidate, seed, over_bound=mode)


@dataclass
class FuzzSummary:
    """What one (possibly partial) fuzz session did."""

    executed: int = 0
    duplicates: int = 0
    skipped: int = 0  # inadmissible / inapplicable / over-bound-skipped
    ok: int = 0
    findings: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    interrupted: bool = False  # --stop-after tripped (checkpoint retained)
    next_index: int = 0


def _fresh_state(config: FuzzConfig, next_index: int, findings: int) -> Dict[str, object]:
    return {
        "version": STATE_VERSION,
        "seed": config.seed,
        "budget": config.budget,
        "next": next_index,
        "findings": findings,
        "space": config.space.fingerprint(),
        "over_bound": config.over_bound,
        "mutate_prob": config.mutate_prob,
        "shrink": config.shrink,
    }


def _validate_state(config: FuzzConfig, state: Dict[str, object]) -> None:
    expected = _fresh_state(config, 0, 0)
    for key in ("seed", "budget", "space", "over_bound", "mutate_prob", "shrink"):
        if state.get(key) != expected[key]:
            raise ValueError(
                f"fuzz state was written by a different configuration "
                f"({key}: state has {state.get(key)!r}, "
                f"this run has {expected[key]!r})"
            )


def _rebuild_history(
    config: FuzzConfig,
    start: int,
    records: List[Dict[str, object]],
) -> tuple:
    """Replay candidate *generation* for indices before ``start``.

    No execution happens — generation is pure python over derived RNGs —
    but the dedup set and the mutation-source list come out exactly as the
    interrupted session had them, so the continuation is byte-identical
    to an undisturbed run.
    """
    seen: set = set()
    sources: List[FuzzCandidate] = []
    pointer = 0
    ordered = sorted(records, key=lambda r: int(r["index"]))
    for index in range(start):
        while pointer < len(ordered) and int(ordered[pointer]["index"]) < index:
            sources.append(
                FuzzCandidate.from_mapping(ordered[pointer]["candidate"])
            )
            pointer += 1
        seen.add(candidate_at(config, index, sources).key())
    while pointer < len(ordered):
        sources.append(FuzzCandidate.from_mapping(ordered[pointer]["candidate"]))
        pointer += 1
    return seen, sources


def run_fuzz(
    config: FuzzConfig,
    out: object,
    *,
    resume: bool = False,
    stop_after: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> FuzzSummary:
    """Run (or resume) one fuzz session against the corpus at ``out``.

    The state sidecar is updated after every candidate, so interrupting at
    any point — including ``KeyboardInterrupt`` mid-execution, which this
    function deliberately lets propagate — leaves a valid checkpoint.  On
    natural completion the sidecar is removed and the findings file is the
    run's canonical product.  ``stop_after`` bounds the number of
    candidates *this session* executes (the ``--stop-after`` CLI contract);
    when it trips, the summary says ``interrupted`` and the checkpoint
    stays.

    Raises ``FileExistsError`` when a state file exists and ``resume`` is
    unset, and ``ValueError`` when a resume is incompatible or impossible.
    """
    out_path = Path(str(out))
    sidecar = state_path(out_path)
    summary = FuzzSummary()
    records: List[Dict[str, object]] = []
    start = 0

    if resume:
        if not sidecar.exists():
            hint = (
                f" ({out_path} exists — fuzz run already completed?)"
                if out_path.exists()
                else ""
            )
            raise ValueError(f"nothing to resume: no state at {sidecar}{hint}")
        state = read_state(sidecar)
        _validate_state(config, state)
        start = int(state["next"])
        records = truncate_findings(out_path, start)
        seen, sources = _rebuild_history(config, start, records)
    elif sidecar.exists():
        raise FileExistsError(
            f"fuzz state {sidecar} already exists; pass --resume to "
            f"complete it or delete it to start over"
        )
    else:
        seen, sources = set(), []
        write_state(sidecar, _fresh_state(config, 0, 0))

    summary.next_index = start
    with FindingLog(out_path, append=resume) as log:
        for index in range(start, config.budget):
            candidate = candidate_at(config, index, sources)
            key = candidate.key()
            if key in seen:
                summary.duplicates += 1
            else:
                seen.add(key)
                verdict = classify_candidate(
                    candidate,
                    candidate_seed(config.seed, candidate),
                    over_bound=config.over_bound,
                )
                summary.executed += 1
                if verdict.is_finding:
                    record = build_record(config, index, candidate, verdict)
                    if config.shrink:
                        shrunk = shrink_candidate(
                            candidate,
                            verdict.kind,
                            fuzz_seed=config.seed,
                            over_bound=config.over_bound,
                            max_attempts=config.shrink_attempts,
                        )
                        record["shrunk"] = shrunk.candidate.to_mapping()
                        record["shrunk_key"] = shrunk.candidate.key()
                        record["shrunk_seed"] = candidate_seed(
                            config.seed, shrunk.candidate
                        )
                        record["shrink_ops"] = list(shrunk.ops)
                        record["shrink_attempts"] = shrunk.attempts
                    log.append(record)
                    records.append(record)
                    sources.append(candidate)
                    summary.findings += 1
                    kind = str(verdict.kind)
                    summary.by_kind[kind] = summary.by_kind.get(kind, 0) + 1
                elif verdict.status == "ok":
                    summary.ok += 1
                else:
                    summary.skipped += 1
            # Acknowledge the candidate only after its finding (if any) is
            # durably in the corpus: the crash window leaves at most one
            # unacknowledged record, healed by truncation on resume.
            summary.next_index = index + 1
            write_state(
                sidecar, _fresh_state(config, index + 1, len(records))
            )
            if progress is not None:
                progress(index + 1, config.budget, len(records))
            if (
                stop_after is not None
                and (index + 1 - start) >= stop_after
                and index + 1 < config.budget
            ):
                summary.interrupted = True
                return summary

    sidecar.unlink(missing_ok=True)
    return summary
