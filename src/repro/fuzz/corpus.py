"""Crash-safe findings corpus: JSONL records plus a resumable state file.

The corpus mirrors the campaign checkpoint protocol
(:mod:`repro.campaigns.results`): one canonical JSON line per finding,
flushed as written so a kill loses at most the line being written; a
torn final line is tolerated on scan and truncated on resume.

Alongside the findings file lives ``<out>.state`` — a tiny JSON document
(atomically replaced after *every* candidate) recording how far the search
got (``next``), under which seed/budget/space fingerprint, and how many
findings were recorded.  Resume validation refuses a foreign state
(different seed, budget, space or over-bound mode) rather than silently
producing a franken-corpus; on a compatible resume any finding records at
or beyond ``next`` (written after the last state update, i.e. the crash
window) are dropped — deterministic re-execution regenerates them
byte-identically.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Tuple

#: Bumped when the record/state layout changes incompatibly.
STATE_VERSION = 1


def finding_to_json(record: Dict[str, object]) -> str:
    """Canonical serialization: sorted keys, no whitespace.

    Canonicalization is what makes "byte-identical findings file" a
    meaningful determinism check across reruns and kill/resume cycles.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def state_path(out: object) -> Path:
    """The sidecar state file of a findings corpus."""
    return Path(f"{out}.state")


def write_state(path: Path, state: Dict[str, object]) -> None:
    """Atomically replace the state file (write-temp + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(finding_to_json(state) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def read_state(path: Path) -> Dict[str, object]:
    """Load and structurally validate a state file."""
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable fuzz state {path}: {exc}") from exc
    if not isinstance(state, dict) or state.get("version") != STATE_VERSION:
        raise ValueError(
            f"fuzz state {path} has unsupported version "
            f"{state.get('version') if isinstance(state, dict) else state!r}"
        )
    for field in ("seed", "budget", "next", "findings", "space", "over_bound"):
        if field not in state:
            raise ValueError(f"fuzz state {path} is missing {field!r}")
    return state


def scan_findings(path: Path) -> List[Dict[str, object]]:
    """Parse a findings file, tolerating a torn final line.

    A malformed line anywhere *except* the end is corruption and raises —
    exactly the checkpoint scanner's posture: crashes tear tails, they do
    not rewrite middles.
    """
    records: List[Dict[str, object]] = []
    if not path.exists():
        return records
    deferred: Tuple[int, str] = (0, "")
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if deferred[1]:
                raise ValueError(
                    f"corrupt findings line {deferred[0]} in {path}: "
                    f"{deferred[1]}"
                )
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
                if not isinstance(record, dict) or "index" not in record:
                    raise ValueError("not a finding record")
            except ValueError as exc:
                # Only fatal if another line follows (then it's mid-file).
                deferred = (lineno, str(exc))
                continue
            records.append(record)
    return records


def truncate_findings(path: Path, next_index: int) -> List[Dict[str, object]]:
    """Drop records at/after ``next_index``; return the survivors.

    A crash between a finding append and its state update leaves one
    record the state does not acknowledge; re-executing that candidate
    regenerates the identical bytes, so the duplicate-to-be is dropped
    here.  The rewrite is atomic (temp + rename) like every corpus write.
    """
    records = [
        record
        for record in scan_findings(path)
        if int(record["index"]) < next_index
    ]
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(finding_to_json(record) + "\n")
    os.replace(tmp, path)
    return records


class FindingLog:
    """Append-only findings writer, flushed per record (crash loses ≤1 line)."""

    def __init__(self, path: object, *, append: bool = False) -> None:
        self.path = Path(path)
        self._handle = self.path.open(
            "a" if append else "w", encoding="utf-8"
        )

    def append(self, record: Dict[str, object]) -> None:
        self._handle.write(finding_to_json(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "FindingLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
