"""Adversarial scenario fuzzing: violation hunting over ScenarioSpec space.

The package turns the scenario layer into a violation-hunting instrument:

* :mod:`repro.fuzz.space` — the search space (candidates, seeded
  generation, structured mutation);
* :mod:`repro.fuzz.classify` — execution through the metrics-mode kernel
  (including deliberately-over-bound boundary parameters) and outcome
  classification (safety / liveness / error findings);
* :mod:`repro.fuzz.shrink` — delta-debugging a finding to a minimal
  still-failing spec;
* :mod:`repro.fuzz.corpus` — the crash-safe, resumable findings JSONL +
  state sidecar;
* :mod:`repro.fuzz.runner` — the deterministic fuzz loop
  (``repro fuzz run|replay|shrink`` on the CLI).
"""

from repro.fuzz.classify import (
    BOUNDARY_CLASSES,
    FINDING_KINDS,
    OVER_BOUND_MODES,
    Verdict,
    boundary_parameters,
    candidate_seed,
    classify_candidate,
    classify_row,
    execute_candidate,
    liveness_eligible,
)
from repro.fuzz.corpus import (
    FindingLog,
    finding_to_json,
    read_state,
    scan_findings,
    state_path,
    truncate_findings,
    write_state,
)
from repro.fuzz.runner import (
    FuzzConfig,
    FuzzSummary,
    build_record,
    candidate_at,
    replay_finding,
    run_fuzz,
)
from repro.fuzz.shrink import ShrinkResult, shrink_candidate
from repro.fuzz.space import (
    DEFAULT_ALGORITHMS,
    DEFAULT_STRATEGIES,
    FuzzCandidate,
    FuzzSpace,
    generate,
    mutate,
    suggest_phases,
)

__all__ = [
    "BOUNDARY_CLASSES",
    "DEFAULT_ALGORITHMS",
    "DEFAULT_STRATEGIES",
    "FINDING_KINDS",
    "FindingLog",
    "FuzzCandidate",
    "FuzzConfig",
    "FuzzSpace",
    "FuzzSummary",
    "OVER_BOUND_MODES",
    "ShrinkResult",
    "Verdict",
    "boundary_parameters",
    "build_record",
    "candidate_at",
    "candidate_seed",
    "classify_candidate",
    "classify_row",
    "execute_candidate",
    "finding_to_json",
    "generate",
    "liveness_eligible",
    "mutate",
    "read_state",
    "replay_finding",
    "run_fuzz",
    "scan_findings",
    "shrink_candidate",
    "state_path",
    "suggest_phases",
    "truncate_findings",
    "write_state",
]
