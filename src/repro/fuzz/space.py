"""The fuzzer's search space: candidates, seeded generation, mutation.

A :class:`FuzzCandidate` is one point of the adversarial search space — an
algorithm/model/engine coordinate plus a full declarative
:class:`~repro.scenarios.spec.ScenarioSpec` (Byzantine placement and
strategies, crash script, communication schedule, timed-network conditions)
and a phase budget.  :class:`FuzzSpace` bounds what the search may draw
from; :func:`generate` samples a fresh candidate and :func:`mutate` applies
structured mutations to a known-interesting one (the corpus feeds findings
back in).

Everything here is a pure function of its :class:`random.Random` argument:
the fuzz loop derives one RNG per candidate index from the campaign-style
seed derivation, which is what makes a whole fuzz run — including every
mutation decision — deterministic and resumable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from random import Random
from typing import Dict, Mapping, Optional, Tuple

from repro.core.types import FaultModel
from repro.eventsim.network import NetworkSpec
from repro.scenarios.spec import CommSpec, ScenarioSpec

#: Builder / class names the default space searches over.  ``ben-or`` is
#: excluded by default: its termination is probabilistic, so it needs the
#: randomized-aware classification gate (include it explicitly to fuzz it).
DEFAULT_ALGORITHMS = (
    "one-third-rule",
    "pbft",
    "paxos",
    "chandra-toueg",
    "mqb",
    "fab-paxos",
    "class-1",
    "class-2",
    "class-3",
)

#: Byzantine strategies the generator assigns to slots (fixed order — the
#: registry is consulted for validity, not for ordering, so the candidate
#: stream never depends on registration order).
DEFAULT_STRATEGIES = (
    "silent",
    "noise",
    "equivocator",
    "vote-flipper",
    "high-ts-liar",
    "fake-history-liar",
    "adaptive-liar",
)

#: Drop probabilities the generator draws from (a small palette keeps the
#: space coarse enough that duplicates — and therefore corpus dedup — occur).
_DROP_PROBS = (0.3, 0.5, 0.8, 1.0)


@dataclass(frozen=True)
class FuzzCandidate:
    """One point of the search space: a fully-specified execution cell."""

    algorithm: str
    n: int
    b: int
    f: int
    engine: str
    scenario: ScenarioSpec
    max_phases: int = 15

    def key(self) -> str:
        """Stable coordinate string — the dedup key and seed-derivation input.

        Same shape as :meth:`~repro.campaigns.spec.RunSpec.key` plus the
        phase budget, so per-candidate seeds are content-derived: a shrunk
        or replayed candidate reproduces with its own seed regardless of
        where in the search it was discovered.
        """
        return "|".join(
            (
                self.algorithm,
                f"n{self.n}b{self.b}f{self.f}",
                self.engine,
                self.scenario.describe_fault(),
                self.scenario.describe_network(),
                f"ph{self.max_phases}",
            )
        )

    def to_mapping(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "b": self.b,
            "f": self.f,
            "engine": self.engine,
            "scenario": self.scenario.to_mapping(),
            "max_phases": self.max_phases,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "FuzzCandidate":
        data = dict(mapping)
        unknown = set(data) - {
            "algorithm", "n", "b", "f", "engine", "scenario", "max_phases",
        }
        if unknown:
            raise ValueError(f"unknown candidate keys: {sorted(unknown)}")
        return cls(
            algorithm=str(data["algorithm"]),
            n=int(data["n"]),
            b=int(data["b"]),
            f=int(data["f"]),
            engine=str(data["engine"]),
            scenario=ScenarioSpec.from_mapping(data["scenario"]),
            max_phases=int(data.get("max_phases", 15)),
        )


@dataclass(frozen=True)
class FuzzSpace:
    """Bounds on what :func:`generate` / :func:`mutate` may produce.

    ``models`` pins an explicit ``(n, b, f)`` pool (what the CI smoke cells
    use); ``None`` samples models from ``n_range``.  The space fingerprint
    is recorded in the corpus state file so a resume under a different
    space is refused rather than silently diverging.
    """

    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS
    engines: Tuple[str, ...] = ("lockstep", "timed")
    models: Optional[Tuple[Tuple[int, int, int], ...]] = None
    n_range: Tuple[int, int] = (3, 9)
    strategies: Tuple[str, ...] = DEFAULT_STRATEGIES

    def __post_init__(self) -> None:
        for axis in ("algorithms", "engines", "strategies"):
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must be non-empty")
        for engine in self.engines:
            if engine not in ("lockstep", "timed"):
                raise ValueError(f"unknown engine {engine!r}")
        if self.models is not None:
            if not self.models:
                raise ValueError("explicit models pool must be non-empty")
            object.__setattr__(
                self, "models", tuple(tuple(m) for m in self.models)
            )
            for model in self.models:
                if len(model) != 3:
                    raise ValueError(
                        f"models entries must be (n, b, f), got {model}"
                    )
                FaultModel(*model)  # raise now, not mid-search
        lo, hi = self.n_range
        if not 1 <= lo <= hi:
            raise ValueError(f"need 1 ≤ n_min ≤ n_max, got {self.n_range}")

    def fingerprint(self) -> str:
        """A stable digest of the space (corpus-state compatibility check)."""
        payload = json.dumps(
            {
                "algorithms": list(self.algorithms),
                "engines": list(self.engines),
                "models": (
                    None
                    if self.models is None
                    else [list(m) for m in self.models]
                ),
                "n_range": list(self.n_range),
                "strategies": list(self.strategies),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


# --------------------------------------------------------------- generation


def _pick_model(space: FuzzSpace, rng: Random) -> Tuple[int, int, int]:
    if space.models is not None:
        return space.models[rng.randrange(len(space.models))]
    lo, hi = space.n_range
    n = rng.randint(lo, hi)
    b = 0 if (n < 2 or rng.random() < 0.35) else rng.randint(1, (n - 1) // 2 or 1)
    f_cap = n - 1 - b
    f = 0 if (f_cap < 1 or rng.random() < 0.4) else rng.randint(1, f_cap)
    return n, b, f


def _gen_windows(rng: Random) -> Tuple[Tuple[int, int], ...]:
    start = rng.randint(1, 4)
    end = start + rng.randint(0, 4)
    windows = [(start, end)]
    if rng.random() < 0.4:
        start2 = end + rng.randint(2, 5)
        windows.append((start2, start2 + rng.randint(0, 3)))
    return tuple(windows)


def _gen_groups(
    rng: Random, n: int
) -> Optional[Tuple[Tuple[int, ...], ...]]:
    """An explicit random 2-way partition split, or ``None`` for halves."""
    if n < 2 or rng.random() < 0.5:
        return None
    pids = list(range(n))
    rng.shuffle(pids)
    cut = rng.randint(1, n - 1)
    return (tuple(sorted(pids[:cut])), tuple(sorted(pids[cut:])))


def _gen_comm(rng: Random, n: int, engine: str) -> CommSpec:
    roll = rng.random()
    if roll < 0.30:
        return CommSpec()
    if roll < 0.85 or engine != "lockstep":
        if roll >= 0.65:
            return CommSpec(kind="lossy", drop_prob=rng.choice(_DROP_PROBS))
        # good-bad: a schedule shape plus a bad-period behaviour.
        shape = rng.random()
        schedule, good_from, windows = "after", rng.randint(1, 10), ()
        good_len = bad_len = 1
        if shape >= 0.45 and shape < 0.65:
            schedule = "alternating"
            good_len, bad_len = rng.randint(1, 3), rng.randint(1, 3)
        elif shape >= 0.65 and shape < 0.80:
            schedule, windows = "windows", _gen_windows(rng)
        elif shape >= 0.80 and shape < 0.90:
            schedule = "always"
        elif shape >= 0.90:
            schedule = "never"
        bad = ("drop", "partition", "silence")[rng.randrange(3)]
        return CommSpec(
            kind="good-bad",
            schedule=schedule,
            good_from=good_from,
            windows=windows,
            good_len=good_len,
            bad_len=bad_len,
            bad=bad,
            drop_prob=rng.choice(_DROP_PROBS),
            groups=_gen_groups(rng, n) if bad == "partition" else None,
        )
    if roll < 0.95:
        return CommSpec(kind="async-prel")
    return CommSpec(kind="silent")


def _gen_timing(rng: Random, engine: str) -> NetworkSpec:
    # Lockstep ignores timing; keeping it at the default avoids spurious
    # candidate-key diversity (and duplicate near-identical cells).
    if engine != "timed":
        return NetworkSpec()
    kind = "fixed" if rng.random() < 0.3 else "uniform"
    low = round(rng.uniform(0.2, 1.0), 2)
    high = low if kind == "fixed" else round(low + rng.uniform(0.0, 1.5), 2)
    delta = rng.choice((1.0, 2.0))
    return NetworkSpec(
        kind=kind,
        low=low,
        high=high,
        gst=rng.choice((0.0, 0.0, 2.0, 5.0, 10.0)),
        delta=delta,
        pre_gst_delay_prob=rng.choice((0.25, 0.5, 0.75)),
        chaos_factor=rng.choice((5.0, 20.0, 50.0)),
        # Keeping Δ ≥ δ means post-GST rounds deliver within the round:
        # liveness findings under this timing are real, not budget artifacts.
        round_duration=delta + rng.choice((0.5, 1.0)),
    )


def _gen_byzantine(
    rng: Random, b: int, strategies: Tuple[str, ...]
) -> Tuple[Tuple[str, ...], int]:
    if b == 0 or rng.random() < 0.15:
        return (), -1
    count = b if rng.random() < 0.5 else rng.randint(1, b)
    names = tuple(
        strategies[rng.randrange(len(strategies))]
        for _ in range(rng.randint(1, min(3, count)))
    )
    return names, (-1 if count == b else count)


def _gen_crashes(rng: Random, f: int) -> Tuple[int, int, bool]:
    if f == 0 or rng.random() < 0.5:
        return 0, 1, True
    crashes = -1 if rng.random() < 0.3 else rng.randint(1, f)
    return crashes, rng.randint(1, 6), rng.random() < 0.7


def suggest_phases(comm: CommSpec, timing: NetworkSpec, engine: str) -> int:
    """A phase budget that generously covers the scenario's bad prefix.

    The liveness classifier only trusts a stalled run as a *finding* when
    the budget is at least this horizon — otherwise a "stall" may just be a
    too-short run (a GST at round 10 under a 4-phase budget terminates
    nowhere, violation or not).
    """
    horizon = 12
    if comm.kind == "good-bad":
        if comm.schedule == "after":
            horizon += comm.good_from
        elif comm.schedule == "windows" and comm.windows:
            horizon += max(end for _, end in comm.windows)
        elif comm.schedule == "alternating":
            horizon += comm.good_len + comm.bad_len
    elif comm.kind == "lossy":
        horizon += 6
    if engine == "timed" and timing.gst > 0:
        horizon += int(timing.gst / timing.round_duration) + 2
    return min(horizon, 40)


def generate(space: FuzzSpace, rng: Random) -> FuzzCandidate:
    """Sample one fresh candidate (a pure function of ``rng``)."""
    n, b, f = _pick_model(space, rng)
    algorithm = space.algorithms[rng.randrange(len(space.algorithms))]
    engine = space.engines[rng.randrange(len(space.engines))]
    comm = _gen_comm(rng, n, engine)
    timing = _gen_timing(rng, engine)
    byzantine, byz_count = _gen_byzantine(rng, b, space.strategies)
    crashes, crash_round, clean = _gen_crashes(rng, f)
    scenario = ScenarioSpec(
        name="fuzz",
        byzantine=byzantine,
        byzantine_count=byz_count,
        crashes=crashes,
        crash_round=crash_round,
        clean=clean,
        comm=comm,
        timing=timing,
    )
    return FuzzCandidate(
        algorithm=algorithm,
        n=n,
        b=b,
        f=f,
        engine=engine,
        scenario=scenario,
        max_phases=suggest_phases(comm, timing, engine),
    )


# ----------------------------------------------------------------- mutation


def _fit_scenario(scenario: ScenarioSpec, b: int, f: int) -> ScenarioSpec:
    """Clamp a scenario's fault scripts to a (possibly smaller) model."""
    changes: Dict[str, object] = {}
    if b == 0 and scenario.byzantine:
        changes.update(byzantine=(), byzantine_count=-1)
    elif scenario.byzantine_count > b:
        changes.update(byzantine_count=-1)
    if f == 0 and scenario.crashes:
        changes.update(crashes=0, crash_round=1, clean=True)
    elif scenario.crashes > f:
        changes.update(crashes=-1)
    return replace(scenario, **changes) if changes else scenario


def _mutate_once(
    space: FuzzSpace, cand: FuzzCandidate, rng: Random
) -> FuzzCandidate:
    scenario = cand.scenario
    op = rng.randrange(9)
    if op == 0 and len(space.algorithms) > 1:
        pool = [a for a in space.algorithms if a != cand.algorithm]
        return replace(cand, algorithm=pool[rng.randrange(len(pool))])
    if op == 1 and len(space.engines) > 1:
        pool = [e for e in space.engines if e != cand.engine]
        engine = pool[rng.randrange(len(pool))]
        if engine == "timed" and scenario.comm.kind == "async-prel":
            # Prel-only delivery is lockstep-only; land on plain loss.
            scenario = replace(
                scenario, comm=CommSpec(kind="lossy", drop_prob=0.5)
            )
        return replace(cand, engine=engine, scenario=scenario)
    if op == 2:
        n, b, f = _pick_model(space, rng)
        return replace(
            cand, n=n, b=b, f=f, scenario=_fit_scenario(scenario, b, f)
        )
    if op == 3:
        byzantine, byz_count = _gen_byzantine(rng, cand.b, space.strategies)
        return replace(
            cand,
            scenario=replace(
                scenario, byzantine=byzantine, byzantine_count=byz_count
            ),
        )
    if op == 4 and scenario.byzantine:
        slot = rng.randrange(len(scenario.byzantine))
        name = space.strategies[rng.randrange(len(space.strategies))]
        names = (
            scenario.byzantine[:slot] + (name,) + scenario.byzantine[slot + 1:]
        )
        return replace(cand, scenario=replace(scenario, byzantine=names))
    if op == 5:
        crashes, crash_round, clean = _gen_crashes(rng, cand.f)
        return replace(
            cand,
            scenario=replace(
                scenario, crashes=crashes, crash_round=crash_round, clean=clean
            ),
        )
    if op == 6:
        comm = _gen_comm(rng, cand.n, cand.engine)
        return replace(
            cand,
            scenario=replace(scenario, comm=comm),
            max_phases=suggest_phases(comm, scenario.timing, cand.engine),
        )
    if op == 7 and cand.engine == "timed":
        timing = _gen_timing(rng, cand.engine)
        return replace(
            cand,
            scenario=replace(scenario, timing=timing),
            max_phases=suggest_phases(scenario.comm, timing, cand.engine),
        )
    if op == 8:
        delta = rng.choice((-4, 4))
        return replace(cand, max_phases=max(4, cand.max_phases + delta))
    return cand


def mutate(space: FuzzSpace, cand: FuzzCandidate, rng: Random) -> FuzzCandidate:
    """One structured mutation step (possibly stacking two ops).

    A mutation that lands on an invalid or unchanged candidate falls back
    to :func:`generate` — the search never stalls on a saturated source.
    """
    mutated = cand
    for _ in range(1 + (rng.random() < 0.35)):
        try:
            mutated = _mutate_once(space, mutated, rng)
        except ValueError:
            continue
    try:
        FaultModel(mutated.n, mutated.b, mutated.f)
    except ValueError:
        return generate(space, rng)
    if mutated.key() == cand.key():
        return generate(space, rng)
    return mutated
