"""Observability: instrumentation, structured events, live progress.

Three small, dependency-free layers that make the engine and the campaign
runner report what they are doing instead of running as black boxes:

* :mod:`repro.observability.telemetry` — a per-run :class:`Telemetry`
  registry of counters, gauges and histograms plus a :meth:`Telemetry.span`
  phase timer with parent/child (self-time) attribution.  The disabled
  path is a shared :data:`NULL_TELEMETRY` no-op object, and the kernel and
  schedulers skip instrumentation entirely when no telemetry is bound, so
  the campaign hot path (``observe="metrics"``) is unaffected.
* :mod:`repro.observability.events` — an append-only JSONL
  :class:`EventLog` the campaign CLI writes lifecycle events through
  (``campaign_started``, ``chunk_dispatched``, ``row_completed``,
  ``checkpoint_flushed``, ``worker_heartbeat``, ``campaign_finished``),
  one ``{"ts": ..., "kind": ...}`` object per line.
* :mod:`repro.observability.progress` — a throttled, single-line stderr
  progress renderer (rows done / total, rows/s, ETA, error and
  inadmissible counts) behind ``repro campaign run --progress``.

The engine surfaces telemetry as ``Outcome.telemetry``: pass a
:class:`Telemetry` to :func:`~repro.engine.kernel.run_instance` (any
observation mode), or use ``observe="profile"`` to get phase timings
without paying for trace objects.  ``repro profile`` renders the result
as a phase-breakdown table via :func:`format_phase_table`.
"""

from repro.observability.events import EventLog, load_row_durations, read_events
from repro.observability.progress import ProgressLine
from repro.observability.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    format_phase_table,
    percentile,
)

__all__ = [
    "EventLog",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "ProgressLine",
    "Telemetry",
    "format_phase_table",
    "load_row_durations",
    "percentile",
    "read_events",
]
