"""The instrumentation core: counters, gauges, histograms, phase spans.

One :class:`Telemetry` object instruments one run (or one CLI session — the
registry is not thread-aware; give each kernel its own instance the way the
campaign runner gives each run its own RNG stream).  Everything is a plain
dict of plain numbers, so a snapshot is JSON-serializable as-is.

The off path costs nothing.  Code that may run un-instrumented either holds
``telemetry = None`` and branches once per round (what the kernel and the
schedulers do — the disabled hot path executes the exact pre-instrumentation
code), or holds :data:`NULL_TELEMETRY`, whose methods are allocation-free
no-ops and whose :meth:`~NullTelemetry.span` returns one shared reusable
context manager.

Spans nest.  Each ``with telemetry.span(name):`` block accumulates into its
name's ``(calls, total, self)`` record; the *self* time excludes any nested
span's total, so a phase table can report disjoint time attribution while
``total`` keeps the intuitive inclusive reading.  Span names use dotted
``layer.phase`` convention (``kernel.send``, ``scheduler.deliver``,
``network.sample``).
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Dict, List, Optional, Sequence

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "format_phase_table",
    "percentile",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``0 ≤ q ≤ 1``) of non-empty ``samples``.

    Linear interpolation between closest ranks (numpy's default method),
    over a sorted copy — callers holding pre-sorted data may pass it
    directly since sorting sorted input is cheap.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = (len(ordered) - 1) * q
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


class _SpanTimer:
    """One active ``with telemetry.span(name)`` block."""

    __slots__ = ("_telemetry", "_name", "_start", "_child_total")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_SpanTimer":
        self._child_total = 0.0
        self._telemetry._stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter() - self._start
        telemetry = self._telemetry
        telemetry._stack.pop()
        record = telemetry._spans.get(self._name)
        if record is None:
            record = telemetry._spans[self._name] = [0, 0.0, 0.0]
        record[0] += 1
        record[1] += elapsed
        # Self time: this block minus the (inclusive) time of spans opened
        # inside it — phase attribution stays disjoint under nesting.
        record[2] += elapsed - self._child_total
        stack = telemetry._stack
        if stack:
            stack[-1]._child_total += elapsed
        return False


class Telemetry:
    """A per-run registry of counters, gauges, histograms and span timers."""

    #: Instrumented call sites test this instead of ``isinstance``.
    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        #: name → [calls, total_seconds, self_seconds].
        self._spans: Dict[str, List[float]] = {}
        self._stack: List[_SpanTimer] = []

    # -- scalar instruments --------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observed value."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        samples = self._histograms.get(name)
        if samples is None:
            samples = self._histograms[name] = []
        samples.append(value)

    # -- span timers ---------------------------------------------------------

    def span(self, name: str) -> _SpanTimer:
        """A context manager timing one phase; nests and self-attributes."""
        return _SpanTimer(self, name)

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured time into a span record directly."""
        record = self._spans.get(name)
        if record is None:
            record = self._spans[name] = [0, 0.0, 0.0]
        record[0] += calls
        record[1] += seconds
        record[2] += seconds

    # -- read-out ------------------------------------------------------------

    @property
    def span_names(self) -> List[str]:
        return list(self._spans)

    def span_stats(self, name: str) -> Dict[str, float]:
        """``{"calls", "total_s", "self_s"}`` for one span name."""
        calls, total, self_time = self._spans[name]
        return {"calls": calls, "total_s": total, "self_s": self_time}

    def total_span_seconds(self) -> float:
        """Sum of *self* time over every span — wall time under spans.

        Self times are disjoint by construction, so this never double
        counts a nested span, and comparing it against an externally
        measured wall clock yields the instrumentation coverage ratio.
        """
        return sum(record[2] for record in self._spans.values())

    @property
    def histogram_names(self) -> List[str]:
        return list(self._histograms)

    def histogram_stats(self, name: str) -> Dict[str, float]:
        """Summary stats of one histogram, tail percentiles included.

        ``p50``/``p95``/``p99`` interpolate between closest ranks (see
        :func:`percentile`) — the latency columns serve reports and the
        phase table render.
        """
        ordered = sorted(self._histograms[name])
        count = len(ordered)
        return {
            "count": count,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / count,
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable dump of every instrument."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: self.histogram_stats(name) for name in self._histograms
            },
            "spans": {
                name: self.span_stats(name) for name in self._spans
            },
        }

    def merge(self, other: "Telemetry") -> None:
        """Fold another run's instruments into this registry (sums/extends).

        Gauges keep the *other* run's latest value — merging is meant for
        aggregating repeated runs of one cell, where last-write-wins
        matches re-running the instrument in sequence.
        """
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, samples in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = []
            mine.extend(samples)
        for name, (calls, total, self_time) in other._spans.items():
            record = self._spans.get(name)
            if record is None:
                record = self._spans[name] = [0, 0.0, 0.0]
            record[0] += calls
            record[1] += total
            record[2] += self_time


class _NullSpan:
    """The shared, reusable no-op context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Allocation-free no-op telemetry for unconditionally instrumented code.

    Every method discards its arguments; :meth:`span` hands back one shared
    context manager, so a disabled call site allocates nothing and mutates
    nothing (the inertness test pins this).  Use the :data:`NULL_TELEMETRY`
    singleton rather than constructing instances.
    """

    enabled = False

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    @property
    def span_names(self) -> List[str]:
        return []

    @property
    def histogram_names(self) -> List[str]:
        return []

    def total_span_seconds(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


NULL_TELEMETRY = NullTelemetry()


def format_phase_table(
    telemetry: Telemetry,
    *,
    wall_seconds: Optional[float] = None,
    order: Optional[Sequence[str]] = None,
) -> str:
    """Render span records as an aligned phase-breakdown table.

    Phases are ordered by descending self time unless ``order`` pins an
    explicit sequence (unknown names are ignored, unlisted spans appended).
    With ``wall_seconds``, a share column and a coverage footer report how
    much of the measured wall clock the spans account for.  When the
    registry holds histograms, a second table follows with each one's
    count, mean and p50/p95/p99/max — so ``repro profile`` (and any other
    phase-table consumer) surfaces tail percentiles, not just span times.
    """
    from repro.analysis.reporting import format_table

    names = sorted(
        telemetry.span_names,
        key=lambda name: -telemetry.span_stats(name)["self_s"],
    )
    if order is not None:
        pinned = [name for name in order if name in names]
        names = pinned + [name for name in names if name not in pinned]
    headers = ["phase", "calls", "total-ms", "self-ms"]
    if wall_seconds:
        headers.append("share")
    rows = []
    for name in names:
        stats = telemetry.span_stats(name)
        row = [
            name,
            int(stats["calls"]),
            f"{stats['total_s'] * 1000:.3f}",
            f"{stats['self_s'] * 1000:.3f}",
        ]
        if wall_seconds:
            row.append(f"{stats['self_s'] / wall_seconds:6.1%}")
        rows.append(row)
    table = format_table(headers, rows)
    if wall_seconds:
        covered = telemetry.total_span_seconds()
        table += (
            f"\nspans cover {covered * 1000:.3f} ms of "
            f"{wall_seconds * 1000:.3f} ms wall ({covered / wall_seconds:.1%})"
        )
    histograms = sorted(telemetry.histogram_names)
    if histograms:
        rows = []
        for name in histograms:
            stats = telemetry.histogram_stats(name)
            rows.append(
                [name, int(stats["count"])]
                + [
                    f"{stats[column]:.4g}"
                    for column in ("mean", "p50", "p95", "p99", "max")
                ]
            )
        table += "\n" + format_table(
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"], rows
        )
    return table
