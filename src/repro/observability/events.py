"""Structured JSONL lifecycle events: the campaign's flight recorder.

An :class:`EventLog` appends one compact JSON object per line to a sidecar
file (``repro campaign run --events PATH``).  Every event carries ``ts``
(unix seconds) and ``kind``; the remaining fields are kind-specific:

========================  =====================================================
kind                      fields
========================  =====================================================
``campaign_started``      ``campaign, total_runs, workers, chunk, seed,
                          skipped, resume``
``chunk_dispatched``      ``runs`` (runs submitted in the worker task)
``row_completed``         ``run_id, status, duration_ms, pid``
``checkpoint_flushed``    ``rows`` (rows recorded so far this session)
``worker_heartbeat``      ``pid, rows, rows_per_s`` (cumulative, parent clock)
``worker_crashed``        ``chunks, runs, error, rebuilds`` (a worker process
                          died; the listed chunks are re-dispatched)
``chunk_retried``         ``runs, attempt, mode`` (crash re-dispatch; ``mode``
                          is ``pool`` or ``inline``)
``pool_degraded``         ``rebuilds`` (rebuild limit hit; the campaign
                          continues in-process)
``resume_skipped``        ``rows`` (recorded runs --resume did not re-execute)
``campaign_finished``     ``rows, errors, elapsed_s, interrupted``
========================  =====================================================

The event stream is diagnostic, not canonical: result rows remain the only
source of truth, the canonical JSONL is byte-identical with and without an
event log attached (the inertness test pins this), and readers must ignore
kinds they do not know.

Each ``emit`` writes and flushes one line, mirroring the crash-safety
discipline of :class:`~repro.campaigns.results.ResultSink`: an interrupted
campaign's event file is complete up to the crash (modulo one torn tail,
which :func:`read_events` tolerates exactly like the checkpoint scanner).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Type

__all__ = ["EventLog", "load_row_durations", "read_events"]

Event = Dict[str, object]


class EventLog:
    """A held-open, flush-per-event JSONL writer for lifecycle events."""

    def __init__(self, path: object) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event; ``ts`` and ``kind`` lead every object."""
        event: Event = {"ts": round(time.time(), 6), "kind": kind}
        event.update(fields)
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def iter_events(path: object) -> Iterator[Event]:
    """Lazily yield events; one torn final line (crash mid-write) is skipped.

    Corruption anywhere before the final line raises ``ValueError`` — this
    writer flushes line-atomically, so a mid-file garble means the file is
    not an event log it produced.
    """
    deferred: Optional[str] = None
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if deferred is not None:
                raise ValueError(deferred)
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError as exc:
                deferred = f"{path}:{number}: corrupt event line ({exc})"
                continue
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(f"{path}:{number}: event without a kind")
            yield event


def read_events(path: object, kind: Optional[str] = None) -> List[Event]:
    """Load an event file, optionally filtered to one ``kind``."""
    return [
        event
        for event in iter_events(path)
        if kind is None or event.get("kind") == kind
    ]


def load_row_durations(path: object) -> Dict[int, float]:
    """``run_id → duration_ms`` from a file's ``row_completed`` events.

    Wall durations are deliberately volatile — they never enter the
    canonical result JSONL — so ``repro campaign report --events`` joins
    them back onto result rows through this map.  A run re-executed after
    an interrupt appears twice; the last occurrence wins (it is the one
    whose row survived in the checkpoint).
    """
    durations: Dict[int, float] = {}
    for event in iter_events(path):
        if event.get("kind") != "row_completed":
            continue
        run_id = event.get("run_id")
        duration = event.get("duration_ms")
        if isinstance(run_id, int) and isinstance(duration, (int, float)):
            durations[run_id] = float(duration)
    return durations
