"""A live, single-line campaign progress display for interactive terminals.

``repro campaign run --progress`` swaps the default every-10% progress
prints for one carriage-return-updated stderr line::

    gauntlet:  512/1152 runs  44%  183.2 runs/s  eta 3s  err 0  inadm 96

Rendering is throttled (default 10 Hz) so a fast campaign is not bound by
terminal writes; the final state always renders, followed by a newline so
subsequent output starts clean.  The renderer itself is stream-agnostic —
tests drive it with ``io.StringIO`` and an injected clock.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Callable, Optional, TextIO

__all__ = ["ProgressLine"]


class ProgressLine:
    """Throttled ``\\r``-overwritten progress line for one campaign."""

    def __init__(
        self,
        label: str,
        total: int,
        *,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.1,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self._label = label
        self._total = total
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._clock = clock
        self._start = clock()
        self._last_render = float("-inf")
        self._last_width = 0
        self._closed = False

    def render(
        self, completed: int, errors: int = 0, inadmissible: int = 0
    ) -> None:
        """Update the line (no-op inside the throttle window)."""
        now = self._clock()
        if now - self._last_render < self._min_interval:
            return
        self._last_render = now
        self._write(self._format(completed, errors, inadmissible, now))

    def finish(
        self, completed: int, errors: int = 0, inadmissible: int = 0
    ) -> None:
        """Force a final render and terminate the line with a newline."""
        if self._closed:
            return
        self._closed = True
        self._write(self._format(completed, errors, inadmissible, self._clock()))
        self._stream.write("\n")
        self._stream.flush()

    def _format(
        self, completed: int, errors: int, inadmissible: int, now: float
    ) -> str:
        elapsed = now - self._start
        rate = completed / elapsed if elapsed > 0 else 0.0
        remaining = self._total - completed
        if rate > 0 and remaining >= 0:
            eta = f"eta {self._format_eta(remaining / rate)}"
        else:
            eta = "eta ?"
        share = completed / self._total if self._total else 1.0
        return (
            f"{self._label}: {completed:>{len(str(self._total))}}/{self._total}"
            f" runs {share:4.0%}  {rate:.1f} runs/s  {eta}"
            f"  err {errors}  inadm {inadmissible}"
        )

    @staticmethod
    def _format_eta(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.0f}s"

    def _write(self, line: str) -> None:
        # Pad with spaces to wipe any longer previous render before \r.
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        self._stream.write("\r" + line + padding)
        self._stream.flush()
