"""Oracle simulations: Ω-style leader election and ♦S-style failure detection."""

from repro.detectors.failure_detector import (
    DiamondS,
    SuspicionSample,
    suspicion_driven_oracle,
)
from repro.detectors.leader import OmegaOracle, StabilizingLeaderOracle

__all__ = [
    "DiamondS",
    "OmegaOracle",
    "StabilizingLeaderOracle",
    "SuspicionSample",
    "suspicion_driven_oracle",
]
