"""A ♦S-style failure detector simulation.

Chandra-Toueg's CT algorithm [5] relies on a failure detector of class ♦S:
*strong completeness* (every faulty process is eventually suspected by every
correct process) and *eventual weak accuracy* (eventually some correct
process is never suspected).  In a round-model simulation the detector is a
function of (observer, round) returning the suspected set.

:class:`DiamondS` produces suspicion samples with a configurable noisy
prefix: before ``accurate_from_round`` correct processes may be falsely
suspected (pseudo-randomly); afterwards exactly the true faulty set is
suspected.  CT's rotating coordinator uses it to decide whether to wait for
the coordinator or move on — in our instantiation this surfaces as phases
skipped when the coordinator is suspected.
"""

from __future__ import annotations

import random
from typing import AbstractSet, FrozenSet

from repro.core.types import FaultModel, ProcessId, Round


class SuspicionSample:
    """The detector output at one observer in one round."""

    def __init__(self, suspects: FrozenSet[ProcessId]) -> None:
        self._suspects = suspects

    @property
    def suspects(self) -> FrozenSet[ProcessId]:
        return self._suspects

    def suspects_process(self, pid: ProcessId) -> bool:
        return pid in self._suspects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SuspicionSample({sorted(self._suspects)})"


class DiamondS:
    """An eventually-accurate failure detector.

    * before ``accurate_from_round``: the true faulty processes are suspected
      *plus* pseudo-random false suspicions of correct processes with
      probability ``false_suspicion_prob`` per (observer, suspect, round);
    * from ``accurate_from_round`` on: exactly the faulty set is suspected —
      both completeness and (more than) weak accuracy hold.
    """

    def __init__(
        self,
        model: FaultModel,
        faulty: AbstractSet[ProcessId],
        *,
        accurate_from_round: Round = 1,
        false_suspicion_prob: float = 0.3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= false_suspicion_prob <= 1.0:
            raise ValueError("false_suspicion_prob must be in [0, 1]")
        self._model = model
        self._faulty = frozenset(faulty)
        self._accurate_from = accurate_from_round
        self._prob = false_suspicion_prob
        self._seed = seed

    @property
    def faulty(self) -> FrozenSet[ProcessId]:
        return self._faulty

    @property
    def accurate_from_round(self) -> Round:
        return self._accurate_from

    def sample(self, observer: ProcessId, round_number: Round) -> SuspicionSample:
        """The suspicion set of ``observer`` in ``round_number``."""
        suspects = set(self._faulty)
        if round_number < self._accurate_from:
            for pid in self._model.processes:
                if pid == observer or pid in suspects:
                    continue
                rng = random.Random(
                    f"{self._seed}:{observer}:{pid}:{round_number}"
                )
                if rng.random() < self._prob:
                    suspects.add(pid)
        return SuspicionSample(frozenset(suspects))

    def eventually_trusted(self) -> FrozenSet[ProcessId]:
        """Processes never suspected after stabilization (the correct set)."""
        return frozenset(
            pid for pid in self._model.processes if pid not in self._faulty
        )


def suspicion_driven_oracle(model: FaultModel, detector: DiamondS, rounds_per_phase: int = 3):
    """A coordinator oracle that skips suspected processes (CT's actual use of ♦S).

    In phase φ, process ``p`` trusts the first process of the rotation
    ``(φ − 1), (φ − 1) + 1, …`` (mod n) that its detector sample does not
    suspect at the phase's selection round.  Before the detector stabilizes,
    different processes may trust different coordinators (phases fail, which
    is safe); once ♦S is accurate, every correct process trusts the same
    correct coordinator and Selector-liveness holds.

    Use with :class:`~repro.core.selector.LeaderSelector`::

        oracle = suspicion_driven_oracle(model, detector)
        selector = LeaderSelector(model, oracle)
    """

    def oracle(process: ProcessId, phase: Round) -> ProcessId:
        round_number = max(1, rounds_per_phase * phase - 2)
        sample = detector.sample(process, round_number)
        for offset in range(model.n):
            candidate = (phase - 1 + offset) % model.n
            if not sample.suspects_process(candidate):
                return candidate
        # Everyone suspected (a detector this noisy still must return
        # something): fall back to the plain rotation.
        return (phase - 1) % model.n

    return oracle
