"""Ω-style eventual leader election (the oracle behind Paxos's Selector).

The Ω failure detector eventually outputs the same correct process at every
correct process, but may disagree arbitrarily before stabilization.  In the
round-model simulation we model it as a function of (process, phase):

* :class:`OmegaOracle` — a perfectly stable leader from phase 1 (the
  best case: a correct leader is already elected);
* :class:`StabilizingLeaderOracle` — before a stabilization phase, each
  process sees a (deterministic pseudo-random) possibly-different, possibly-
  faulty leader; from the stabilization phase on, everyone sees the same
  correct leader.  This reproduces the period in which Selector-liveness
  (SL1) fails and phases are unsuccessful.

Both satisfy the interface :class:`~repro.core.selector.LeaderSelector`
expects: ``oracle(process, phase) → ProcessId``.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.types import FaultModel, Phase, ProcessId


class OmegaOracle:
    """A leader oracle that is stable from the very first phase."""

    def __init__(self, leader: ProcessId) -> None:
        self._leader = leader

    @property
    def leader(self) -> ProcessId:
        return self._leader

    def __call__(self, process: ProcessId, phase: Phase) -> ProcessId:
        return self._leader


class StabilizingLeaderOracle:
    """A leader oracle with a chaotic prefix.

    Before ``stable_from_phase``, process ``p`` in phase ``φ`` sees a
    pseudo-random leader drawn from ``chaos_pool`` (default: all of Π) —
    different processes may well see different leaders, so SL1 fails.  From
    ``stable_from_phase`` on, every process sees ``stable_leader``.
    """

    def __init__(
        self,
        model: FaultModel,
        stable_leader: ProcessId,
        stable_from_phase: Phase,
        *,
        chaos_pool: Optional[Sequence[ProcessId]] = None,
        seed: int = 0,
    ) -> None:
        if not 0 <= stable_leader < model.n:
            raise ValueError(f"stable_leader {stable_leader} out of range")
        if stable_from_phase < 1:
            raise ValueError("stable_from_phase must be ≥ 1")
        self._model = model
        self._stable_leader = stable_leader
        self._stable_from = stable_from_phase
        self._pool = list(chaos_pool) if chaos_pool is not None else list(
            model.processes
        )
        self._seed = seed

    @property
    def stable_leader(self) -> ProcessId:
        return self._stable_leader

    @property
    def stable_from_phase(self) -> Phase:
        return self._stable_from

    def __call__(self, process: ProcessId, phase: Phase) -> ProcessId:
        if phase >= self._stable_from:
            return self._stable_leader
        # str seeding is deterministic across interpreter runs (unlike
        # hash()-based seeds under PYTHONHASHSEED randomization).
        rng = random.Random(f"{self._seed}:{process}:{phase}")
        return rng.choice(self._pool)


def rotating_oracle(model: FaultModel):
    """A rotating-coordinator oracle ``φ ↦ (φ − 1) mod n``.

    Functionally the same pattern as
    :class:`~repro.core.selector.RotatingCoordinatorSelector`; provided as an
    oracle so Chandra-Toueg can also be expressed through
    :class:`~repro.core.selector.LeaderSelector`.
    """

    def oracle(process: ProcessId, phase: Phase) -> ProcessId:
        return (phase - 1) % model.n

    return oracle
