"""Ben-Or [1] — randomized binary consensus (Section 6).

Two variants, both with ``FLAG = φ``, ``Selector = Π`` and Algorithm 9 as
FLV:

* benign: ``TD = f + 1`` and ``n > 2f``;
* Byzantine: ``TD = 3b + 1`` and ``n > 4b`` (a class-2 algorithm).

Instead of the partial-synchrony predicates, Ben-Or assumes reliable
channels: ``Prel`` holds in *every* round (each correct process receives at
least ``n − b − f`` messages).  Line 11's deterministic choice becomes a
fair coin; repeated phases make all correct processes select the same value
with probability 1.  Run specs produced here through
:func:`repro.core.randomized.run_randomized_consensus`, which installs the
coins and the ``Prel`` adversary.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_variants import BenOrFLV
from repro.core.parameters import ConsensusParameters
from repro.core.selector import AllProcessesSelector
from repro.core.types import FaultModel, Flag


@register("ben-or")
def build_ben_or(
    n: int, *, b: int = 0, f: Optional[int] = None
) -> AlgorithmSpec:
    """Build Ben-Or for ``n`` processes.

    With ``b = 0`` (benign variant) ``f`` defaults to ``⌈n/2⌉ − 1`` and
    ``TD = f + 1``.  With ``b > 0`` (Byzantine variant) ``f`` is forced to 0
    and ``TD = 3b + 1`` (requires ``n > 4b``).
    """
    if b > 0:
        model = FaultModel(n=n, b=b, f=0)
        if n <= 4 * b:
            raise ValueError(f"Byzantine Ben-Or requires n > 4b, got n={n}, b={b}")
        td = 3 * b + 1
        variant = "Byzantine"
    else:
        if f is None:
            f = (n - 1) // 2
        model = FaultModel(n=n, b=0, f=f)
        if n <= 2 * f:
            raise ValueError(f"benign Ben-Or requires n > 2f, got n={n}, f={f}")
        td = f + 1
        variant = "benign"
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.CURRENT_PHASE,
        flv=BenOrFLV(model, td),
        selector=AllProcessesSelector(model),
    )
    return AlgorithmSpec(
        name=f"Ben-Or ({variant})",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_2,
        paper_section="6",
        notes=f"randomized binary consensus, {variant} variant, TD={td}; "
        "run via run_randomized_consensus (Prel adversary + coins)",
    )
