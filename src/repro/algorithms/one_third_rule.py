"""OneThirdRule [6] — class 1, benign faults, ``n > 3f`` (Section 5.1).

Instantiation: ``TD = ⌈(2n + 1)/3⌉``, ``FLAG = *``, ``Selector = Π``,
Algorithm 2 as FLV.

The module also contains :class:`OriginalOneThirdRuleProcess`, a literal
transcription of the paper's Algorithm 5 (one merged selection+decision
round per phase).  Section 5.1 claims the instantiation is a *small
improvement*: whenever the original selects a value, the instantiated FLV
also selects one, but not conversely (with ``≤ 2n/3`` messages the original
never selects while Algorithm 2's line 3 may).  The bench
``benchmarks/bench_algorithms.py`` and ``tests/algorithms`` verify both the
equivalence of the decision condition and the strictness of the improvement.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_class1 import FLVClass1
from repro.core.parameters import ConsensusParameters
from repro.core.selector import AllProcessesSelector
from repro.core.types import (
    FaultModel,
    Flag,
    ProcessId,
    RoundInfo,
    Value,
)
from repro.rounds.base import Inbound, Outbound, RoundProcess
from repro.utils.det import most_often_smallest


def one_third_rule_threshold(model: FaultModel) -> int:
    """``TD = ⌈(2n + 1)/3⌉`` (footnote 12 of the paper)."""
    return -((2 * model.n + 1) // -3)


@register("one-third-rule")
def build_one_third_rule(n: int, f: Optional[int] = None) -> AlgorithmSpec:
    """Build the OneThirdRule instantiation for ``n`` processes.

    ``f`` defaults to the maximum tolerated, ``⌈n/3⌉ − 1`` (``n > 3f``).
    """
    if f is None:
        f = (n - 1) // 3
    model = FaultModel(n=n, b=0, f=f)
    if n <= 3 * f:
        raise ValueError(f"OneThirdRule requires n > 3f, got n={n}, f={f}")
    td = one_third_rule_threshold(model)
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.ANY,
        flv=FLVClass1(model, td),
        selector=AllProcessesSelector(model),
    )
    return AlgorithmSpec(
        name="OneThirdRule",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_1,
        paper_section="5.1",
        notes="benign faults, TD=⌈(2n+1)/3⌉; instantiation slightly improves "
        "the original's selection rule",
    )


class OriginalOneThirdRuleProcess(RoundProcess):
    """Literal Algorithm 5: the original OneThirdRule.

    Every round: send ``vote`` to all; if more than ``2n/3`` messages
    arrive, set the vote to the smallest most-often-received value; if more
    than ``2n/3`` received values equal ``v``, decide ``v``.
    """

    def __init__(self, pid: ProcessId, initial_value: Value, model: FaultModel) -> None:
        self.pid = pid
        self.model = model
        self.vote = initial_value
        self.decided: Optional[Value] = None
        self.decision_round: Optional[int] = None

    @property
    def has_decided(self) -> bool:
        return self.decided is not None

    def send(self, info: RoundInfo) -> Outbound:
        return {dest: self.vote for dest in self.model.processes}

    def receive(self, info: RoundInfo, received: Inbound) -> None:
        values = [payload for payload in received.values()]
        n = self.model.n
        if 3 * len(values) > 2 * n:  # line 7: more than 2n/3 messages
            self.vote = most_often_smallest(values)  # line 8
            counts: Dict[Value, int] = {}
            for value in values:
                counts[value] = counts.get(value, 0) + 1
            for value, count in counts.items():
                if 3 * count > 2 * n:  # line 9: more than 2n/3 equal values
                    if self.decided is None:
                        self.decided = value
                        self.decision_round = info.number
                    break
