"""Chandra-Toueg (CT) [5] — benign faults, ``n > 2f``, rotating coordinator.

Instantiation: ``TD = ⌈(n + 1)/2⌉``, ``FLAG = φ``, ``Selector`` = the
rotating-coordinator function ``φ ↦ (φ − 1) mod n`` (Section 4.2), class-2
FLV (Algorithm 3 with ``b = 0``).

CT originally relies on the ♦S failure detector; in the round model the
detector's role — eventually reaching a phase whose coordinator is correct
and heard by everyone — is played by the combination of the rotating
selector and the eventual good phase.  The companion simulation of ♦S
itself lives in :mod:`repro.detectors.failure_detector` and is exercised by
its own tests.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_class2 import FLVClass2
from repro.core.flv_variants import paxos_threshold
from repro.core.parameters import ConsensusParameters
from repro.core.selector import RotatingCoordinatorSelector
from repro.core.types import FaultModel, Flag


@register("chandra-toueg")
def build_chandra_toueg(n: int, f: Optional[int] = None) -> AlgorithmSpec:
    """Build CT for ``n`` processes (``f`` defaults to ``⌈n/2⌉ − 1``)."""
    if f is None:
        f = (n - 1) // 2
    model = FaultModel(n=n, b=0, f=f)
    if n <= 2 * f:
        raise ValueError(f"CT requires n > 2f, got n={n}, f={f}")
    td = paxos_threshold(model)  # also ⌈(n+1)/2⌉ — a majority
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.CURRENT_PHASE,
        flv=FLVClass2(model, td),
        selector=RotatingCoordinatorSelector(model),
    )
    return AlgorithmSpec(
        name="Chandra-Toueg",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_2,
        paper_section="5.3 / Table 1",
        notes="benign, rotating coordinator, majority threshold",
    )
