"""Common structure for named algorithm instantiations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.core.classification import AlgorithmClass, classify
from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.run import ConsensusOutcome, outcome_from_kernel
from repro.core.types import ProcessId, Value
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_FULL, run_instance
from repro.engine.scheduler import LockstepScheduler


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named instantiation of the generic algorithm.

    Bundles the parameters, the per-process config and paper metadata, and
    offers a :meth:`run` shortcut.  ``classify(spec.parameters)`` recovers
    the Table-1 class; ``spec.algorithm_class`` records the class the paper
    assigns (they agree — a test asserts it).
    """

    name: str
    parameters: ConsensusParameters
    algorithm_class: Optional[AlgorithmClass]
    paper_section: str
    notes: str = ""
    config: GenericConsensusConfig = field(default_factory=GenericConsensusConfig)

    def run(
        self,
        initial_values: Mapping[ProcessId, Value],
        *,
        config: Optional[GenericConsensusConfig] = None,
        byzantine=None,
        policy=None,
        crash_schedule=None,
        max_phases: int = 30,
        record_snapshots: bool = False,
    ) -> ConsensusOutcome:
        """Run one instance through the unified execution kernel.

        Assembles the instance with
        :func:`~repro.engine.assembly.build_instance` and drives it under a
        :class:`~repro.engine.scheduler.LockstepScheduler` with full
        observation — the same path every other runner uses, rather than
        the legacy :func:`~repro.core.run.run_consensus` wrapper.  The
        spec's own config applies unless the caller overrides it.
        """
        instance = build_instance(
            self.parameters,
            initial_values,
            config=self.config if config is None else config,
            byzantine=byzantine,
        )
        outcome = run_instance(
            instance,
            LockstepScheduler(policy),
            max_phases=max_phases,
            observe=OBSERVE_FULL,
            crash_schedule=crash_schedule,
            record_snapshots=record_snapshots,
        )
        return outcome_from_kernel(instance, outcome)

    @property
    def classified_as(self) -> Optional[AlgorithmClass]:
        """The class derived from the parameters (should match the paper's)."""
        return classify(self.parameters)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.parameters.describe()} "
            f"[class {self.algorithm_class.value if self.algorithm_class else '—'}, "
            f"{self.paper_section}]"
        )


#: Builders registered by the algorithm modules (filled in lazily to avoid
#: import cycles; see :func:`algorithm_builders`).
ALGORITHM_BUILDERS: Dict[str, Callable[..., AlgorithmSpec]] = {}


def register(name: str):
    """Decorator: register an algorithm builder under ``name``."""

    def decorate(builder: Callable[..., AlgorithmSpec]):
        ALGORITHM_BUILDERS[name] = builder
        return builder

    return decorate
