"""Common structure for named algorithm instantiations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.core.classification import AlgorithmClass, classify
from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.run import ConsensusOutcome, run_consensus
from repro.core.types import ProcessId, Value


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named instantiation of the generic algorithm.

    Bundles the parameters, the per-process config and paper metadata, and
    offers a :meth:`run` shortcut.  ``classify(spec.parameters)`` recovers
    the Table-1 class; ``spec.algorithm_class`` records the class the paper
    assigns (they agree — a test asserts it).
    """

    name: str
    parameters: ConsensusParameters
    algorithm_class: Optional[AlgorithmClass]
    paper_section: str
    notes: str = ""
    config: GenericConsensusConfig = field(default_factory=GenericConsensusConfig)

    def run(
        self,
        initial_values: Mapping[ProcessId, Value],
        **kwargs,
    ) -> ConsensusOutcome:
        """Run one instance (see :func:`~repro.core.run.run_consensus`)."""
        kwargs.setdefault("config", self.config)
        return run_consensus(self.parameters, initial_values, **kwargs)

    @property
    def classified_as(self) -> Optional[AlgorithmClass]:
        """The class derived from the parameters (should match the paper's)."""
        return classify(self.parameters)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.parameters.describe()} "
            f"[class {self.algorithm_class.value if self.algorithm_class else '—'}, "
            f"{self.paper_section}]"
        )


#: Builders registered by the algorithm modules (filled in lazily to avoid
#: import cycles; see :func:`algorithm_builders`).
ALGORITHM_BUILDERS: Dict[str, Callable[..., AlgorithmSpec]] = {}


def register(name: str):
    """Decorator: register an algorithm builder under ``name``."""

    def decorate(builder: Callable[..., AlgorithmSpec]):
        ALGORITHM_BUILDERS[name] = builder
        return builder

    return decorate
