"""Named consensus algorithms obtained by instantiating Algorithm 1.

Each module provides a ``build_*`` function returning an
:class:`~repro.algorithms.registry.AlgorithmSpec` — the parameterization of
the generic algorithm plus metadata — matching Section 5 of the paper:

* :mod:`~repro.algorithms.one_third_rule` — OneThirdRule (class 1, benign);
* :mod:`~repro.algorithms.fab_paxos` — FaB Paxos (class 1, Byzantine, n>5b);
* :mod:`~repro.algorithms.mqb` — MQB, the paper's new algorithm (class 2,
  Byzantine, n>4b);
* :mod:`~repro.algorithms.paxos` — Paxos (class 2/3, benign, leader-based);
* :mod:`~repro.algorithms.chandra_toueg` — CT (class 2/3, benign, rotating
  coordinator);
* :mod:`~repro.algorithms.pbft` — PBFT (class 3, Byzantine, n>3b);
* :mod:`~repro.algorithms.ben_or` — Ben-Or (randomized, Section 6).
"""

from repro.algorithms.ben_or import build_ben_or
from repro.algorithms.chandra_toueg import build_chandra_toueg
from repro.algorithms.fab_paxos import build_fab_paxos
from repro.algorithms.mqb import build_mqb
from repro.algorithms.one_third_rule import (
    OriginalOneThirdRuleProcess,
    build_one_third_rule,
)
from repro.algorithms.paxos import build_paxos
from repro.algorithms.pbft import build_pbft
from repro.algorithms.registry import ALGORITHM_BUILDERS, AlgorithmSpec

__all__ = [
    "ALGORITHM_BUILDERS",
    "AlgorithmSpec",
    "OriginalOneThirdRuleProcess",
    "build_ben_or",
    "build_chandra_toueg",
    "build_fab_paxos",
    "build_mqb",
    "build_one_third_rule",
    "build_paxos",
    "build_pbft",
]
