"""Paxos [11] — benign faults, ``n > 2f``, leader-based (Section 5.3).

Instantiation: ``TD = ⌈(n + 1)/2⌉``, ``FLAG = φ``, ``Selector`` implementing
leader election (an Ω oracle), Algorithm 7 as FLV.

The paper discusses Paxos inside class 3 to exhibit its kinship with PBFT
(their selection rounds both derive from the class-3 FLV), while Table 1
places it in class 2 — with ``b = 0`` classes 2 and 3 coincide because the
history adds nothing.  ``build_paxos`` uses Algorithm 7 (the simplified
benign FLV); a test confirms it agrees with both the class-2 and class-3
generic FLVs on benign inputs.

With a :class:`~repro.detectors.leader.StabilizingLeaderOracle`, phases
before stabilization can fail (SL1 violated) and the run decides in the
first phase whose leader is stable and correct — Paxos's indulgent
behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_variants import PaxosFLV, paxos_threshold
from repro.core.parameters import ConsensusParameters
from repro.core.selector import LeaderSelector
from repro.core.types import FaultModel, Flag, Phase, ProcessId
from repro.detectors.leader import OmegaOracle


@register("paxos")
def build_paxos(
    n: int,
    f: Optional[int] = None,
    *,
    oracle: Optional[Callable[[ProcessId, Phase], ProcessId]] = None,
) -> AlgorithmSpec:
    """Build Paxos for ``n`` processes.

    ``f`` defaults to the maximum tolerated, ``⌈n/2⌉ − 1`` (``n > 2f``).
    ``oracle`` is the leader-election oracle; defaults to a stable Ω
    electing process ``n − 1`` (any correct process works).
    """
    if f is None:
        f = (n - 1) // 2
    model = FaultModel(n=n, b=0, f=f)
    if n <= 2 * f:
        raise ValueError(f"Paxos requires n > 2f, got n={n}, f={f}")
    td = paxos_threshold(model)
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.CURRENT_PHASE,
        flv=PaxosFLV(model, td),
        selector=LeaderSelector(model, oracle or OmegaOracle(n - 1)),
    )
    return AlgorithmSpec(
        name="Paxos",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_2,
        paper_section="5.3",
        notes="benign, leader-based, TD=⌈(n+1)/2⌉; class 2 (= class 3 when b=0)",
    )
