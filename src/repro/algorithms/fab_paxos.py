"""FaB Paxos [16] — class 1, Byzantine faults, ``n > 5b`` (Section 5.1).

Instantiation: ``TD = ⌈(n + 3b + 1)/2⌉``, ``FLAG = *``, ``Selector = Π``,
Algorithm 6 (= Algorithm 2 with that ``TD``) as FLV.

Two rounds per phase and no timestamps/history — the "fast" Byzantine
consensus, paying with the highest resilience requirement of the three
classes.  The paper notes the instantiation slightly improves the original's
selection rule: with ``n = 7, b = 1`` the original needs 4 matching
messages to select where Algorithm 6 needs 3 (footnote 13) — asserted in
``tests/algorithms/test_fab_paxos.py``.

The original FaB Paxos uses a coordinator-based, signature-based ``Pcons``
implementation; running this spec under
:class:`~repro.network.stack.PconsStack` with either WIC implementation
yields the coordinator-free / signature-free variants mentioned in the
paper.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_variants import FaBPaxosFLV, fab_paxos_threshold
from repro.core.parameters import ConsensusParameters
from repro.core.selector import AllProcessesSelector
from repro.core.types import FaultModel, Flag


@register("fab-paxos")
def build_fab_paxos(n: int, b: Optional[int] = None) -> AlgorithmSpec:
    """Build FaB Paxos for ``n`` processes.

    ``b`` defaults to the maximum tolerated, ``⌈n/5⌉ − 1`` (``n > 5b``).
    """
    if b is None:
        b = (n - 1) // 5
    model = FaultModel(n=n, b=b, f=0)
    if n <= 5 * b:
        raise ValueError(f"FaB Paxos requires n > 5b, got n={n}, b={b}")
    td = fab_paxos_threshold(model)
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.ANY,
        flv=FaBPaxosFLV(model, td),
        selector=AllProcessesSelector(model),
    )
    return AlgorithmSpec(
        name="FaB Paxos",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_1,
        paper_section="5.1",
        notes="Byzantine, f=0, TD=⌈(n+3b+1)/2⌉, 2 rounds/phase, vote-only state",
    )
