"""PBFT [4] — class 3, Byzantine faults, ``n > 3b`` (Section 5.3).

Instantiation: ``TD = 2b + 1``, ``FLAG = φ``, ``Selector = Π``, Algorithm 8
as FLV (the paper fixes ``n = 3b + 1`` to stay closest to PBFT; we accept
any ``n > 3b`` since Algorithm 8's conditions are expressed through
``n − TD + b``).

PBFT reaches the optimal Byzantine resilience by paying with the unbounded
``history`` variable (dissemination-quorum certificates).  PBFT does not
provide unanimity, hence Algorithm 8 omits lines 8-9 of the generic class-3
FLV.  The original uses a coordinator-based signature-free ``Pcons``
implementation; running under :mod:`repro.network.stack` with the echo
implementation gives the coordinator-free variant the paper mentions.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_variants import PBFTFLV, pbft_threshold
from repro.core.parameters import ConsensusParameters
from repro.core.selector import AllProcessesSelector
from repro.core.types import FaultModel, Flag


@register("pbft")
def build_pbft(n: int, b: Optional[int] = None) -> AlgorithmSpec:
    """Build PBFT for ``n`` processes.

    ``b`` defaults to the maximum tolerated, ``⌈n/3⌉ − 1`` (``n > 3b``).
    """
    if b is None:
        b = (n - 1) // 3
    model = FaultModel(n=n, b=b, f=0)
    if n <= 3 * b:
        raise ValueError(f"PBFT requires n > 3b, got n={n}, b={b}")
    td = pbft_threshold(model)
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.CURRENT_PHASE,
        flv=PBFTFLV(model, td),
        selector=AllProcessesSelector(model),
    )
    return AlgorithmSpec(
        name="PBFT",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_3,
        paper_section="5.3",
        notes="Byzantine, f=0, TD=2b+1, optimal resilience n>3b, "
        "unbounded history (dissemination quorums), no unanimity",
    )
