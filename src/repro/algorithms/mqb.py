"""MQB — the paper's **new** Byzantine consensus algorithm (Section 5.2).

MQB ("Masking Quorum Byzantine") fills the empty cell of Table 1: class 2
with ``f = 0``.  It requires ``n > 4b`` — strictly between FaB Paxos
(``n > 5b``) and PBFT (``n > 3b``) — and, unlike PBFT, does **not** need the
unbounded ``history`` variable: its state is just ``(vote, ts)``.

Instantiation: ``TD = ⌈(n + 2b + 1)/2⌉``, ``FLAG = φ``, ``Selector = Π``,
Algorithm 3 (class-2 FLV) with that ``TD``.

The quorums this threshold induces are *masking quorums* in the sense of
Malkhi-Reiter [15] (hence the name); see :mod:`repro.quorums` for the
correspondence.  Depending on the ``Pcons`` implementation chosen in
:mod:`repro.network.stack`, one obtains the coordinator-based or
coordinator-free variants the paper mentions.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.registry import AlgorithmSpec, register
from repro.core.classification import AlgorithmClass
from repro.core.flv_class2 import FLVClass2, mqb_threshold
from repro.core.parameters import ConsensusParameters
from repro.core.selector import AllProcessesSelector
from repro.core.types import FaultModel, Flag


@register("mqb")
def build_mqb(n: int, b: Optional[int] = None) -> AlgorithmSpec:
    """Build MQB for ``n`` processes.

    ``b`` defaults to the maximum tolerated, ``⌈n/4⌉ − 1`` (``n > 4b``).
    """
    if b is None:
        b = (n - 1) // 4
    model = FaultModel(n=n, b=b, f=0)
    if n <= 4 * b:
        raise ValueError(f"MQB requires n > 4b, got n={n}, b={b}")
    td = mqb_threshold(model)
    parameters = ConsensusParameters(
        model=model,
        threshold=td,
        flag=Flag.CURRENT_PHASE,
        flv=FLVClass2(model, td),
        selector=AllProcessesSelector(model),
    )
    return AlgorithmSpec(
        name="MQB",
        parameters=parameters,
        algorithm_class=AlgorithmClass.CLASS_2,
        paper_section="5.2",
        notes="new algorithm: n>4b without the unbounded history variable, "
        "TD=⌈(n+2b+1)/2⌉ (masking quorums)",
    )
