"""Running the generic algorithm with *implemented* ``Pcons`` (Section 2.2).

:func:`run_with_pcons_stack` executes Algorithm 1 where each selection round
is realized by a :class:`~repro.network.wic.PconsImplementation` sub-protocol
instead of an oracle policy: the authenticated variant costs 2 extra rounds
per phase, the signature-free one 3 — exactly the tradeoff the paper quotes
from [17].

The global micro-round clock is what the good/bad schedule applies to, so a
phase succeeds only when its whole expanded footprint falls in a good period
and its rotating coordinator is correct.  Validation and decision rounds go
through plain ``Pgood`` delivery (they never needed ``Pcons``).

Limitations (documented in DESIGN.md): the stack requires the Π selector
(true for every Byzantine algorithm in the paper) and supports Byzantine but
not crash faults (the paper's ``Pcons`` constructions target the Byzantine
models; benign algorithms get ``Pcons`` for free from synchrony when no
crash occurs in good periods).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.parameters import ConsensusParameters, GenericConsensusConfig
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.faults.registry import ByzantineSpec, build_byzantine
from repro.core.types import Decision, ProcessId, RoundKind, Value
from repro.network.wic import MicroOutbound, PconsImplementation
from repro.rounds.base import DeliveryMatrix, RoundProcess, RunContext
from repro.rounds.policies import deliver_to_byzantine, faithful_delivery
from repro.rounds.schedule import GoodBadSchedule


@dataclass
class PconsStackOutcome:
    """Result of a stack run."""

    parameters: ConsensusParameters
    decisions: Dict[ProcessId, Decision]
    #: (phase, did all correct processes obtain identical selection vectors).
    pcons_observations: List[Tuple[int, bool]]
    micro_rounds_used: int
    logical_rounds_used: int
    messages_sent: int
    context: RunContext

    @property
    def agreement_holds(self) -> bool:
        return len({decision.value for decision in self.decisions.values()}) <= 1

    @property
    def all_correct_decided(self) -> bool:
        return set(self.context.correct) <= set(self.decisions)

    def pcons_held_in_phase(self, phase: int) -> Optional[bool]:
        for observed_phase, held in self.pcons_observations:
            if observed_phase == phase:
                return held
        return None


def run_with_pcons_stack(
    parameters: ConsensusParameters,
    initial_values: Mapping[ProcessId, Value],
    wic: PconsImplementation,
    *,
    config: Optional[GenericConsensusConfig] = None,
    byzantine: Optional[Mapping[ProcessId, ByzantineSpec]] = None,
    schedule: Optional[GoodBadSchedule] = None,
    bad_drop_prob: float = 0.7,
    seed: int = 0,
    max_phases: int = 20,
) -> PconsStackOutcome:
    """Run one consensus instance with an implemented ``Pcons``.

    ``schedule`` applies to the expanded micro-round clock; default is a
    permanently good period.  During bad micro-rounds each message is
    dropped i.i.d. with probability ``bad_drop_prob``.
    """
    model = parameters.model
    if not parameters.selector.is_static or parameters.selector.select(
        0, 1
    ) != frozenset(model.processes):
        raise ValueError("the Pcons stack requires the Π (all-processes) selector")
    if model.f != 0:
        raise ValueError("the Pcons stack supports Byzantine faults only (f = 0)")

    config = config or GenericConsensusConfig()
    byzantine = dict(byzantine or {})
    schedule = schedule or GoodBadSchedule.always_good()
    rng = random.Random(seed)
    structure = RoundStructure(
        parameters.flag, skip_first_selection=config.skip_first_selection
    )
    ctx = RunContext(model, byzantine=frozenset(byzantine))

    processes: Dict[ProcessId, RoundProcess] = {}
    for pid in model.processes:
        if pid in byzantine:
            processes[pid] = build_byzantine(pid, byzantine[pid], parameters)
        else:
            if pid not in initial_values:
                raise ValueError(f"missing initial value for honest process {pid}")
            processes[pid] = GenericConsensusProcess(
                pid, initial_values[pid], parameters, config
            )

    clock = 0  # global micro-round counter
    messages_sent = 0
    decisions: Dict[ProcessId, Decision] = {}
    pcons_observations: List[Tuple[int, bool]] = []

    def micro_deliver(outbound: MicroOutbound) -> DeliveryMatrix:
        nonlocal clock, messages_sent
        clock += 1
        messages_sent += sum(len(messages) for messages in outbound.values())
        if schedule.is_good(clock):
            matrix = faithful_delivery(outbound)
            deliver_to_byzantine(matrix, outbound, ctx)
            return matrix
        matrix = {}
        for sender, messages in outbound.items():
            for dest, payload in messages.items():
                if dest in ctx.byzantine or rng.random() >= bad_drop_prob:
                    matrix.setdefault(dest, {})[sender] = payload
        return matrix

    logical_round = 0
    total_logical = structure.rounds_for_phases(max_phases)
    while logical_round < total_logical:
        logical_round += 1
        info = structure.info(logical_round)

        if info.kind is RoundKind.SELECTION:
            # Collect each process's selection payload (one per sender; an
            # equivocating sender contributes what it would have told the
            # coordinator).
            coordinator = wic.coordinator(info.phase)
            inputs: Dict[ProcessId, object] = {}
            for pid, process in processes.items():
                raw = process.send(info)
                if not raw:
                    continue
                payload = raw.get(coordinator)
                if payload is None:
                    payload = raw[min(raw)]
                inputs[pid] = payload
            vectors = wic.execute(info.phase, inputs, micro_deliver, ctx)
            correct_vectors = [
                tuple(sorted(vectors.get(pid, {}).items()))
                for pid in sorted(ctx.correct)
            ]
            identical = all(v == correct_vectors[0] for v in correct_vectors)
            pcons_observations.append((info.phase, identical))
            for pid, process in processes.items():
                process.receive(info, vectors.get(pid, {}))
        else:
            outbound: MicroOutbound = {
                pid: dict(process.send(info)) for pid, process in processes.items()
            }
            matrix = micro_deliver(outbound)
            for pid, process in processes.items():
                process.receive(info, matrix.get(pid, {}))

        for pid, process in processes.items():
            if (
                pid not in decisions
                and isinstance(process, GenericConsensusProcess)
                and process.has_decided
            ):
                decisions[pid] = Decision(
                    process=pid,
                    value=process.decided,
                    round=logical_round,
                    phase=info.phase,
                )
        if set(ctx.correct) <= set(decisions):
            break

    return PconsStackOutcome(
        parameters=parameters,
        decisions=decisions,
        pcons_observations=pcons_observations,
        micro_rounds_used=clock,
        logical_rounds_used=logical_round,
        messages_sent=messages_sent,
        context=ctx,
    )
