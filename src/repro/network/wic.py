"""Coordinator-based implementations of ``Pcons`` out of ``Pgood``.

Following [17] (and, for the leader-free idea, [2]), a selection round that
needs ``Pcons`` is realized by a small echo sub-protocol driven by a
rotating coordinator:

:class:`AuthenticatedCoordinatorEcho` (2 micro-rounds, signed messages)
    1. every process signs its payload and sends it to the coordinator;
    2. the coordinator relays the set of signed messages to everyone;
       receivers keep only entries with valid signatures.

    With a correct coordinator in a good period all correct processes adopt
    the identical relayed vector — ``Pcons`` holds.  A Byzantine coordinator
    can split the vector between receivers (``Pcons`` fails that phase) but
    can never inject forged entries; the rotation guarantees a correct
    coordinator within ``b + 1`` phases.

:class:`SignatureFreeCoordinatorEcho` (3 micro-rounds, no signatures,
requires ``n > 3b``)
    1. every process sends its payload to the coordinator;
    2. the coordinator relays the received vector to everyone;
    3. every process echoes the relayed vector to everyone; a receiver
       accepts entry ``(q, v)`` iff at least ``n − 2b`` echoed vectors
       contain it.

    With a correct coordinator in a good period, all ``n − b`` honest
    processes echo the same vector, so every correct process accepts exactly
    that vector (``n − b ≥ n − 2b``), and Byzantine echoes (≤ b < n − 2b
    when n > 3b) cannot add entries.  Two correct processes can never accept
    conflicting entries for the same sender: two quorums of ``n − 2b``
    echoes intersect in an honest process when ``n > 3b``.

Byzantine behaviour inside the sub-protocol is controlled by
:class:`WicAdversaryMode` — the interesting attack surface is the Byzantine
*coordinator* (equivocating relays) and Byzantine senders feeding the
coordinator; honest echo logic is fixed by the protocol.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.types import FaultModel, Phase, ProcessId
from repro.network.signatures import Signature, SignatureService
from repro.rounds.base import DeliveryMatrix, RunContext

#: One sub-protocol exchange: sender → (dest → payload).
MicroOutbound = Dict[ProcessId, Dict[ProcessId, object]]

#: Delivery function supplied by the stack: applies Pgood-or-worse delivery
#: for one micro round, advancing the global round clock.
MicroDeliver = Callable[[MicroOutbound], DeliveryMatrix]


class WicAdversaryMode(enum.Enum):
    """How Byzantine processes behave inside the sub-protocol."""

    #: Participate per protocol (their input payload may still be malicious).
    FOLLOW = "follow"
    #: As coordinator, relay different subsets to different receivers; as
    #: echoer, echo per protocol.
    EQUIVOCATE = "equivocate"
    #: Send nothing inside the sub-protocol.
    SILENT = "silent"


@dataclass(frozen=True)
class _Relay:
    """The coordinator's relay message: a vector of (sender, payload[, sig])."""

    entries: Tuple[Tuple[ProcessId, object, Optional[Signature]], ...]


@dataclass(frozen=True)
class _Echo:
    """Micro-round-3 echo of the relayed vector (signature-free variant)."""

    entries: Tuple[Tuple[ProcessId, object], ...]


class PconsImplementation(abc.ABC):
    """A sub-protocol turning per-sender payloads into consistent vectors."""

    #: Number of micro-rounds one invocation consumes.
    rounds: int

    def __init__(
        self,
        model: FaultModel,
        *,
        adversary_mode: WicAdversaryMode = WicAdversaryMode.EQUIVOCATE,
    ) -> None:
        self._model = model
        self._mode = adversary_mode

    @property
    def model(self) -> FaultModel:
        return self._model

    def coordinator(self, phase: Phase) -> ProcessId:
        """Rotating coordinator: phase φ is led by ``(φ − 1) mod n``."""
        return (phase - 1) % self._model.n

    @abc.abstractmethod
    def execute(
        self,
        phase: Phase,
        inputs: Mapping[ProcessId, object],
        deliver: MicroDeliver,
        ctx: RunContext,
    ) -> DeliveryMatrix:
        """Run the sub-protocol and return receiver → (sender → payload).

        ``inputs`` holds each participating process's payload for this
        selection round (Byzantine payloads included — the sub-protocol does
        not sanitize content, only consistency).  ``deliver`` performs one
        micro-round of network delivery under the ambient policy.
        """

class AuthenticatedCoordinatorEcho(PconsImplementation):
    """2-round signed relay (authenticated Byzantine model)."""

    rounds = 2

    def __init__(
        self,
        model: FaultModel,
        signatures: Optional[SignatureService] = None,
        *,
        adversary_mode: WicAdversaryMode = WicAdversaryMode.EQUIVOCATE,
    ) -> None:
        super().__init__(model, adversary_mode=adversary_mode)
        self._service = signatures or SignatureService(model)
        self._keys: Dict[ProcessId, bytes] = {
            pid: self._service.issue_key(pid) for pid in model.processes
        }

    @property
    def signature_service(self) -> SignatureService:
        return self._service

    def execute(
        self,
        phase: Phase,
        inputs: Mapping[ProcessId, object],
        deliver: MicroDeliver,
        ctx: RunContext,
    ) -> DeliveryMatrix:
        coordinator = self.coordinator(phase)

        # Micro-round 1: signed payloads to the coordinator.
        outbound1: MicroOutbound = {}
        for pid, payload in inputs.items():
            if pid in ctx.byzantine and self._mode is WicAdversaryMode.SILENT:
                continue
            signature = self._service.sign(pid, self._keys[pid], payload)
            outbound1[pid] = {coordinator: (payload, signature)}
        delivered1 = deliver(outbound1)

        # Micro-round 2: the coordinator relays the signed set to everyone.
        collected = delivered1.get(coordinator, {})
        entries: List[Tuple[ProcessId, object, Optional[Signature]]] = []
        for sender, item in collected.items():
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[1], Signature)
                and item[1].signer == sender
                and self._service.verify(item[0], item[1])
            ):
                entries.append((sender, item[0], item[1]))
        entries.sort(key=lambda entry: entry[0])

        outbound2: MicroOutbound = {}
        if coordinator in ctx.byzantine:
            if self._mode is WicAdversaryMode.SILENT:
                pass
            elif self._mode is WicAdversaryMode.EQUIVOCATE and len(entries) > 1:
                # Split the vector: even receivers get the first half,
                # odd receivers the second — signatures stay valid, vector
                # equality breaks (Pcons fails, as theory allows).
                half = len(entries) // 2
                outbound2[coordinator] = {
                    dest: _Relay(
                        tuple(entries[:half] if dest % 2 == 0 else entries[half:])
                    )
                    for dest in self._model.processes
                }
            else:
                outbound2[coordinator] = {
                    dest: _Relay(tuple(entries)) for dest in self._model.processes
                }
        else:
            outbound2[coordinator] = {
                dest: _Relay(tuple(entries)) for dest in self._model.processes
            }
        delivered2 = deliver(outbound2)

        # Receivers verify every signature in the relay.
        result: DeliveryMatrix = {}
        for receiver in self._model.processes:
            relay = delivered2.get(receiver, {}).get(coordinator)
            if not isinstance(relay, _Relay):
                continue
            vector: Dict[ProcessId, object] = {}
            for entry in relay.entries:
                if not (isinstance(entry, tuple) and len(entry) == 3):
                    continue
                sender, payload, signature = entry
                if isinstance(signature, Signature) and signature.signer == sender:
                    if self._service.verify(payload, signature):
                        vector[sender] = payload
            result[receiver] = vector
        return result


class SignatureFreeCoordinatorEcho(PconsImplementation):
    """3-round relay + echo (plain Byzantine model, requires ``n > 3b``)."""

    rounds = 3

    def __init__(
        self,
        model: FaultModel,
        *,
        adversary_mode: WicAdversaryMode = WicAdversaryMode.EQUIVOCATE,
    ) -> None:
        if model.n <= 3 * model.b:
            raise ValueError(
                f"signature-free Pcons requires n > 3b, got {model.describe()}"
            )
        super().__init__(model, adversary_mode=adversary_mode)

    def execute(
        self,
        phase: Phase,
        inputs: Mapping[ProcessId, object],
        deliver: MicroDeliver,
        ctx: RunContext,
    ) -> DeliveryMatrix:
        coordinator = self.coordinator(phase)
        everyone = list(self._model.processes)

        # Micro-round 1: payloads to the coordinator.
        outbound1: MicroOutbound = {}
        for pid, payload in inputs.items():
            if pid in ctx.byzantine and self._mode is WicAdversaryMode.SILENT:
                continue
            outbound1[pid] = {coordinator: payload}
        delivered1 = deliver(outbound1)

        # Micro-round 2: the coordinator relays its received vector.
        collected = delivered1.get(coordinator, {})
        entries = tuple(sorted(collected.items(), key=lambda item: item[0]))
        outbound2: MicroOutbound = {}
        if coordinator in ctx.byzantine:
            if self._mode is WicAdversaryMode.SILENT:
                pass
            elif self._mode is WicAdversaryMode.EQUIVOCATE and len(entries) > 1:
                half = len(entries) // 2
                outbound2[coordinator] = {
                    dest: _Relay(
                        tuple(
                            (s, v, None)
                            for s, v in (
                                entries[:half] if dest % 2 == 0 else entries[half:]
                            )
                        )
                    )
                    for dest in everyone
                }
            else:
                outbound2[coordinator] = {
                    dest: _Relay(tuple((s, v, None) for s, v in entries))
                    for dest in everyone
                }
        else:
            outbound2[coordinator] = {
                dest: _Relay(tuple((s, v, None) for s, v in entries))
                for dest in everyone
            }
        delivered2 = deliver(outbound2)

        # Micro-round 3: everyone echoes the relayed vector to everyone.
        outbound3: MicroOutbound = {}
        for pid in everyone:
            if pid in ctx.byzantine and self._mode is not WicAdversaryMode.FOLLOW:
                # Byzantine echoers stay silent in non-FOLLOW modes; an
                # equivocating echoer cannot add entries anyway because of
                # the n − 2b acceptance threshold.
                continue
            relay = delivered2.get(pid, {}).get(coordinator)
            if not isinstance(relay, _Relay):
                continue
            echo = _Echo(
                tuple(
                    (sender, payload)
                    for sender, payload, _sig in relay.entries
                    if isinstance(sender, int)
                )
            )
            outbound3[pid] = {dest: echo for dest in everyone}
        delivered3 = deliver(outbound3)

        # Accept (q, v) iff ≥ n − 2b echoes contain it.
        threshold = self._model.n - 2 * self._model.b
        result: DeliveryMatrix = {}
        for receiver in everyone:
            counts: Dict[Tuple[ProcessId, object], int] = {}
            for echo in delivered3.get(receiver, {}).values():
                if not isinstance(echo, _Echo):
                    continue
                seen = set()
                for entry in echo.entries:
                    if not (isinstance(entry, tuple) and len(entry) == 2):
                        continue
                    if entry in seen:
                        continue
                    seen.add(entry)
                    counts[entry] = counts.get(entry, 0) + 1
            vector: Dict[ProcessId, object] = {}
            for (sender, payload), count in sorted(
                counts.items(), key=lambda item: repr(item[0])
            ):
                if count >= threshold and sender not in vector:
                    vector[sender] = payload
            result[receiver] = vector
        return result
