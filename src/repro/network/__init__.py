"""Implementations of ``Pcons`` out of ``Pgood`` (paper Section 2.2).

The paper relies on [17] (Milosevic-Hutle-Schiper, WIC) and [2]
(Borran-Schiper) for realizing the ``Pcons`` predicate from ``Pgood``:

* with **authenticated** Byzantine faults (signed messages): 2 extra rounds
  per selection round — :class:`~repro.network.wic.AuthenticatedCoordinatorEcho`;
* with plain **Byzantine** faults (no signatures): 3 extra rounds —
  :class:`~repro.network.wic.SignatureFreeCoordinatorEcho`.

:mod:`repro.network.stack` runs the generic consensus algorithm on top of an
expanded round schedule in which each selection round is realized by one of
these sub-protocols instead of an oracle ``Pcons`` policy.
"""

from repro.network.signatures import Signature, SignatureError, SignatureService
from repro.network.stack import PconsStackOutcome, run_with_pcons_stack
from repro.network.wic import (
    AuthenticatedCoordinatorEcho,
    PconsImplementation,
    SignatureFreeCoordinatorEcho,
    WicAdversaryMode,
)

__all__ = [
    "AuthenticatedCoordinatorEcho",
    "PconsImplementation",
    "PconsStackOutcome",
    "Signature",
    "SignatureError",
    "SignatureService",
    "SignatureFreeCoordinatorEcho",
    "WicAdversaryMode",
    "run_with_pcons_stack",
]
