"""Simulated unforgeable signatures (authenticated Byzantine fault model).

Section 2.2: in the authenticated model, messages can be signed and
"signatures cannot be forged by any other process".  We simulate this with a
keyed MAC: each process holds a secret key known only to itself and the
verification service (simulating a PKI).  Byzantine processes hold their own
keys — they can sign anything *as themselves* — but signing as an honest
process requires that process's key, which the adversary never receives.

The payload digest uses ``repr``-based hashing; payloads must therefore have
a deterministic ``repr`` (true for the frozen message dataclasses used
throughout).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict

from repro.core.types import FaultModel, ProcessId


class SignatureError(Exception):
    """Raised on signing attempts with a wrong key."""


@dataclass(frozen=True)
class Signature:
    """A (simulated) signature of ``payload`` by ``signer``."""

    signer: ProcessId
    tag: bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signature(signer={self.signer}, tag={self.tag.hex()[:12]}…)"


def _digest(payload: object) -> bytes:
    return hashlib.sha256(repr(payload).encode("utf-8")).digest()


class SignatureService:
    """Key distribution plus sign/verify for a fixed process set.

    ``issue_key(pid)`` hands out each key exactly once (the simulation's
    stand-in for secure key provisioning); signing requires presenting the
    key, so code paths holding only *their own* key cannot forge others'
    signatures.
    """

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        self._model = model
        self._keys: Dict[ProcessId, bytes] = {
            pid: hashlib.sha256(f"key:{seed}:{pid}".encode()).digest()
            for pid in model.processes
        }
        self._issued: set[ProcessId] = set()

    def issue_key(self, pid: ProcessId) -> bytes:
        """Hand ``pid`` its secret key (at most once)."""
        if pid in self._issued:
            raise SignatureError(f"key for process {pid} already issued")
        self._issued.add(pid)
        return self._keys[pid]

    def sign(self, signer: ProcessId, key: bytes, payload: object) -> Signature:
        """Sign ``payload`` as ``signer``; the presented key must match."""
        if not hmac.compare_digest(key, self._keys[signer]):
            raise SignatureError(f"wrong key presented for process {signer}")
        tag = hmac.new(key, _digest(payload), hashlib.sha256).digest()
        return Signature(signer=signer, tag=tag)

    def verify(self, payload: object, signature: Signature) -> bool:
        """Anyone can verify (public operation)."""
        if not isinstance(signature, Signature):
            return False
        if signature.signer not in self._keys:
            return False
        expected = hmac.new(
            self._keys[signature.signer], _digest(payload), hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, signature.tag)
