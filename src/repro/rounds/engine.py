"""Lockstep executor for the communication-closed round model.

The engine advances all processes round by round:

1. ask every live process for its outbound messages (``S_p^r``),
2. apply the crash schedule (a crashing process's last sends may be cut),
3. hand the outbound matrix to the delivery policy (which realizes the
   communication predicate in force),
4. deliver and apply transition functions (``T_p^r``),
5. evaluate the predicates over what actually happened and append a
   :class:`~repro.analysis.trace.RoundRecord` to the trace.

The engine guarantees *no impersonation*: a payload delivered as coming from
``q`` was produced by ``q`` in this round (Byzantine senders choose payloads
freely but cannot relabel them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.analysis.trace import ExecutionTrace, RoundRecord
from repro.core.types import Decision, FaultModel, ProcessId, Round, RoundInfo
from repro.faults.crash import CrashSchedule
from repro.rounds.base import (
    DeliveryMatrix,
    OutboundMatrix,
    RoundProcess,
    RunContext,
)
from repro.rounds.policies import DeliveryPolicy
from repro.rounds.predicates import check_pcons, check_pgood, check_prel

#: Maps a global round number to its (phase, kind) description.
RoundInfoFn = Callable[[Round], RoundInfo]

#: Optional observer: (pid, process) → state snapshot for the trace.
SnapshotFn = Callable[[ProcessId, RoundProcess], object]

#: Optional decision probe: (pid, process, info) → Decision or None.
DecisionProbe = Callable[[ProcessId, RoundProcess, RoundInfo], Optional[Decision]]


@dataclass
class EngineResult:
    """Outcome of an engine run."""

    trace: ExecutionTrace
    context: RunContext
    rounds_executed: int

    @property
    def decisions(self) -> Dict[ProcessId, Decision]:
        return self.trace.decisions

    def decided_values(self) -> set:
        return self.trace.decided_values()

    def all_decided(self, processes: frozenset) -> bool:
        """Did every process in ``processes`` decide?"""
        return processes <= set(self.trace.decisions)


class SyncEngine:
    """Deterministic lockstep execution of a set of round processes."""

    def __init__(
        self,
        model: FaultModel,
        processes: Mapping[ProcessId, RoundProcess],
        policy: DeliveryPolicy,
        round_info_fn: RoundInfoFn,
        *,
        context: Optional[RunContext] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        snapshot_fn: Optional[SnapshotFn] = None,
        decision_probe: Optional[DecisionProbe] = None,
        record_snapshots: bool = False,
    ) -> None:
        if set(processes) != set(model.processes):
            raise ValueError(
                f"processes must cover exactly 0..{model.n - 1}, "
                f"got {sorted(processes)}"
            )
        self._model = model
        self._processes = dict(processes)
        self._policy = policy
        self._round_info_fn = round_info_fn
        self._context = context or RunContext(model)
        self._crashes = crash_schedule or CrashSchedule.none(model)
        self._snapshot_fn = snapshot_fn
        self._decision_probe = decision_probe
        self._record_snapshots = record_snapshots
        self._trace = ExecutionTrace()
        self._next_round: Round = 1
        self._already_decided: set[ProcessId] = set()
        # Processes doomed to crash are not "correct" in the model's sense:
        # predicates only protect processes that never crash.
        self._eventually_correct = frozenset(
            pid
            for pid in model.processes
            if pid not in self._context.byzantine and pid not in self._crashes.doomed
        )

    @property
    def context(self) -> RunContext:
        return self._context

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def eventually_correct(self) -> frozenset:
        """Honest processes that never crash during this run."""
        return self._eventually_correct

    def _collect_outbound(self, info: RoundInfo) -> OutboundMatrix:
        outbound: OutboundMatrix = {}
        for pid, process in self._processes.items():
            if self._crashes.is_down(pid, info.number):
                continue
            raw = process.send(info)
            filtered = self._crashes.filter_outbound(pid, info.number, raw)
            # Drop messages addressed outside Π (defensive).
            outbound[pid] = {
                dest: payload
                for dest, payload in filtered.items()
                if 0 <= dest < self._model.n
            }
        return outbound

    def _apply_transitions(self, info: RoundInfo, matrix: DeliveryMatrix) -> None:
        for pid, process in self._processes.items():
            if self._crashes.is_down(pid, info.number):
                continue
            event = self._crashes.event_for(pid)
            if event is not None and info.number >= event.round:
                # The process crashed during its send step this round; it
                # performs no transition and is marked crashed.
                self._context.mark_crashed(pid)
                continue
            process.receive(info, matrix.get(pid, {}))

    def _probe_decisions(self, info: RoundInfo) -> tuple:
        if self._decision_probe is None:
            return ()
        fired = []
        for pid, process in self._processes.items():
            if pid in self._already_decided or pid in self._context.byzantine:
                continue
            decision = self._decision_probe(pid, process, info)
            if decision is not None:
                fired.append(decision)
                self._already_decided.add(pid)
        return tuple(fired)

    def step(self) -> RoundRecord:
        """Execute one round and return its record."""
        info = self._round_info_fn(self._next_round)
        outbound = self._collect_outbound(info)
        matrix = self._policy.deliver(info, outbound, self._context)
        self._apply_transitions(info, matrix)

        correct = self._eventually_correct
        minimum = self._model.n - self._model.b - self._model.f
        record = RoundRecord(
            info=info,
            sent_count=sum(len(msgs) for msgs in outbound.values()),
            delivered_count=sum(len(inbox) for inbox in matrix.values()),
            pgood=check_pgood(outbound, matrix, correct),
            pcons=check_pcons(outbound, matrix, correct),
            prel=check_prel(matrix, correct, minimum),
            snapshots=(
                {
                    pid: self._snapshot_fn(pid, process)
                    for pid, process in self._processes.items()
                    if pid not in self._context.byzantine
                }
                if (self._record_snapshots and self._snapshot_fn is not None)
                else {}
            ),
            decisions=self._probe_decisions(info),
        )
        self._trace.append(record)
        self._next_round += 1
        return record

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[Callable[[ExecutionTrace], bool]] = None,
    ) -> EngineResult:
        """Run up to ``max_rounds`` rounds, early-stopping on ``stop_when``."""
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        executed = 0
        while executed < max_rounds:
            self.step()
            executed += 1
            if stop_when is not None and stop_when(self._trace):
                break
        return EngineResult(
            trace=self._trace, context=self._context, rounds_executed=executed
        )
