"""Lockstep executor for the communication-closed round model.

:class:`SyncEngine` is the historical lockstep API, now a thin veneer over
the unified execution kernel (:mod:`repro.engine.kernel`): it binds an
:class:`~repro.engine.kernel.ExecutionKernel` to a
:class:`~repro.engine.scheduler.LockstepScheduler` wrapping the given
delivery policy, always with full observation (every round appends a
:class:`~repro.analysis.trace.RoundRecord` to the trace).  The kernel —
not this class — owns the round loop, crash handling, decision probing and
the no-impersonation guarantee; see its docstring for the per-round steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.analysis.trace import ExecutionTrace, RoundRecord
from repro.core.types import Decision, FaultModel, ProcessId, Round, RoundInfo
from repro.faults.crash import CrashSchedule
from repro.rounds.base import RoundProcess, RunContext
from repro.rounds.policies import DeliveryPolicy

#: Maps a global round number to its (phase, kind) description.
RoundInfoFn = Callable[[Round], RoundInfo]

#: Optional observer: (pid, process) → state snapshot for the trace.
SnapshotFn = Callable[[ProcessId, RoundProcess], object]

#: Optional decision probe: (pid, process, info) → Decision or None.
DecisionProbe = Callable[[ProcessId, RoundProcess, RoundInfo], Optional[Decision]]


@dataclass
class EngineResult:
    """Outcome of an engine run."""

    trace: ExecutionTrace
    context: RunContext
    rounds_executed: int

    @property
    def decisions(self) -> Dict[ProcessId, Decision]:
        return self.trace.decisions

    def decided_values(self) -> set:
        return self.trace.decided_values()

    def all_decided(self, processes: frozenset) -> bool:
        """Did every process in ``processes`` decide?"""
        return processes <= set(self.trace.decisions)


class SyncEngine:
    """Deterministic lockstep execution of a set of round processes."""

    def __init__(
        self,
        model: FaultModel,
        processes: Mapping[ProcessId, RoundProcess],
        policy: DeliveryPolicy,
        round_info_fn: RoundInfoFn,
        *,
        context: Optional[RunContext] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        snapshot_fn: Optional[SnapshotFn] = None,
        decision_probe: Optional[DecisionProbe] = None,
        record_snapshots: bool = False,
    ) -> None:
        # Imported here: repro.engine.kernel imports repro.rounds.predicates
        # (and thus this package), so a module-level import would be circular.
        from repro.engine.kernel import OBSERVE_FULL, ExecutionKernel
        from repro.engine.scheduler import LockstepScheduler

        self._kernel = ExecutionKernel(
            model,
            processes,
            LockstepScheduler(policy),
            round_info_fn,
            context=context,
            crash_schedule=crash_schedule,
            snapshot_fn=snapshot_fn,
            decision_probe=decision_probe,
            record_snapshots=record_snapshots,
            observe=OBSERVE_FULL,
        )

    @property
    def context(self) -> RunContext:
        return self._kernel.context

    @property
    def trace(self) -> ExecutionTrace:
        trace = self._kernel.trace
        assert trace is not None  # full observation is unconditional here
        return trace

    @property
    def eventually_correct(self) -> frozenset:
        """Honest processes that never crash during this run."""
        return self._kernel.eventually_correct

    def step(self) -> RoundRecord:
        """Execute one round and return its record."""
        record = self._kernel.step()
        assert record is not None  # full observation is unconditional here
        return record

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[Callable[[ExecutionTrace], bool]] = None,
    ) -> EngineResult:
        """Run up to ``max_rounds`` rounds, early-stopping on ``stop_when``."""
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        executed = 0
        while executed < max_rounds:
            self.step()
            executed += 1
            if stop_when is not None and stop_when(self.trace):
                break
        return EngineResult(
            trace=self.trace, context=self.context, rounds_executed=executed
        )
