"""Delivery policies: who receives what in each round.

A :class:`DeliveryPolicy` turns the outbound matrix of a round (what every
process put on the wire) into a delivery matrix (what every process
receives), subject to the communication predicate the policy realizes:

* :class:`ReliablePolicy` — permanently good periods: ``Pgood`` in every
  round and ``Pcons`` in the round kinds that need it (selection rounds);
* :class:`GoodBadPolicy` — a partially synchronous system driven by a
  :class:`~repro.rounds.schedule.GoodBadSchedule`; bad-period delivery is
  delegated to a pluggable behaviour (random loss, partition, silence, …);
* :class:`AsyncPrelPolicy` — the randomized-algorithm adversary: fully
  asynchronous but every correct process receives at least ``n − b − f``
  messages per round (``Prel``), the adversary picking which;
* :class:`LossyPolicy` — i.i.d. message loss with no guarantee (for
  robustness tests: safety must still hold);
* :class:`SilentPolicy` — delivers nothing (extreme bad period).

Two invariants hold in *every* policy, reflecting Section 2.1:

1. No impersonation: a delivered payload is always one the recorded sender
   actually produced this round.
2. Byzantine receivers get everything addressed to them faithfully (the
   adversary has maximal information).

``Pcons`` enforcement collapses equivocation: for each sender a canonical
payload is chosen (the one addressed to the lowest-id correct receiver) and
delivered identically to every correct process addressed by correct senders
this round.  This models what the echo-based implementations of [17]/[2]
achieve; the implementations themselves live in ``repro.network.wic``.
"""

from __future__ import annotations

import abc
import random
from typing import AbstractSet, Callable, Iterable, Optional, Set, Tuple

from repro.core.types import ProcessId, RoundInfo, RoundKind
from repro.rounds.base import DeliveryMatrix, OutboundMatrix, RunContext
from repro.rounds.schedule import GoodBadSchedule

#: Default round kinds in which Pcons is enforced during good periods.
DEFAULT_PCONS_KINDS = frozenset({RoundKind.SELECTION})


def count_edges(matrix: DeliveryMatrix) -> int:
    """Total ``(sender → receiver)`` deliveries in ``matrix`` — O(n)."""
    return sum(map(len, matrix.values()))


def faithful_delivery(outbound: OutboundMatrix) -> DeliveryMatrix:
    """Deliver every message exactly as addressed."""
    matrix: DeliveryMatrix = {}
    for sender, messages in outbound.items():
        for dest, payload in messages.items():
            matrix.setdefault(dest, {})[sender] = payload
    return matrix


def deliver_to_byzantine(
    matrix: DeliveryMatrix, outbound: OutboundMatrix, ctx: RunContext
) -> None:
    """Ensure Byzantine receivers see everything addressed to them."""
    for sender, messages in outbound.items():
        for dest, payload in messages.items():
            if dest in ctx.byzantine:
                matrix.setdefault(dest, {})[sender] = payload


def enforce_pcons(outbound: OutboundMatrix, ctx: RunContext) -> DeliveryMatrix:
    """Build a delivery matrix in which ``Pcons`` holds.

    Correct receivers addressed by at least one correct sender all receive
    the same vector; each sender contributes a single canonical payload
    (equivocation by Byzantine senders is collapsed).  Byzantine receivers
    still see the raw traffic addressed to them.
    """
    correct = ctx.correct
    audience: Set[ProcessId] = set()
    for sender in correct:
        messages = outbound.get(sender)
        if not messages:
            continue
        if messages.keys() >= correct:
            # Broadcast fast path: one correct sender addressing every
            # correct process already makes the audience maximal.
            audience = set(correct)
            break
        audience.update(dest for dest in messages if dest in correct)

    matrix: DeliveryMatrix = {receiver: {} for receiver in audience}
    min_audience = min(audience) if audience else None
    for sender, messages in outbound.items():
        if not messages or not audience:
            continue
        if min_audience in messages:
            # Broadcasts always address the lowest-id audience member.
            canonical = messages[min_audience]
        else:
            canonical_dest = min(
                (dest for dest in messages if dest in audience), default=None
            )
            if canonical_dest is None:
                continue
            canonical = messages[canonical_dest]
        for inbox in matrix.values():
            inbox[sender] = canonical
    deliver_to_byzantine(matrix, outbound, ctx)
    return matrix


def enforce_pgood(outbound: OutboundMatrix, ctx: RunContext) -> DeliveryMatrix:
    """Faithful delivery — trivially satisfies ``Pgood``.

    Faithful delivery already hands Byzantine receivers everything
    addressed to them, so no extra ``deliver_to_byzantine`` pass is needed.
    """
    return faithful_delivery(outbound)


class DeliveryPolicy(abc.ABC):
    """Strategy deciding the delivery matrix of each round.

    ``deliver`` is the single source of delivery logic; subclasses override
    it freely (including via ``super().deliver()``).  Counting is a
    separate, optional contract: a policy whose delivery is fully described
    by its own ``deliver`` declares so by pointing ``_counted_deliver`` at
    that function and implementing :meth:`_count_dropped`; the moment a
    subclass replaces ``deliver``, the identity check in
    :meth:`deliver_counted` fails closed and the scheduler rescans.
    """

    #: The ``deliver`` implementation :meth:`_count_dropped`'s contract
    #: describes.  Counting policies set this right after their class body
    #: (``MyPolicy._counted_deliver = MyPolicy.deliver``); it is compared
    #: by identity against ``type(self).deliver`` so an override anywhere
    #: in the MRO silently falls back to the scheduler's edge-exact rescan
    #: instead of miscounting.
    _counted_deliver: Optional[Callable] = None

    @abc.abstractmethod
    def deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        """Compute what every process receives in round ``info``."""

    def deliver_counted(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> Tuple[DeliveryMatrix, Optional[int]]:
        """``(matrix, dropped)``: the delivery plus a withheld-edge count.

        ``dropped`` is the number of sent edges absent from the matrix, or
        ``None`` when it cannot be counted here — the lockstep scheduler
        then falls back to an edge-exact O(edges) rescan of the outbound
        matrix.  Policies whose matrix is an exact subset of the sent
        edges (no injection — only an oracle enforcing ``Pcons`` ever
        injects deliveries) count ``sent − delivered`` in O(n) instead,
        via :meth:`_count_dropped`.
        """
        matrix = self.deliver(info, outbound, ctx)
        # Class-level access on both sides: instance access would bind the
        # stored function into a method object and never compare equal.
        if type(self).deliver is not type(self)._counted_deliver:
            return matrix, None
        return matrix, self._count_dropped(info, outbound, matrix, ctx)

    def _count_dropped(
        self,
        info: RoundInfo,
        outbound: OutboundMatrix,
        matrix: DeliveryMatrix,
        ctx: RunContext,
    ) -> Optional[int]:
        """Withheld-edge count for this class's own ``deliver`` output."""
        return None


class ReliablePolicy(DeliveryPolicy):
    """Permanently synchronous: ``Pgood`` always, ``Pcons`` where needed."""

    def __init__(
        self, pcons_kinds: AbstractSet[RoundKind] = DEFAULT_PCONS_KINDS
    ) -> None:
        self._pcons_kinds = frozenset(pcons_kinds)

    def deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        if info.kind in self._pcons_kinds:
            return enforce_pcons(outbound, ctx)
        return enforce_pgood(outbound, ctx)

    def _count_dropped(self, info, outbound, matrix, ctx) -> Optional[int]:
        if info.kind in self._pcons_kinds:
            # The Pcons oracle may withhold *and* inject; edge-exact
            # accounting needs the scheduler's rescan.
            return None
        # Pgood rounds deliver faithfully: every sent edge arrives.
        return 0


ReliablePolicy._counted_deliver = ReliablePolicy.deliver


#: Bad-period behaviour: (info, outbound, ctx) → delivery matrix.  A
#: behaviour whose matrix only ever omits sent edges (never injects new
#: ones) may set ``exact_subset = True`` on itself; the wrapping policy then
#: reports ``sent − delivered`` as the dropped count instead of making the
#: scheduler rescan every edge.  Every behaviour in this module qualifies.
BadBehavior = Callable[[RoundInfo, OutboundMatrix, RunContext], DeliveryMatrix]


def random_drop_behavior(rng: random.Random, drop_prob: float = 0.5) -> BadBehavior:
    """Each message is independently dropped with probability ``drop_prob``."""

    def behave(
        info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        matrix: DeliveryMatrix = {}
        for sender, messages in outbound.items():
            for dest, payload in messages.items():
                if dest in ctx.byzantine or rng.random() >= drop_prob:
                    matrix.setdefault(dest, {})[sender] = payload
        return matrix

    behave.exact_subset = True
    return behave


def partition_behavior(groups: Iterable[Iterable[ProcessId]]) -> BadBehavior:
    """Messages only cross within the given groups (a network partition)."""
    frozen = [frozenset(group) for group in groups]

    def behave(
        info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        matrix: DeliveryMatrix = {}
        for sender, messages in outbound.items():
            for dest, payload in messages.items():
                same_side = any(
                    sender in group and dest in group for group in frozen
                )
                if same_side or dest in ctx.byzantine:
                    matrix.setdefault(dest, {})[sender] = payload
        return matrix

    behave.exact_subset = True
    return behave


def silent_behavior() -> BadBehavior:
    """Nothing is delivered to honest processes during the bad period."""

    def behave(
        info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        matrix: DeliveryMatrix = {}
        deliver_to_byzantine(matrix, outbound, ctx)
        return matrix

    behave.exact_subset = True
    return behave


class GoodBadPolicy(DeliveryPolicy):
    """Partial synchrony: a schedule chooses good rounds, a behaviour bad ones.

    The random-loss default behaviour draws from a policy-owned ``rng``
    (never the module-level :mod:`random`), so runs are a pure function of
    the rng threaded in — scenario compilation passes a fresh
    ``random.Random(per_run_seed)`` per run, and callers reusing one policy
    object across runs can :meth:`reseed` it instead.  A custom
    ``bad_behavior`` owns its randomness; :meth:`reseed` cannot reach
    inside it.
    """

    def __init__(
        self,
        schedule: GoodBadSchedule,
        bad_behavior: Optional[BadBehavior] = None,
        pcons_kinds: AbstractSet[RoundKind] = DEFAULT_PCONS_KINDS,
        rng: Optional[random.Random] = None,
        drop_prob: float = 0.5,
    ) -> None:
        self._schedule = schedule
        self._rng = rng if rng is not None else random.Random(0)
        self._bad = bad_behavior or random_drop_behavior(self._rng, drop_prob)
        self._pcons_kinds = frozenset(pcons_kinds)

    def reseed(self, seed: int) -> None:
        """Reset the random-loss stream to a fresh per-run derivation."""
        self._rng.seed(seed)

    @property
    def schedule(self) -> GoodBadSchedule:
        return self._schedule

    def deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        if self._schedule.is_good(info.number):
            if info.kind in self._pcons_kinds:
                return enforce_pcons(outbound, ctx)
            return enforce_pgood(outbound, ctx)
        return self._bad(info, outbound, ctx)

    def _count_dropped(self, info, outbound, matrix, ctx) -> Optional[int]:
        if self._schedule.is_good(info.number):
            # Pcons may inject (rescan); Pgood delivers faithfully.
            return None if info.kind in self._pcons_kinds else 0
        if getattr(self._bad, "exact_subset", False):
            return count_edges(outbound) - count_edges(matrix)
        # A custom behaviour may inject; leave counting to the scheduler.
        return None


GoodBadPolicy._counted_deliver = GoodBadPolicy.deliver


class AsyncPrelPolicy(DeliveryPolicy):
    """Fully asynchronous delivery guaranteeing only ``Prel`` (Section 6).

    Every correct process receives at least ``n − b − f`` of the messages
    addressed to it each round; the adversary (here: a seeded RNG) chooses
    which subset, independently per receiver — so different correct processes
    may see disjoint subsets, the scenario randomized algorithms must beat.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(0)

    def reseed(self, seed: int) -> None:
        """Reset the adversary's choice stream to a per-run derivation."""
        self._rng.seed(seed)

    def deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        model = ctx.model
        minimum = model.n - model.b - model.f
        inboxes = faithful_delivery(outbound)
        matrix: DeliveryMatrix = {}
        for receiver, inbox in inboxes.items():
            if receiver in ctx.byzantine:
                matrix[receiver] = dict(inbox)
                continue
            senders = sorted(inbox)
            keep = max(minimum, 0)
            if len(senders) <= keep:
                matrix[receiver] = dict(inbox)
            else:
                chosen = self._rng.sample(senders, keep)
                matrix[receiver] = {s: inbox[s] for s in chosen}
        return matrix

    def _count_dropped(self, info, outbound, matrix, ctx) -> Optional[int]:
        # Each inbox is a subset of the faithful one: exact-subset delivery.
        return count_edges(outbound) - count_edges(matrix)


AsyncPrelPolicy._counted_deliver = AsyncPrelPolicy.deliver


class LossyPolicy(DeliveryPolicy):
    """Unconstrained i.i.d. loss — no predicate holds; safety must survive."""

    def __init__(
        self, rng: Optional[random.Random] = None, drop_prob: float = 0.3
    ) -> None:
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in [0, 1], got {drop_prob}")
        self._rng = rng if rng is not None else random.Random(0)
        self._behavior = random_drop_behavior(self._rng, drop_prob)

    def reseed(self, seed: int) -> None:
        """Reset the loss stream to a per-run derivation."""
        self._rng.seed(seed)

    def deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        return self._behavior(info, outbound, ctx)

    def _count_dropped(self, info, outbound, matrix, ctx) -> Optional[int]:
        return count_edges(outbound) - count_edges(matrix)


LossyPolicy._counted_deliver = LossyPolicy.deliver


class SilentPolicy(DeliveryPolicy):
    """Delivers nothing to honest processes (degenerate bad period)."""

    def deliver(
        self, info: RoundInfo, outbound: OutboundMatrix, ctx: RunContext
    ) -> DeliveryMatrix:
        return silent_behavior()(info, outbound, ctx)

    def _count_dropped(self, info, outbound, matrix, ctx) -> Optional[int]:
        return count_edges(outbound) - count_edges(matrix)


SilentPolicy._counted_deliver = SilentPolicy.deliver
