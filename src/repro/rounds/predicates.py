"""Checkers for the communication predicates of Section 2.1 / Section 6.

These functions *verify* a predicate over an observed delivery matrix (they
do not enforce it — that is the job of delivery policies).  The engine
evaluates them each round and records the outcome in the trace, which lets
tests and benches assert statements like "Pcons held in the selection round
of the first good phase".

Definitions (C = set of correct processes):

* ``Pgood(r)``: every correct process receives the message of every correct
  process that addressed it this round — ``∀p,q ∈ C: μ_p[q] = S_q(s_q)``.
  We evaluate the footnote-6 variant: equality is only required when ``q``
  actually addressed ``p`` (rounds need not be all-to-all).
* ``Pcons(r)``: ``Pgood(r)`` and all correct *addressed* processes receive
  identical vectors — ``∀p,q ∈ C: μ_p = μ_q``.
* ``Prel(r)``: every correct process receives at least ``n − b − f``
  messages (the "reliable channels" predicate of randomized algorithms).
"""

from __future__ import annotations

from typing import AbstractSet

from repro.core.types import ProcessId
from repro.rounds.base import DeliveryMatrix, OutboundMatrix


def check_pgood(
    outbound: OutboundMatrix,
    delivered: DeliveryMatrix,
    correct: AbstractSet[ProcessId],
) -> bool:
    """Did every correct→correct addressed message arrive intact?"""
    for sender in correct:
        sent = outbound.get(sender, {})
        for dest, payload in sent.items():
            if dest not in correct:
                continue
            inbox = delivered.get(dest, {})
            if sender not in inbox or inbox[sender] != payload:
                return False
    return True


def check_pcons(
    outbound: OutboundMatrix,
    delivered: DeliveryMatrix,
    correct: AbstractSet[ProcessId],
) -> bool:
    """``Pgood`` plus identical reception vectors at addressed correct processes.

    Following footnote 6, vector equality is only required among the correct
    processes that were addressed by at least one correct sender this round
    (with a non-all-to-all selector, processes outside the selector set
    legitimately receive nothing).
    """
    if not check_pgood(outbound, delivered, correct):
        return False
    addressed = {
        dest
        for sender in correct
        for dest in outbound.get(sender, {})
        if dest in correct
    }
    if not addressed:
        return True
    vectors = []
    for pid in sorted(addressed):
        inbox = delivered.get(pid, {})
        vectors.append(tuple(sorted(inbox.items(), key=lambda item: item[0])))
    return all(vector == vectors[0] for vector in vectors)


def check_prel(
    delivered: DeliveryMatrix,
    correct: AbstractSet[ProcessId],
    minimum: int,
) -> bool:
    """Did every correct process receive at least ``minimum`` messages?"""
    for pid in correct:
        if len(delivered.get(pid, {})) < minimum:
            return False
    return True
