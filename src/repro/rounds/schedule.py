"""Good/bad period schedules (paper Section 2.1).

The system model alternates between *good periods* (synchronous: ``Pgood``
holds, and ``Pcons`` holds in the rounds that need it) and *bad periods*
(asynchronous: the adversary controls delivery).  A schedule is simply a
predicate over global round numbers; several constructions are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Tuple

from repro.core.types import Round


@dataclass(frozen=True)
class GoodBadSchedule:
    """Decides whether each round falls in a good or a bad period."""

    _is_good: Callable[[Round], bool]
    description: str = "custom"

    def is_good(self, round_number: Round) -> bool:
        """True iff ``round_number`` lies in a good period."""
        return bool(self._is_good(round_number))

    def is_bad(self, round_number: Round) -> bool:
        return not self.is_good(round_number)

    # ---------------------------------------------------------------- ctors

    @classmethod
    def always_good(cls) -> "GoodBadSchedule":
        """A permanently synchronous system."""
        return cls(lambda r: True, "always-good")

    @classmethod
    def good_after(cls, first_good_round: Round) -> "GoodBadSchedule":
        """Bad prefix then permanently good — a GST-style schedule.

        Rounds ``< first_good_round`` are bad; all later rounds are good.
        """
        return cls(
            lambda r: r >= first_good_round, f"good-after-{first_good_round}"
        )

    @classmethod
    def windows(cls, good_windows: Iterable[Tuple[Round, Round]]) -> "GoodBadSchedule":
        """Good exactly inside the given inclusive ``(start, end)`` windows."""
        frozen: Sequence[Tuple[Round, Round]] = tuple(good_windows)
        for start, end in frozen:
            if start > end:
                raise ValueError(f"bad window ({start}, {end})")

        def is_good(r: Round) -> bool:
            return any(start <= r <= end for start, end in frozen)

        return cls(is_good, f"windows-{list(frozen)}")

    @classmethod
    def alternating(cls, good_len: int, bad_len: int) -> "GoodBadSchedule":
        """Repeating pattern of ``good_len`` good then ``bad_len`` bad rounds."""
        if good_len <= 0 or bad_len < 0:
            raise ValueError("good_len must be positive, bad_len non-negative")
        period = good_len + bad_len

        def is_good(r: Round) -> bool:
            return (r - 1) % period < good_len

        return cls(is_good, f"alternating-{good_len}g{bad_len}b")

    @classmethod
    def never_good(cls) -> "GoodBadSchedule":
        """A permanently asynchronous system (liveness cannot be guaranteed)."""
        return cls(lambda r: False, "never-good")
