"""Communication-closed round model substrate (paper Section 2.1).

This package provides the execution machinery the paper's algorithms are
expressed in: processes exposing per-round send/transition functions, a
lockstep engine, delivery policies realizing the communication predicates
``Pgood`` / ``Pcons`` / ``Prel``, and good/bad period schedules modelling
partial synchrony.
"""

from repro.rounds.base import RoundProcess, RunContext
from repro.rounds.engine import EngineResult, SyncEngine
from repro.rounds.policies import (
    AsyncPrelPolicy,
    DeliveryPolicy,
    GoodBadPolicy,
    LossyPolicy,
    ReliablePolicy,
    SilentPolicy,
)
from repro.rounds.predicates import check_pcons, check_pgood, check_prel
from repro.rounds.schedule import GoodBadSchedule

__all__ = [
    "AsyncPrelPolicy",
    "DeliveryPolicy",
    "EngineResult",
    "GoodBadPolicy",
    "GoodBadSchedule",
    "LossyPolicy",
    "ReliablePolicy",
    "RoundProcess",
    "RunContext",
    "SilentPolicy",
    "SyncEngine",
    "check_pcons",
    "check_pgood",
    "check_prel",
]
