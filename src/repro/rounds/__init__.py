"""Communication-closed round model substrate (paper Section 2.1).

This package provides the execution vocabulary the paper's algorithms are
expressed in: processes exposing per-round send/transition functions,
delivery policies realizing the communication predicates ``Pgood`` /
``Pcons`` / ``Prel``, predicate checkers, and good/bad period schedules
modelling partial synchrony.  The round loop itself lives in the unified
execution kernel (:mod:`repro.engine`); :class:`SyncEngine` remains here as
a thin veneer over it for code that drives lockstep rounds step by step.
"""

from repro.rounds.base import RoundProcess, RunContext
from repro.rounds.engine import EngineResult, SyncEngine
from repro.rounds.policies import (
    AsyncPrelPolicy,
    DeliveryPolicy,
    GoodBadPolicy,
    LossyPolicy,
    ReliablePolicy,
    SilentPolicy,
)
from repro.rounds.predicates import check_pcons, check_pgood, check_prel
from repro.rounds.schedule import GoodBadSchedule

__all__ = [
    "AsyncPrelPolicy",
    "DeliveryPolicy",
    "EngineResult",
    "GoodBadPolicy",
    "GoodBadSchedule",
    "LossyPolicy",
    "ReliablePolicy",
    "RoundProcess",
    "RoundStructure",
    "RunContext",
    "SilentPolicy",
    "SyncEngine",
    "check_pcons",
    "check_pgood",
    "check_prel",
]


def __getattr__(name: str):
    # Lazy (PEP 562) because :mod:`repro.core.process` imports
    # ``rounds.base`` at module load — an eager re-export here would be a
    # cycle.  ``RoundStructure`` is the phase → round-sequence map that the
    # batch backend's columnar-state tier compiles its per-round templates
    # from, so it belongs in the round-model vocabulary this package
    # presents even though the class lives beside the algorithm state.
    if name == "RoundStructure":
        from repro.core.process import RoundStructure

        return RoundStructure
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
