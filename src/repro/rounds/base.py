"""Round-model process interface and run context.

A :class:`RoundProcess` is the code of one process in the communication-
closed round model: ``send`` is the paper's sending function ``S_p^r``,
``receive`` applies the transition function ``T_p^r`` to the vector of
messages received this round.  Both honest protocol instances and Byzantine
strategies implement this interface; the engine enforces that *who* a message
claims to come from is always the true sender (honest processes cannot be
impersonated, Section 2.1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Set

from repro.core.types import FaultModel, ProcessId, RoundInfo

#: Messages a process emits in one round: destination → payload.
Outbound = Mapping[ProcessId, object]

#: Messages a process receives in one round: sender → payload.
Inbound = Mapping[ProcessId, object]

#: The full delivery outcome of a round: receiver → (sender → payload).
DeliveryMatrix = Dict[ProcessId, Dict[ProcessId, object]]

#: What every process put on the wire in a round: sender → (dest → payload).
OutboundMatrix = Dict[ProcessId, Dict[ProcessId, object]]


class RoundProcess(abc.ABC):
    """One process of a round-based algorithm."""

    @abc.abstractmethod
    def send(self, info: RoundInfo) -> Outbound:
        """The sending function ``S_p^r``: destination → payload."""

    @abc.abstractmethod
    def receive(self, info: RoundInfo, received: Inbound) -> None:
        """The transition function ``T_p^r`` applied to this round's vector."""


@dataclass
class RunContext:
    """Mutable bookkeeping shared between the engine and delivery policies.

    Tracks which processes are Byzantine (fixed for the run) and which have
    crashed so far (grows during the run); the set of *currently correct*
    processes is derived from both.  Policies use it to decide which
    deliveries the active communication predicate obliges them to perform.
    """

    model: FaultModel
    byzantine: FrozenSet[ProcessId] = frozenset()
    crashed: Set[ProcessId] = field(default_factory=set)

    def __post_init__(self) -> None:
        if len(self.byzantine) > self.model.b:
            raise ValueError(
                f"{len(self.byzantine)} Byzantine processes exceed b={self.model.b}"
            )
        for pid in self.byzantine:
            if not 0 <= pid < self.model.n:
                raise ValueError(f"Byzantine id {pid} out of range")

    @property
    def honest(self) -> FrozenSet[ProcessId]:
        """Processes that execute the algorithm faithfully (may crash)."""
        return frozenset(
            pid for pid in self.model.processes if pid not in self.byzantine
        )

    @property
    def correct(self) -> FrozenSet[ProcessId]:
        """Honest processes that have not crashed (so far)."""
        return frozenset(
            pid
            for pid in self.model.processes
            if pid not in self.byzantine and pid not in self.crashed
        )

    def mark_crashed(self, pid: ProcessId) -> None:
        """Record a crash; crashing a Byzantine process is a no-op."""
        if pid in self.byzantine:
            return
        if len(self.crashed) >= self.model.f and pid not in self.crashed:
            raise ValueError(
                f"crashing {pid} would exceed f={self.model.f} crash faults"
            )
        self.crashed.add(pid)

    def is_faulty(self, pid: ProcessId) -> bool:
        """True for Byzantine or crashed processes."""
        return pid in self.byzantine or pid in self.crashed
