"""Threshold Byzantine quorum systems and their intersection properties.

Footnote 10 of the paper maps the three classes onto Malkhi-Reiter [15]
quorum families:

* class 1 (FaB Paxos, OneThirdRule) uses **opaque** quorums,
* class 2 (MQB) uses **masking** quorums,
* class 3 (PBFT) uses **dissemination** quorums.

For the threshold fail-prone system ``B = {S ⊆ Π : |S| ≤ b}`` the defining
properties reduce to intersection-size arithmetic.  With quorum size ``q``
over ``n`` processes (so two quorums intersect in at least ``2q − n``):

* **dissemination**: every pairwise intersection contains a non-faulty
  process — ``2q − n ≥ b + 1``; availability ``q ≤ n − b`` forces
  ``n ≥ 3b + 1``;
* **masking**: intersections contain more non-faulty than faulty members —
  ``2q − n ≥ 2b + 1``; availability forces ``n ≥ 4b + 1``;
* **opaque**: the correct part of an intersection strictly outnumbers the
  faulty members *plus* the out-of-quorum members that might outvote it —
  ``2q − n − b > n − q + b`` i.e. ``3q > 2n + 2b``; availability forces
  ``n > 5b``.

The decision thresholds of the three classes (``TD``) are exactly the
minimal quorum sizes of the corresponding family — verified in
``tests/quorums`` and ``benchmarks/bench_quorums.py``.
"""

from __future__ import annotations

import abc
import itertools
from typing import FrozenSet, Iterator, Set

from repro.core.classification import AlgorithmClass
from repro.core.types import FaultModel, ProcessId


class QuorumSystem(abc.ABC):
    """A threshold quorum system over the processes of a fault model."""

    name: str = "quorum-system"

    def __init__(self, model: FaultModel) -> None:
        self._model = model
        if self.min_quorum_size() > model.n:
            raise ValueError(
                f"{type(self).__name__} needs quorums of "
                f"{self.min_quorum_size()} > n = {model.n} processes"
            )

    @property
    def model(self) -> FaultModel:
        return self._model

    @abc.abstractmethod
    def min_quorum_size(self) -> int:
        """Smallest admissible quorum cardinality."""

    def is_quorum(self, members: Set[ProcessId]) -> bool:
        """Threshold systems: any large-enough subset of Π is a quorum."""
        return (
            len(members) >= self.min_quorum_size()
            and all(0 <= pid < self._model.n for pid in members)
        )

    def minimal_quorums(self) -> Iterator[FrozenSet[ProcessId]]:
        """Enumerate all minimal quorums (use for small ``n`` only)."""
        size = self.min_quorum_size()
        for combo in itertools.combinations(self._model.processes, size):
            yield frozenset(combo)

    # Verifiable properties -------------------------------------------------

    def is_available(self) -> bool:
        """Some quorum exists within the processes that may all be correct."""
        return self.min_quorum_size() <= self._model.n - self._model.b - self._model.f

    def worst_intersection(self) -> int:
        """Minimal size of a pairwise quorum intersection."""
        return max(0, 2 * self.min_quorum_size() - self._model.n)

    def intersection_contains_correct(self) -> bool:
        """Dissemination property over the threshold fail-prone system."""
        return self.worst_intersection() >= self._model.b + 1

    def intersection_masks_faults(self) -> bool:
        """Masking property: correct members outnumber faulty ones."""
        return self.worst_intersection() >= 2 * self._model.b + 1

    def intersection_is_opaque(self) -> bool:
        """Opaque property: correct intersection *strictly* beats the faulty
        members plus the out-of-quorum members that could outvote it."""
        q = self.min_quorum_size()
        n, b = self._model.n, self._model.b
        return (2 * q - n - b) > (n - q + b)


class MajorityQuorumSystem(QuorumSystem):
    """Crash-fault majorities (the ``b = 0`` degenerate case)."""

    name = "majority"

    def min_quorum_size(self) -> int:
        return self._model.n // 2 + 1


class DisseminationQuorumSystem(QuorumSystem):
    """Malkhi-Reiter dissemination quorums — class 3 / PBFT."""

    name = "dissemination"

    def min_quorum_size(self) -> int:
        return (self._model.n + self._model.b) // 2 + 1


class MaskingQuorumSystem(QuorumSystem):
    """Malkhi-Reiter masking quorums — class 2 / MQB."""

    name = "masking"

    def min_quorum_size(self) -> int:
        return (self._model.n + 2 * self._model.b) // 2 + 1


class OpaqueQuorumSystem(QuorumSystem):
    """Malkhi-Reiter opaque quorums — class 1 / FaB Paxos."""

    name = "opaque"

    def min_quorum_size(self) -> int:
        # Smallest q with 3q > 2(n + b): q = ⌊2(n + b)/3⌋ + 1.  At every
        # admissible (n, b) this equals FaB Paxos's TD = ⌈(n + 3b + 1)/2⌉
        # restricted to minimal n — see tests/quorums.
        return (2 * (self._model.n + self._model.b)) // 3 + 1


def quorum_system_for_class(
    algorithm_class: AlgorithmClass, model: FaultModel
) -> QuorumSystem:
    """The quorum family footnote 10 associates with each class."""
    factory = {
        AlgorithmClass.CLASS_1: OpaqueQuorumSystem,
        AlgorithmClass.CLASS_2: MaskingQuorumSystem,
        AlgorithmClass.CLASS_3: DisseminationQuorumSystem,
    }[algorithm_class]
    return factory(model)
