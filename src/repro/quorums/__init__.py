"""Byzantine quorum systems (Malkhi-Reiter [15]; paper footnote 10)."""

from repro.quorums.systems import (
    DisseminationQuorumSystem,
    MajorityQuorumSystem,
    MaskingQuorumSystem,
    OpaqueQuorumSystem,
    QuorumSystem,
    quorum_system_for_class,
)

__all__ = [
    "DisseminationQuorumSystem",
    "MajorityQuorumSystem",
    "MaskingQuorumSystem",
    "OpaqueQuorumSystem",
    "QuorumSystem",
    "quorum_system_for_class",
]
