"""Execution traces of round-model runs.

The engine records one :class:`RoundRecord` per executed round: how many
messages were sent/delivered, whether the communication predicates held, and
optional state snapshots.  Traces power the invariant checkers, the metrics
module and the figure benches (which need to point at the exact round in
which a predicate held or a decision fired).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.types import Decision, ProcessId, RoundInfo


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one executed round."""

    info: RoundInfo
    sent_count: int
    delivered_count: int
    pgood: bool
    pcons: bool
    prel: bool
    #: Optional per-process state snapshots ``pid → (vote, ts, history)``.
    snapshots: Dict[ProcessId, Tuple] = field(default_factory=dict)
    #: Decisions that fired in this round.
    decisions: Tuple[Decision, ...] = ()


@dataclass
class ExecutionTrace:
    """The full record of a run."""

    records: List[RoundRecord] = field(default_factory=list)
    #: First decision of each process.
    decisions: Dict[ProcessId, Decision] = field(default_factory=dict)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)
        for decision in record.decisions:
            self.decisions.setdefault(decision.process, decision)

    @property
    def rounds_executed(self) -> int:
        return len(self.records)

    @property
    def total_messages_sent(self) -> int:
        return sum(record.sent_count for record in self.records)

    @property
    def total_messages_delivered(self) -> int:
        return sum(record.delivered_count for record in self.records)

    def first_decision_round(self) -> Optional[int]:
        """Round number of the earliest decision, or ``None``."""
        rounds = [decision.round for decision in self.decisions.values()]
        return min(rounds) if rounds else None

    def last_decision_round(self) -> Optional[int]:
        """Round number of the latest (first-per-process) decision."""
        rounds = [decision.round for decision in self.decisions.values()]
        return max(rounds) if rounds else None

    def rounds_where(self, *, pcons: Optional[bool] = None) -> List[RoundRecord]:
        """Filter records by predicate outcome."""
        out = []
        for record in self.records:
            if pcons is not None and record.pcons != pcons:
                continue
            out.append(record)
        return out

    def decided_values(self) -> set:
        """The set of values decided by any process in this trace."""
        return {decision.value for decision in self.decisions.values()}
