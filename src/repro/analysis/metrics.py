"""Run metrics: rounds/phases to decision, message counts, state sizes.

These power the latency and message-complexity benches (experiment ids X2,
X3 in DESIGN.md) and the Table-1 bench's "rounds per phase" and "process
state" columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (run.py uses rounds)
    from repro.core.run import ConsensusOutcome


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate measurements extracted from a finished run."""

    rounds_executed: int
    rounds_to_first_decision: Optional[int]
    rounds_to_last_decision: Optional[int]
    phases_to_last_decision: Optional[int]
    messages_sent: int
    messages_delivered: int
    decided_count: int
    max_history_size: int
    state_footprint: tuple

    @classmethod
    def from_outcome(cls, outcome: "ConsensusOutcome") -> "RunMetrics":
        trace = outcome.result.trace
        histories = [
            len(process.state.history)
            for process in outcome.honest_processes.values()
        ]
        return cls(
            rounds_executed=trace.rounds_executed,
            rounds_to_first_decision=trace.first_decision_round(),
            rounds_to_last_decision=trace.last_decision_round(),
            phases_to_last_decision=outcome.phases_to_last_decision,
            messages_sent=trace.total_messages_sent,
            messages_delivered=trace.total_messages_delivered,
            decided_count=len(trace.decisions),
            max_history_size=max(histories) if histories else 0,
            state_footprint=outcome.parameters.state_footprint,
        )

    @property
    def messages_per_round(self) -> float:
        """Average sent messages per executed round."""
        if self.rounds_executed == 0:
            return 0.0
        return self.messages_sent / self.rounds_executed

    def describe(self) -> str:
        return (
            f"rounds={self.rounds_executed}, "
            f"last_decision_round={self.rounds_to_last_decision}, "
            f"phases={self.phases_to_last_decision}, "
            f"msgs={self.messages_sent}, state={'/'.join(self.state_footprint)}"
        )
