"""Run metrics: rounds/phases to decision, message counts, state sizes.

These power the latency and message-complexity benches (experiment ids X2,
X3 in DESIGN.md) and the Table-1 bench's "rounds per phase" and "process
state" columns.  :meth:`RunMetrics.from_outcome` accepts both the
compatibility :class:`~repro.core.run.ConsensusOutcome` and the unified
kernel :class:`~repro.engine.outcome.Outcome` (including metrics-only runs,
which carry no trace — decision rounds come from the decisions themselves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (run.py uses rounds)
    from repro.core.run import ConsensusOutcome
    from repro.engine.outcome import Outcome


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate measurements extracted from a finished run."""

    rounds_executed: int
    rounds_to_first_decision: Optional[int]
    rounds_to_last_decision: Optional[int]
    phases_to_last_decision: Optional[int]
    messages_sent: int
    messages_delivered: int
    decided_count: int
    max_history_size: int
    state_footprint: tuple

    @classmethod
    def from_outcome(
        cls, outcome: Union["ConsensusOutcome", "Outcome"]
    ) -> "RunMetrics":
        histories = [
            len(process.state.history)
            for process in outcome.honest_processes.values()
        ]
        if hasattr(outcome, "result"):  # compatibility ConsensusOutcome
            trace = outcome.result.trace
            rounds_executed = trace.rounds_executed
            first = trace.first_decision_round()
            last = trace.last_decision_round()
            sent = trace.total_messages_sent
            delivered = trace.total_messages_delivered
            decided = len(trace.decisions)
        else:  # unified kernel Outcome (trace-free in metrics mode)
            rounds_executed = outcome.rounds_executed
            first = outcome.rounds_to_first_decision
            last = outcome.rounds_to_last_decision
            sent = outcome.messages_sent
            delivered = outcome.messages_delivered
            decided = len(outcome.decisions)
        return cls(
            rounds_executed=rounds_executed,
            rounds_to_first_decision=first,
            rounds_to_last_decision=last,
            phases_to_last_decision=outcome.phases_to_last_decision,
            messages_sent=sent,
            messages_delivered=delivered,
            decided_count=decided,
            max_history_size=max(histories) if histories else 0,
            state_footprint=outcome.parameters.state_footprint,
        )

    @property
    def messages_per_round(self) -> float:
        """Average sent messages per executed round."""
        if self.rounds_executed == 0:
            return 0.0
        return self.messages_sent / self.rounds_executed

    def describe(self) -> str:
        return (
            f"rounds={self.rounds_executed}, "
            f"last_decision_round={self.rounds_to_last_decision}, "
            f"phases={self.phases_to_last_decision}, "
            f"msgs={self.messages_sent}, state={'/'.join(self.state_footprint)}"
        )
