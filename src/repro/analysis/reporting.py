"""Plain-text tables for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)).rstrip()
    ]
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_float(value: object, digits: int = 2) -> str:
    """Render an optional float for a table cell (``-`` for missing).

    >>> format_float(1.2345), format_float(None), format_float(7)
    ('1.23', '-', '7.00')
    """
    if value is None:
        return "-"
    return f"{float(value):.{digits}f}"


def format_rate(numerator: int, denominator: int) -> str:
    """Render ``numerator/denominator`` as a compact ratio cell.

    >>> format_rate(3, 4), format_rate(0, 0)
    ('3/4', '0/0')
    """
    return f"{numerator}/{denominator}"


def format_kv_block(title: str, pairs: Iterable[tuple]) -> str:
    """A titled key/value block used in bench stdout summaries."""
    lines = [title, "=" * len(title)]
    for key, value in pairs:
        lines.append(f"{key}: {value}")
    return "\n".join(lines)
