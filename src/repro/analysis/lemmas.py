"""Lemma-level checkers: the paper's proof obligations, verified on traces.

Theorem 1's proof rests on four lemmas about honest-process state during
execution.  Given a run recorded with state snapshots
(``run_consensus(..., record_snapshots=True)``), these checkers verify the
observable consequences of each lemma on every phase of the actual
execution:

* **Lemma 4 consequence** — in every phase, all honest processes that
  validated in that phase (``ts == φ`` at the end of its validation round)
  hold the *same* vote;
* **timestamp monotonicity** — an honest ``ts`` never decreases;
* **vote/timestamp consistency** — when an honest process has ``ts = φ``,
  some honest process selected its vote in phase φ (the Lemma 2
  consequence, checkable when histories are recorded);
* **decision support** — every decision in phase φ under ``FLAG = φ`` is
  matched by at least ``TD − b`` honest processes with ``ts = φ``.

These run as assertions in the integration/property suites, giving the
reproduction a proof-shaped safety net beyond end-to-end agreement.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.analysis.invariants import InvariantViolation
from repro.core.run import ConsensusOutcome
from repro.core.types import RoundKind


def _validation_snapshots(outcome: ConsensusOutcome):
    """Yield (phase, {pid: (vote, ts, history)}) at each validation round."""
    for record in outcome.result.trace.records:
        if record.info.kind is RoundKind.VALIDATION and record.snapshots:
            yield record.info.phase, record.snapshots


def check_lemma4_unique_validated_value(outcome: ConsensusOutcome) -> None:
    """No two honest processes validate different values in the same phase."""
    for phase, snapshots in _validation_snapshots(outcome):
        validated: Dict[object, List[int]] = defaultdict(list)
        for pid, snapshot in snapshots.items():
            if snapshot is None:
                continue
            vote, ts, _history = snapshot
            if ts == phase:
                validated[vote].append(pid)
        if len(validated) > 1:
            raise InvariantViolation(
                f"Lemma 4 violated in phase {phase}: "
                f"validated values {dict(validated)!r}"
            )


def check_timestamp_monotonicity(outcome: ConsensusOutcome) -> None:
    """Honest timestamps never decrease across the run."""
    last_ts: Dict[int, int] = {}
    for record in outcome.result.trace.records:
        for pid, snapshot in record.snapshots.items():
            if snapshot is None:
                continue
            _vote, ts, _history = snapshot
            if ts < last_ts.get(pid, 0):
                raise InvariantViolation(
                    f"timestamp of process {pid} decreased "
                    f"({last_ts[pid]} → {ts}) at round {record.info.number}"
                )
            last_ts[pid] = ts


def check_validated_pair_was_selected(outcome: ConsensusOutcome) -> None:
    """Lemma 2 consequence: a pair (v, φ) validated by an honest process was
    selected by some honest process in phase φ (its history contains it).

    Only meaningful for instantiations that record histories (class 3);
    silently passes otherwise.
    """
    if "history" not in outcome.parameters.state_footprint:
        return
    for phase, snapshots in _validation_snapshots(outcome):
        all_histories = set()
        for snapshot in snapshots.values():
            if snapshot is None:
                continue
            all_histories |= set(snapshot[2])
        for pid, snapshot in snapshots.items():
            if snapshot is None:
                continue
            vote, ts, _history = snapshot
            if ts == phase and (vote, phase) not in all_histories:
                raise InvariantViolation(
                    f"process {pid} validated ({vote!r}, {phase}) but no "
                    "honest history contains the pair"
                )


def check_decision_support(outcome: ConsensusOutcome) -> None:
    """Each FLAG=φ decision has ≥ TD − b honest ts=φ supporters."""
    from repro.core.types import Flag

    if outcome.parameters.flag is not Flag.CURRENT_PHASE:
        return
    threshold = outcome.parameters.threshold - outcome.parameters.model.b
    # Snapshot at the validation round of the deciding phase.
    by_phase = dict(_validation_snapshots(outcome))
    for pid, decision in outcome.decisions.items():
        snapshots = by_phase.get(decision.phase)
        if snapshots is None:
            continue
        supporters = sum(
            1
            for snapshot in snapshots.values()
            if snapshot is not None
            and snapshot[0] == decision.value
            and snapshot[1] == decision.phase
        )
        if supporters < threshold:
            raise InvariantViolation(
                f"decision of {pid} on {decision.value!r} in phase "
                f"{decision.phase} has only {supporters} honest supporters "
                f"(need ≥ {threshold})"
            )


ALL_LEMMA_CHECKS = (
    check_lemma4_unique_validated_value,
    check_timestamp_monotonicity,
    check_validated_pair_was_selected,
    check_decision_support,
)


def check_all_lemmas(outcome: ConsensusOutcome) -> None:
    """Run every lemma-level checker on a snapshot-recorded outcome."""
    for check in ALL_LEMMA_CHECKS:
        check(outcome)
