"""Trace recording, invariant checking, metrics and sweep harnesses."""

from repro.analysis.invariants import (
    InvariantViolation,
    check_agreement,
    check_integrity,
    check_termination,
    check_unanimity,
    check_validity,
    evaluate_properties,
)
from repro.analysis.metrics import RunMetrics
from repro.analysis.trace import ExecutionTrace, RoundRecord

__all__ = [
    "ExecutionTrace",
    "InvariantViolation",
    "RoundRecord",
    "RunMetrics",
    "check_agreement",
    "check_integrity",
    "check_termination",
    "check_unanimity",
    "check_validity",
    "evaluate_properties",
]
