"""Resilience sweeps: empirically mapping the Table-1 bounds.

Two tools:

* :func:`force_parameters` — construct a :class:`ConsensusParameters` object
  *bypassing* the constraint validation, so below-bound configurations can
  be executed to *demonstrate* the failures the theory predicts (safety
  violations or permanent null-liveness);
* :func:`sweep_class` — for a class and a grid of ``(n, b)`` / ``(n, f)``,
  run a battery of adversarial scenarios and record whether agreement and
  termination held, producing the raw data behind
  ``benchmarks/bench_table1_classification.py`` and
  ``benchmarks/bench_resilience_sweep.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.classification import AlgorithmClass
from repro.core.parameters import ConsensusParameters
from repro.core.run import run_consensus
from repro.core.selector import AllProcessesSelector, Selector
from repro.core.types import FaultModel, Flag
from repro.faults.crash import CrashSchedule


def force_parameters(
    model: FaultModel,
    threshold: int,
    flag: Flag,
    flv,
    selector: Optional[Selector] = None,
) -> ConsensusParameters:
    """Build parameters without constraint validation (experiments only).

    Regular construction raises on configurations that violate Theorem 1's
    conditions; this helper instantiates them anyway so that benches can
    exhibit the resulting safety/liveness failures.
    """
    params = object.__new__(ConsensusParameters)
    object.__setattr__(params, "model", model)
    object.__setattr__(params, "threshold", threshold)
    object.__setattr__(params, "flag", flag)
    object.__setattr__(params, "flv", flv)
    object.__setattr__(
        params, "selector", selector or AllProcessesSelector(model)
    )
    return params


@dataclass(frozen=True)
class ScenarioResult:
    """One (configuration, scenario) cell of a sweep."""

    n: int
    b: int
    f: int
    scenario: str
    admitted: bool  # did the class's bounds admit this configuration?
    agreement: Optional[bool] = None
    termination: Optional[bool] = None
    phases: Optional[int] = None


#: Byzantine scenarios exercised per configuration (strategy name per slot).
DEFAULT_BYZANTINE_SCENARIOS: Sequence[str] = (
    "silent",
    "equivocator",
    "vote-flipper",
    "high-ts-liar",
    "fake-history-liar",
)


def sweep_class(
    algorithm_class: AlgorithmClass,
    configurations: Sequence[FaultModel],
    *,
    scenarios: Sequence[str] = DEFAULT_BYZANTINE_SCENARIOS,
    max_phases: int = 12,
) -> List[ScenarioResult]:
    """Run each admissible configuration through the scenario battery.

    Non-admissible configurations produce a single ``admitted=False`` row —
    the constructive counterpart of Table 1's ``n`` column.
    """
    from repro.core.classification import build_class_parameters

    results: List[ScenarioResult] = []
    for model in configurations:
        if not algorithm_class.admits(model):
            results.append(
                ScenarioResult(
                    n=model.n, b=model.b, f=model.f,
                    scenario="-", admitted=False,
                )
            )
            continue
        parameters = build_class_parameters(algorithm_class, model)
        for scenario in _applicable(scenarios, model):
            outcome = _run_scenario(parameters, scenario, max_phases)
            results.append(outcome)
    return results


def _applicable(scenarios: Sequence[str], model: FaultModel) -> Sequence[str]:
    if model.b == 0:
        return ("crash",) if model.f else ("fault-free",)
    return scenarios


def _run_scenario(
    parameters: ConsensusParameters, scenario: str, max_phases: int
) -> ScenarioResult:
    model = parameters.model
    byzantine: Dict[int, str] = {}
    crash_schedule = None
    if scenario == "crash":
        crash_schedule = CrashSchedule.crash_first_f(model, round_number=1)
    elif scenario not in ("fault-free",):
        byzantine = {
            model.n - 1 - i: scenario for i in range(model.b)
        }
    initial_values = {
        pid: f"v{pid % 2}"
        for pid in model.processes
        if pid not in byzantine
    }
    outcome = run_consensus(
        parameters,
        initial_values,
        byzantine=byzantine,
        crash_schedule=crash_schedule,
        max_phases=max_phases,
    )
    return ScenarioResult(
        n=model.n, b=model.b, f=model.f,
        scenario=scenario,
        admitted=True,
        agreement=outcome.agreement_holds,
        termination=outcome.all_correct_decided,
        phases=outcome.phases_to_last_decision,
    )
