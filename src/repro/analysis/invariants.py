"""Consensus invariant checkers (the problem definition of Section 2.3).

Each checker takes a finished run (an outcome-like object exposing the
decisions, initial values and fault sets) and raises
:class:`InvariantViolation` with a diagnostic message when the property is
violated.  Boolean wrappers are provided for property-based tests.

Properties checked:

* **Agreement** — no two honest processes decide differently;
* **Validity** — if all processes are honest, decided values are initial
  values of some process;
* **Unanimity** — if all honest processes propose the same ``v`` and an
  honest process decides, it decides ``v``;
* **Termination** — all correct processes eventually decide (checked against
  the executed horizon: the run must have ended with all correct decided);
* **Integrity** — each process decides at most once (guaranteed by
  construction here, but re-checked from the trace for defense in depth).
"""

from __future__ import annotations

from typing import AbstractSet, Mapping

from repro.core.types import Decision, ProcessId, Value


class InvariantViolation(AssertionError):
    """A consensus property was violated in an observed execution."""


def check_agreement(decisions: Mapping[ProcessId, Decision]) -> None:
    """No two honest processes decide differently."""
    values = {}
    for pid, decision in decisions.items():
        values.setdefault(decision.value, pid)
    if len(values) > 1:
        detail = ", ".join(
            f"process {pid} decided {value!r}" for value, pid in values.items()
        )
        raise InvariantViolation(f"agreement violated: {detail}")


def check_validity(
    decisions: Mapping[ProcessId, Decision],
    initial_values: Mapping[ProcessId, Value],
    byzantine: AbstractSet[ProcessId],
) -> None:
    """With no Byzantine processes, decisions must be someone's proposal."""
    if byzantine:
        return
    proposals = set(initial_values.values())
    for pid, decision in decisions.items():
        if decision.value not in proposals:
            raise InvariantViolation(
                f"validity violated: process {pid} decided {decision.value!r}, "
                f"not among proposals {proposals!r}"
            )


def check_unanimity(
    decisions: Mapping[ProcessId, Decision],
    initial_values: Mapping[ProcessId, Value],
    byzantine: AbstractSet[ProcessId],
) -> None:
    """If all honest proposals equal ``v``, every honest decision is ``v``."""
    honest_proposals = {
        value for pid, value in initial_values.items() if pid not in byzantine
    }
    if len(honest_proposals) != 1:
        return
    (common,) = honest_proposals
    for pid, decision in decisions.items():
        if pid in byzantine:
            continue
        if decision.value != common:
            raise InvariantViolation(
                f"unanimity violated: all honest proposed {common!r} but "
                f"process {pid} decided {decision.value!r}"
            )


def check_termination(
    decisions: Mapping[ProcessId, Decision],
    correct: AbstractSet[ProcessId],
) -> None:
    """Every correct process must have decided by the end of the run."""
    missing = sorted(set(correct) - set(decisions))
    if missing:
        raise InvariantViolation(
            f"termination violated: correct processes {missing} did not decide"
        )


def check_integrity(decision_events: list[Decision]) -> None:
    """Each process appears at most once in the stream of decision events."""
    seen: set[ProcessId] = set()
    for event in decision_events:
        if event.process in seen:
            raise InvariantViolation(
                f"integrity violated: process {event.process} decided twice"
            )
        seen.add(event.process)


def evaluate_properties(
    *,
    decided_values: Mapping[ProcessId, Value],
    initial_values: Mapping[ProcessId, Value],
    byzantine: AbstractSet[ProcessId],
    correct: AbstractSet[ProcessId],
) -> Mapping[str, bool]:
    """Boolean summary of the Section 2.3 properties for one finished run.

    Engine-agnostic: both the lockstep ``ConsensusOutcome`` and the timed
    ``TimedOutcome`` reduce to these four mappings, so campaign rows carry
    identical property columns regardless of the engine that produced them.
    """
    values = set(decided_values.values())
    if byzantine:
        validity = True
    else:
        validity = values <= set(initial_values.values())
    honest_proposals = {
        value for pid, value in initial_values.items() if pid not in byzantine
    }
    if len(honest_proposals) == 1:
        (common,) = honest_proposals
        unanimity = all(
            value == common
            for pid, value in decided_values.items()
            if pid not in byzantine
        )
    else:
        unanimity = True
    return {
        "agreement": len(values) <= 1,
        "validity": validity,
        "unanimity": unanimity,
        "termination": set(correct) <= set(decided_values),
    }


def holds(checker, *args, **kwargs) -> bool:
    """Boolean wrapper: True iff ``checker(*args)`` does not raise."""
    try:
        checker(*args, **kwargs)
    except InvariantViolation:
        return False
    return True
