"""repro — generic construction of consensus algorithms for benign and
Byzantine faults.

A full reproduction of Rütti, Milosevic & Schiper (DSN 2010): the generic
round-based consensus algorithm, its three classes of instantiations
(OneThirdRule, FaB Paxos / Paxos, Chandra-Toueg, MQB / PBFT), the randomized
adaptation (Ben-Or), and the simulation substrates they run on (round model,
partial synchrony with communication predicates, Byzantine adversaries,
quorum systems, discrete-event timing, state machine replication).

Quickstart::

    from repro import AlgorithmClass, FaultModel, build_class_parameters, run_consensus

    model = FaultModel(n=4, b=1)                       # PBFT territory
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(params, {0: "A", 2: "B", 3: "A"},
                            byzantine={1: "equivocator"})
    print(outcome.decisions)
"""

from repro.core import (
    AlgorithmClass,
    AllProcessesSelector,
    ConsensusOutcome,
    ConsensusParameters,
    ConsensusState,
    FLVClass1,
    FLVClass2,
    FLVClass3,
    FLVFunction,
    FaultModel,
    Flag,
    GenericConsensusConfig,
    GenericConsensusProcess,
    LeaderSelector,
    ParameterError,
    RotatingCoordinatorSelector,
    RotatingSubsetSelector,
    RoundKind,
    RoundStructure,
    Selector,
    build_class_parameters,
    classify,
    run_consensus,
)
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE

__version__ = "1.0.0"

__all__ = [
    "ANY_VALUE",
    "AlgorithmClass",
    "AllProcessesSelector",
    "ConsensusOutcome",
    "ConsensusParameters",
    "ConsensusState",
    "FLVClass1",
    "FLVClass2",
    "FLVClass3",
    "FLVFunction",
    "FaultModel",
    "Flag",
    "GenericConsensusConfig",
    "GenericConsensusProcess",
    "LeaderSelector",
    "NULL_VALUE",
    "ParameterError",
    "RotatingCoordinatorSelector",
    "RotatingSubsetSelector",
    "RoundKind",
    "RoundStructure",
    "Selector",
    "__version__",
    "build_class_parameters",
    "classify",
    "run_consensus",
]
