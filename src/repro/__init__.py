"""repro — generic construction of consensus algorithms for benign and
Byzantine faults.

A full reproduction of Rütti, Milosevic & Schiper (DSN 2010): the generic
round-based consensus algorithm, its three classes of instantiations
(OneThirdRule, FaB Paxos / Paxos, Chandra-Toueg, MQB / PBFT), the randomized
adaptation (Ben-Or), and the simulation substrates they run on (round model,
partial synchrony with communication predicates, Byzantine adversaries,
quorum systems, discrete-event timing, state machine replication).

Quickstart::

    from repro import AlgorithmClass, FaultModel, build_class_parameters, run_consensus

    model = FaultModel(n=4, b=1)                       # PBFT territory
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(params, {0: "A", 2: "B", 3: "A"},
                            byzantine={1: "equivocator"})
    print(outcome.decisions)

Execution kernel
----------------

Both timing disciplines run on one kernel (:mod:`repro.engine`):
:func:`~repro.engine.build_instance` assembles an instance once,
:func:`~repro.engine.run_instance` executes it under a
:class:`~repro.engine.LockstepScheduler` (oracle communication predicates)
or a :class:`~repro.engine.TimedScheduler` (Δ-paced deadline delivery over
partial synchrony), and ``observe="full" | "metrics"`` selects between a
complete execution trace and the trace-free hot path campaign sweeps use.
:func:`run_consensus` and :func:`repro.eventsim.run_timed_consensus` are
thin compatibility wrappers over it.

Scenarios
---------

:mod:`repro.scenarios` is the one dialect every environment is described
in: a declarative :class:`~repro.scenarios.ScenarioSpec` (Byzantine
placement and strategy per slot, crash script, communication schedule —
reliable / good-bad with pluggable bad behaviour / partition / i.i.d. loss
/ silence / GST — and timed-network conditions) compiles onto **both**
schedulers via :func:`~repro.scenarios.compile_scenario`.  Named presets
live in :data:`~repro.scenarios.SCENARIO_REGISTRY` (``repro scenario
list``); the adversary presets, the campaign ``scenarios`` axis and the
``gauntlet`` campaign all resolve through it::

    from repro.scenarios import run_scenario

    outcome = run_scenario("partition_heal", params, engine="timed", rng=7)

Campaigns
---------

:mod:`repro.campaigns` scales single runs into declarative scenario
sweeps: a :class:`~repro.campaigns.CampaignSpec` crosses algorithms,
``(n, b, f)`` models, scenarios, engines and
repetitions into a grid; :func:`~repro.campaigns.run_campaign` executes it
on a process pool with per-run fault isolation and coordinate-derived
seeds (byte-identical results at any worker count); results persist as
JSONL rows and aggregate into per-cell latency / message-complexity
summaries.  From the shell: ``python -m repro.cli campaign run grid-demo
--workers 4`` then ``python -m repro.cli campaign report
grid-demo.results.jsonl``.
"""

from repro.core import (
    AlgorithmClass,
    AllProcessesSelector,
    ConsensusOutcome,
    ConsensusParameters,
    ConsensusState,
    FLVClass1,
    FLVClass2,
    FLVClass3,
    FLVFunction,
    FaultModel,
    Flag,
    GenericConsensusConfig,
    GenericConsensusProcess,
    LeaderSelector,
    ParameterError,
    RotatingCoordinatorSelector,
    RotatingSubsetSelector,
    RoundKind,
    RoundStructure,
    Selector,
    build_class_parameters,
    classify,
    run_consensus,
)
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE

__version__ = "1.0.0"

__all__ = [
    "ANY_VALUE",
    "AlgorithmClass",
    "AllProcessesSelector",
    "ConsensusOutcome",
    "ConsensusParameters",
    "ConsensusState",
    "FLVClass1",
    "FLVClass2",
    "FLVClass3",
    "FLVFunction",
    "FaultModel",
    "Flag",
    "GenericConsensusConfig",
    "GenericConsensusProcess",
    "LeaderSelector",
    "NULL_VALUE",
    "ParameterError",
    "RotatingCoordinatorSelector",
    "RotatingSubsetSelector",
    "RoundKind",
    "RoundStructure",
    "Selector",
    "__version__",
    "build_class_parameters",
    "classify",
    "run_consensus",
]
