"""The public home of named Byzantine strategies.

:data:`STRATEGY_REGISTRY` maps the strategy names accepted throughout the
library (``run_consensus(byzantine=...)``, campaign fault scripts, the CLI)
to their factories, and :func:`build_byzantine` resolves one *spec* — a
name, a ready instance, or a factory — into a live
:class:`~repro.faults.byzantine.ByzantineStrategy`.

Both used to live in :mod:`repro.core.run` (where the timed runtime and the
network stack reached them through a private ``_build_byzantine`` import);
they moved here so every execution path assembles adversaries through one
public API.  :mod:`repro.core.run` keeps deprecated aliases.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.core.parameters import ConsensusParameters
from repro.core.types import ProcessId
from repro.faults.byzantine import (
    AdaptiveLiar,
    ByzantineStrategy,
    Equivocator,
    FakeHistoryLiar,
    HighTimestampLiar,
    RandomNoise,
    SilentByzantine,
    VoteFlipper,
)

#: Named Byzantine strategies accepted wherever a ``ByzantineSpec`` is.
STRATEGY_REGISTRY: Dict[str, Callable[..., ByzantineStrategy]] = {
    "silent": SilentByzantine,
    "noise": RandomNoise,
    "equivocator": Equivocator,
    "vote-flipper": VoteFlipper,
    "high-ts-liar": HighTimestampLiar,
    "fake-history-liar": FakeHistoryLiar,
    "adaptive-liar": AdaptiveLiar,
}

#: A Byzantine slot is a strategy name, an instance, or a factory.
ByzantineSpec = Union[
    str, ByzantineStrategy, Callable[[ProcessId, ConsensusParameters], ByzantineStrategy]
]


def build_byzantine(
    pid: ProcessId, spec: ByzantineSpec, parameters: ConsensusParameters
) -> ByzantineStrategy:
    """Resolve a Byzantine spec into a strategy instance for process ``pid``."""
    if isinstance(spec, ByzantineStrategy):
        return spec
    if isinstance(spec, str):
        try:
            factory = STRATEGY_REGISTRY[spec]
        except KeyError:
            raise ValueError(
                f"unknown Byzantine strategy {spec!r}; "
                f"known: {sorted(STRATEGY_REGISTRY)}"
            ) from None
        return factory(pid, parameters)
    return spec(pid, parameters)
