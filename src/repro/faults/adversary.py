"""Adversary scenario bundles: thin lookups into the scenario layer.

A :class:`AdversaryScenario` packages everything an adversarial execution
needs — which processes are Byzantine and with which strategy, how delivery
behaves, and which crash schedule applies.  Since the declarative scenario
layer (:mod:`repro.scenarios`) exists, each preset here is a thin wrapper:
the factory looks its :class:`~repro.scenarios.spec.ScenarioSpec` up in
:data:`~repro.scenarios.registry.SCENARIO_REGISTRY`, compiles it for the
requested model, and :meth:`AdversaryScenario.run` executes through the
unified kernel (:func:`repro.engine.run_instance`).  The old private run
path — hand-assembled policies handed to ``run_consensus`` — is kept only
for callers that override ``policy=``/``crash_schedule=`` explicitly, and
is deprecated.

=====================  =========================================================
preset                 description
=====================  =========================================================
``worst_case``         max-b Byzantine (strongest strategy per slot), permanent
                       synchrony — attacks must be beaten in one phase
``partition_heal``     network split during a bad prefix, then a good period
``async_then_sync``    random loss until a configurable GST round
``silent_minority``    max-b silent Byzantine (pure withholding)
``crash_storm``        benign: all f crashes land in the first round
=====================  =========================================================

(These five and more are also registered as campaign-sweepable scenarios;
see ``repro scenario list``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional

from repro.core.parameters import ConsensusParameters
from repro.core.run import (
    ByzantineSpec,
    ConsensusOutcome,
    outcome_from_kernel,
    run_consensus,
)
from repro.core.types import FaultModel, ProcessId, Value
from repro.faults.crash import CrashSchedule
from repro.rounds.policies import DeliveryPolicy
from repro.scenarios.compile import compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec


@dataclass
class AdversaryScenario:
    """A named, reproducible adversarial setting.

    When built from a preset, ``spec`` carries the declarative
    :class:`ScenarioSpec` and :meth:`run` compiles it freshly per run (so
    repeated runs are identically seeded); the ``byzantine`` / ``policy`` /
    ``crash_schedule`` fields hold the compiled artifacts for inspection
    and for callers that assembled scenarios by hand.
    """

    name: str
    byzantine: Dict[ProcessId, ByzantineSpec] = field(default_factory=dict)
    policy: Optional[DeliveryPolicy] = None
    crash_schedule: Optional[CrashSchedule] = None
    max_phases: int = 15
    #: The declarative source of this scenario (presets always set it).
    spec: Optional[ScenarioSpec] = None
    #: Seed for per-run compilation of ``spec``.
    seed: int = 0

    def run(
        self,
        parameters: ConsensusParameters,
        initial_values: Mapping[ProcessId, Value],
        **kwargs,
    ) -> ConsensusOutcome:
        """Execute one consensus instance under this scenario.

        Runs through the unified kernel: the spec is compiled for
        ``parameters.model`` with this scenario's seed and executed via
        :func:`repro.engine.run_instance`.  Explicit ``policy=`` /
        ``crash_schedule=`` / ``byzantine=`` overrides fall back to the
        legacy ``run_consensus`` path.
        """
        if self.spec is None or any(
            key in kwargs for key in ("policy", "crash_schedule", "byzantine")
        ):
            kwargs.setdefault("byzantine", self.byzantine)
            kwargs.setdefault("policy", self.policy)
            kwargs.setdefault("crash_schedule", self.crash_schedule)
            kwargs.setdefault("max_phases", self.max_phases)
            return run_consensus(parameters, initial_values, **kwargs)

        from repro.engine.assembly import build_instance
        from repro.engine.kernel import OBSERVE_FULL, run_instance

        compiled = compile_scenario(
            self.spec, parameters.model, "lockstep", self.seed
        )
        instance = build_instance(
            parameters,
            initial_values,
            config=kwargs.pop("config", None),
            byzantine=compiled.byzantine,
        )
        outcome = run_instance(
            instance,
            compiled.scheduler,
            max_phases=kwargs.pop("max_phases", self.max_phases),
            observe=OBSERVE_FULL,
            crash_schedule=compiled.crash_schedule,
            record_snapshots=kwargs.pop("record_snapshots", False),
        )
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        return outcome_from_kernel(instance, outcome)

    def honest_values(self, model: FaultModel, split: bool = True) -> Dict:
        """Standard proposals for the scenario's honest processes."""
        return {
            pid: (f"v{pid % 2}" if split else "v")
            for pid in model.processes
            if pid not in self.byzantine
        }


def _from_spec(
    spec: ScenarioSpec, model: FaultModel, seed: int = 0
) -> AdversaryScenario:
    """Compile a declarative spec into the legacy bundle shape."""
    # The legacy presets degrade gracefully on models without Byzantine
    # room instead of refusing them.
    if spec.byzantine and model.b == 0:
        spec = replace(spec, byzantine=(), byzantine_count=-1)
    compiled = compile_scenario(spec, model, "lockstep", seed)
    return AdversaryScenario(
        name=spec.name,
        byzantine=dict(compiled.byzantine),
        policy=compiled.scheduler.policy,
        crash_schedule=compiled.crash_schedule,
        max_phases=compiled.max_phases(),
        spec=spec,
        seed=seed,
    )


def worst_case(model: FaultModel) -> AdversaryScenario:
    """Max-b Byzantine with the strongest strategy mix, full synchrony."""
    return _from_spec(get_scenario("worst_case"), model)


def partition_heal(
    model: FaultModel, heal_round: int = 7, seed: int = 0
) -> AdversaryScenario:
    """A network partition until ``heal_round``, then a good period."""
    spec = get_scenario("partition_heal")
    spec = replace(
        spec,
        comm=replace(spec.comm, good_from=heal_round),
        max_phases=heal_round + 8,
    )
    return _from_spec(spec, model, seed)


def async_then_sync(
    model: FaultModel, gst_round: int = 10, seed: int = 0
) -> AdversaryScenario:
    """Random loss before a GST-style round, good afterwards."""
    spec = get_scenario("async_then_sync")
    spec = replace(
        spec,
        comm=replace(spec.comm, good_from=gst_round),
        max_phases=gst_round + 8,
    )
    return _from_spec(spec, model, seed)


def silent_minority(model: FaultModel) -> AdversaryScenario:
    """All b Byzantine processes withhold everything."""
    return _from_spec(get_scenario("silent_minority"), model)


def crash_storm(model: FaultModel) -> AdversaryScenario:
    """Benign: all f crashes in round 1, messages lost."""
    return _from_spec(get_scenario("crash_storm"), model)


#: All presets, keyed by name.
SCENARIO_PRESETS: Dict[str, Callable[[FaultModel], AdversaryScenario]] = {
    "worst_case": worst_case,
    "partition_heal": partition_heal,
    "async_then_sync": async_then_sync,
    "silent_minority": silent_minority,
    "crash_storm": crash_storm,
}


def build_scenario(name: str, model: FaultModel, **kwargs) -> AdversaryScenario:
    """Construct a preset scenario by name."""
    try:
        factory = SCENARIO_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_PRESETS)}"
        ) from None
    return factory(model, **kwargs)
