"""Adversary scenario bundles: strategy placement + network control.

A :class:`AdversaryScenario` packages everything an adversarial execution
needs — which processes are Byzantine and with which strategy, how delivery
behaves, and which crash schedule applies — behind named presets used by
the sweeps, benches and examples:

=====================  =========================================================
preset                 description
=====================  =========================================================
``worst_case``         max-b Byzantine (strongest strategy per slot), permanent
                       synchrony — attacks must be beaten in one phase
``partition_heal``     network split during a bad prefix, then a good period
``async_then_sync``    random loss until a configurable GST round
``silent_minority``    max-b silent Byzantine (pure withholding)
``crash_storm``        benign: all f crashes land in the first round
=====================  =========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.core.parameters import ConsensusParameters
from repro.core.run import ByzantineSpec, ConsensusOutcome, run_consensus
from repro.core.types import FaultModel, ProcessId, Value
from repro.faults.crash import CrashSchedule
from repro.rounds.policies import (
    DeliveryPolicy,
    GoodBadPolicy,
    ReliablePolicy,
    partition_behavior,
)
from repro.rounds.schedule import GoodBadSchedule


@dataclass
class AdversaryScenario:
    """A named, reproducible adversarial setting."""

    name: str
    byzantine: Dict[ProcessId, ByzantineSpec] = field(default_factory=dict)
    policy: Optional[DeliveryPolicy] = None
    crash_schedule: Optional[CrashSchedule] = None
    max_phases: int = 15

    def run(
        self,
        parameters: ConsensusParameters,
        initial_values: Mapping[ProcessId, Value],
        **kwargs,
    ) -> ConsensusOutcome:
        """Execute one consensus instance under this scenario."""
        kwargs.setdefault("byzantine", self.byzantine)
        kwargs.setdefault("policy", self.policy)
        kwargs.setdefault("crash_schedule", self.crash_schedule)
        kwargs.setdefault("max_phases", self.max_phases)
        return run_consensus(parameters, initial_values, **kwargs)

    def honest_values(self, model: FaultModel, split: bool = True) -> Dict:
        """Standard proposals for the scenario's honest processes."""
        return {
            pid: (f"v{pid % 2}" if split else "v")
            for pid in model.processes
            if pid not in self.byzantine
        }


def worst_case(model: FaultModel) -> AdversaryScenario:
    """Max-b Byzantine with the strongest strategy mix, full synchrony."""
    strategies = ["equivocator", "high-ts-liar", "fake-history-liar", "adaptive-liar"]
    byzantine = {
        model.n - 1 - i: strategies[i % len(strategies)] for i in range(model.b)
    }
    return AdversaryScenario(
        name="worst_case", byzantine=byzantine, policy=ReliablePolicy()
    )


def partition_heal(
    model: FaultModel, heal_round: int = 7, seed: int = 0
) -> AdversaryScenario:
    """A network partition until ``heal_round``, then a good period."""
    half = model.n // 2
    groups = [range(half), range(half, model.n)]
    policy = GoodBadPolicy(
        GoodBadSchedule.good_after(heal_round),
        bad_behavior=partition_behavior(groups),
        rng=random.Random(seed),
    )
    byzantine = (
        {model.n - 1: "equivocator"} if model.b > 0 else {}
    )
    return AdversaryScenario(
        name="partition_heal",
        byzantine=byzantine,
        policy=policy,
        max_phases=heal_round + 8,
    )


def async_then_sync(
    model: FaultModel, gst_round: int = 10, seed: int = 0
) -> AdversaryScenario:
    """Random loss before a GST-style round, good afterwards."""
    policy = GoodBadPolicy(
        GoodBadSchedule.good_after(gst_round), rng=random.Random(seed)
    )
    byzantine = {model.n - 1: "adaptive-liar"} if model.b > 0 else {}
    return AdversaryScenario(
        name="async_then_sync",
        byzantine=byzantine,
        policy=policy,
        max_phases=gst_round + 8,
    )


def silent_minority(model: FaultModel) -> AdversaryScenario:
    """All b Byzantine processes withhold everything."""
    byzantine = {model.n - 1 - i: "silent" for i in range(model.b)}
    return AdversaryScenario(
        name="silent_minority", byzantine=byzantine, policy=ReliablePolicy()
    )


def crash_storm(model: FaultModel) -> AdversaryScenario:
    """Benign: all f crashes in round 1, messages lost."""
    return AdversaryScenario(
        name="crash_storm",
        crash_schedule=CrashSchedule.crash_first_f(model, 1, clean=False),
        policy=ReliablePolicy(),
    )


#: All presets, keyed by name.
SCENARIO_PRESETS: Dict[str, Callable[[FaultModel], AdversaryScenario]] = {
    "worst_case": worst_case,
    "partition_heal": partition_heal,
    "async_then_sync": async_then_sync,
    "silent_minority": silent_minority,
    "crash_storm": crash_storm,
}


def build_scenario(name: str, model: FaultModel, **kwargs) -> AdversaryScenario:
    """Construct a preset scenario by name."""
    try:
        factory = SCENARIO_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_PRESETS)}"
        ) from None
    return factory(model, **kwargs)
