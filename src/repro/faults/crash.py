"""Crash-fault injection (the ≤ f faulty honest processes of the model).

A crash in the round model happens *during* a round: the process may send to
a (possibly empty) subset of its destinations and then stops forever.  A
:class:`CrashSchedule` describes when each doomed process crashes and which
prefix of its outbound messages survives; the engine applies it when
collecting the outbound matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.core.types import FaultModel, ProcessId, Round


@dataclass(frozen=True)
class CrashEvent:
    """Process ``process`` crashes in round ``round``.

    During the crash round only destinations in ``deliver_to`` still receive
    its messages (``None`` means all destinations: the crash takes effect
    just after the send step).  From the next round on, the process is
    silent and no longer takes transition steps.
    """

    process: ProcessId
    round: Round
    deliver_to: Optional[FrozenSet[ProcessId]] = None

    def surviving(self, destinations: Iterable[ProcessId]) -> FrozenSet[ProcessId]:
        """Destinations that still receive the crash-round messages."""
        dests = frozenset(destinations)
        if self.deliver_to is None:
            return dests
        return dests & self.deliver_to


class CrashSchedule:
    """A set of planned crash events, at most ``f`` of them."""

    def __init__(self, model: FaultModel, events: Iterable[CrashEvent] = ()) -> None:
        self._model = model
        self._events: Dict[ProcessId, CrashEvent] = {}
        for event in events:
            self.add(event)

    @classmethod
    def none(cls, model: FaultModel) -> "CrashSchedule":
        """No crashes."""
        return cls(model)

    @classmethod
    def crash_first_f(
        cls, model: FaultModel, round_number: Round = 1, *, clean: bool = True
    ) -> "CrashSchedule":
        """Crash processes ``0..f-1`` in ``round_number``.

        ``clean=True`` lets the crash-round messages through (crash after
        send); ``clean=False`` drops them all (crash before send).
        """
        deliver: Optional[FrozenSet[ProcessId]] = None if clean else frozenset()
        events = [
            CrashEvent(pid, round_number, deliver) for pid in range(model.f)
        ]
        return cls(model, events)

    def add(self, event: CrashEvent) -> None:
        if event.process in self._events:
            raise ValueError(f"process {event.process} already has a crash event")
        if not 0 <= event.process < self._model.n:
            raise ValueError(f"process id {event.process} out of range")
        if event.round < 1:
            raise ValueError(f"crash round must be ≥ 1, got {event.round}")
        if len(self._events) >= self._model.f:
            raise ValueError(f"cannot plan more than f={self._model.f} crashes")
        self._events[event.process] = event

    @property
    def doomed(self) -> FrozenSet[ProcessId]:
        """Processes that will eventually crash (not *correct* in the model)."""
        return frozenset(self._events)

    def event_for(self, pid: ProcessId) -> Optional[CrashEvent]:
        return self._events.get(pid)

    def is_down(self, pid: ProcessId, round_number: Round) -> bool:
        """True once ``pid`` has fully crashed before ``round_number``."""
        event = self._events.get(pid)
        return event is not None and round_number > event.round

    def filter_outbound(
        self,
        pid: ProcessId,
        round_number: Round,
        outbound: Mapping[ProcessId, object],
    ) -> Dict[ProcessId, object]:
        """Apply the crash semantics to one process's outbound messages."""
        event = self._events.get(pid)
        if event is None or round_number < event.round:
            return dict(outbound)
        if round_number > event.round:
            return {}
        surviving = event.surviving(outbound.keys())
        return {dest: payload for dest, payload in outbound.items() if dest in surviving}
