"""Byzantine process strategies.

A Byzantine process "exhibits arbitrary behavior" (Section 2.1).  In the
round model this means: in every round it may send any payload to any subset
of processes, different payloads to different receivers (equivocation), and
its transition function is unconstrained.  Two things it can *not* do — and
the engine enforces — are impersonating honest senders and forging
signatures (in the authenticated stack).

The strategies below cover the attack surface of the generic algorithm:

========================  =====================================================
Strategy                  Attack
========================  =====================================================
:class:`SilentByzantine`  withholds all messages (liveness pressure)
:class:`RandomNoise`      sends malformed payloads (parser robustness)
:class:`Equivocator`      sends conflicting well-formed values per receiver
:class:`VoteFlipper`      pushes a fixed evil value, claiming it validated now
:class:`HighTimestampLiar` claims an enormous timestamp for its evil vote
                          (attacks the class-2 timestamp mechanism)
:class:`FakeHistoryLiar`  forges history certificates for its evil vote
                          (attacks the class-3 history mechanism)
:class:`AdaptiveLiar`     observes honest votes and amplifies the minority
                          value, equivocating across receivers
========================  =====================================================

All strategies are well-behaved :class:`~repro.rounds.base.RoundProcess`
implementations so the engine runs them exactly like honest code.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.parameters import ConsensusParameters
from repro.core.types import (
    DecisionMessage,
    ProcessId,
    RoundInfo,
    RoundKind,
    SelectionMessage,
    ValidationMessage,
)
from repro.rounds.base import Inbound, Outbound, RoundProcess


class ByzantineStrategy(RoundProcess):
    """Base class holding the identity/parameters every strategy needs."""

    def __init__(self, pid: ProcessId, parameters: ConsensusParameters) -> None:
        self.pid = pid
        self.parameters = parameters
        self.model = parameters.model
        self.last_inbox: Inbound = {}
        self._full_selector = frozenset(self.model.processes)

    @property
    def everyone(self) -> range:
        return self.model.processes

    @property
    def full_selector(self) -> frozenset:
        return self._full_selector

    def receive(self, info: RoundInfo, received: Inbound) -> None:
        """Default: remember what was seen (adaptive strategies use it)."""
        self.last_inbox = dict(received)

    # Helpers -----------------------------------------------------------

    def selection_payload(
        self, vote: object, ts: int, history: frozenset
    ) -> SelectionMessage:
        return SelectionMessage(
            vote=vote, ts=ts, history=history, selector=self.full_selector
        )

    def broadcast(self, payload: object) -> Outbound:
        return {dest: payload for dest in self.everyone}


class SilentByzantine(ByzantineStrategy):
    """Never sends anything — maximal message withholding."""

    def send(self, info: RoundInfo) -> Outbound:
        return {}


class RandomNoise(ByzantineStrategy):
    """Sends structurally invalid payloads; honest parsers must drop them."""

    def __init__(
        self,
        pid: ProcessId,
        parameters: ConsensusParameters,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(pid, parameters)
        self._rng = rng or random.Random(pid)

    def send(self, info: RoundInfo) -> Outbound:
        garbage_pool = [
            "garbage",
            42,
            (1, 2, 3),
            {"vote": "not-a-message"},
            SelectionMessage("x", -1, frozenset(), frozenset()),  # negative ts
            SelectionMessage("x", 0, frozenset({("bad",)}), frozenset()),  # 1-tuple
            ValidationMessage("x", frozenset({"not-an-id"})),
            DecisionMessage("x", -5),
            None,
        ]
        return {
            dest: self._rng.choice(garbage_pool) for dest in self.everyone
        }


class Equivocator(ByzantineStrategy):
    """Sends value ``values[0]`` to even receivers, ``values[1]`` to odd ones.

    The classic double-dealing attack: without ``Pcons`` (or an echo
    protocol) in the selection round, honest validators could select
    different values.
    """

    def __init__(
        self,
        pid: ProcessId,
        parameters: ConsensusParameters,
        values: Sequence[object] = ("evil-0", "evil-1"),
    ) -> None:
        super().__init__(pid, parameters)
        if len(values) < 2:
            raise ValueError("Equivocator needs at least two values")
        self.values = tuple(values)

    def _value_for(self, dest: ProcessId) -> object:
        return self.values[dest % 2]

    def send(self, info: RoundInfo) -> Outbound:
        out: Dict[ProcessId, object] = {}
        phase = info.phase
        for dest in self.everyone:
            value = self._value_for(dest)
            if info.kind is RoundKind.SELECTION:
                history = frozenset({(value, 0), (value, max(phase - 1, 0))})
                out[dest] = self.selection_payload(value, max(phase - 1, 0), history)
            elif info.kind is RoundKind.VALIDATION:
                out[dest] = ValidationMessage(value, self.full_selector)
            else:
                out[dest] = DecisionMessage(value, phase)
        return out


class VoteFlipper(ByzantineStrategy):
    """Relentlessly pushes one evil value, claiming it was validated now."""

    def __init__(
        self,
        pid: ProcessId,
        parameters: ConsensusParameters,
        evil_value: object = "evil",
    ) -> None:
        super().__init__(pid, parameters)
        self.evil_value = evil_value

    def send(self, info: RoundInfo) -> Outbound:
        phase = info.phase
        if info.kind is RoundKind.SELECTION:
            history = frozenset(
                {(self.evil_value, p) for p in range(phase)}
            ) or frozenset({(self.evil_value, 0)})
            payload: object = self.selection_payload(
                self.evil_value, max(phase - 1, 0), history
            )
        elif info.kind is RoundKind.VALIDATION:
            payload = ValidationMessage(self.evil_value, self.full_selector)
        else:
            payload = DecisionMessage(self.evil_value, phase)
        return self.broadcast(payload)


class HighTimestampLiar(ByzantineStrategy):
    """Claims an absurdly high timestamp for its evil vote.

    Against class-2 FLV this tries to make the fake vote dominate line 1 of
    Algorithm 3 (every honest message has a strictly smaller timestamp, so
    the liar's message gathers full support); line 2's ``> b`` filter is what
    must stop it.
    """

    def __init__(
        self,
        pid: ProcessId,
        parameters: ConsensusParameters,
        evil_value: object = "evil",
        timestamp: int = 10**6,
    ) -> None:
        super().__init__(pid, parameters)
        self.evil_value = evil_value
        self.timestamp = timestamp

    def send(self, info: RoundInfo) -> Outbound:
        phase = info.phase
        if info.kind is RoundKind.SELECTION:
            payload: object = self.selection_payload(
                self.evil_value, self.timestamp, frozenset({(self.evil_value, 0)})
            )
        elif info.kind is RoundKind.VALIDATION:
            payload = ValidationMessage(self.evil_value, self.full_selector)
        else:
            payload = DecisionMessage(self.evil_value, self.timestamp)
        return self.broadcast(payload)


class FakeHistoryLiar(ByzantineStrategy):
    """Forges a rich history certifying its evil vote at every phase.

    Against class-3 FLV this attacks line 2 of Algorithm 4: the forged
    ``(evil, ts)`` pairs would certify the evil vote if histories from ≤ b
    processes sufficed.  The ``> b`` support requirement is what must stop
    it.
    """

    def __init__(
        self,
        pid: ProcessId,
        parameters: ConsensusParameters,
        evil_value: object = "evil",
    ) -> None:
        super().__init__(pid, parameters)
        self.evil_value = evil_value

    def send(self, info: RoundInfo) -> Outbound:
        phase = info.phase
        forged_history = frozenset(
            {(self.evil_value, p) for p in range(phase + 1)}
        )
        if info.kind is RoundKind.SELECTION:
            payload: object = self.selection_payload(
                self.evil_value, max(phase - 1, 0), forged_history
            )
        elif info.kind is RoundKind.VALIDATION:
            payload = ValidationMessage(self.evil_value, self.full_selector)
        else:
            payload = DecisionMessage(self.evil_value, phase)
        return self.broadcast(payload)


class AdaptiveLiar(ByzantineStrategy):
    """Observes honest votes and pushes the minority value, equivocating.

    The strongest scripted adversary in the library: it tries to keep the
    system split by telling each half of the receivers that the value *they*
    do not prefer is winning.
    """

    def __init__(
        self,
        pid: ProcessId,
        parameters: ConsensusParameters,
        fallback: object = "evil",
    ) -> None:
        super().__init__(pid, parameters)
        self.fallback = fallback
        self._observed_votes: List[object] = []

    def receive(self, info: RoundInfo, received: Inbound) -> None:
        super().receive(info, received)
        for payload in received.values():
            if isinstance(payload, SelectionMessage):
                self._observed_votes.append(payload.vote)
            elif isinstance(payload, DecisionMessage):
                self._observed_votes.append(payload.vote)

    def _split_values(self) -> tuple:
        if not self._observed_votes:
            return (self.fallback, self.fallback)
        counts: Dict[object, int] = {}
        for vote in self._observed_votes:
            counts[vote] = counts.get(vote, 0) + 1
        ranked = sorted(
            counts.items(), key=lambda item: (item[1], repr(item[0]))
        )
        minority = ranked[0][0]
        majority = ranked[-1][0]
        return (minority, majority)

    def send(self, info: RoundInfo) -> Outbound:
        minority, majority = self._split_values()
        phase = info.phase
        out: Dict[ProcessId, object] = {}
        for dest in self.everyone:
            value = minority if dest % 2 == 0 else majority
            if info.kind is RoundKind.SELECTION:
                history = frozenset({(value, p) for p in range(phase + 1)})
                out[dest] = self.selection_payload(value, max(phase - 1, 0), history)
            elif info.kind is RoundKind.VALIDATION:
                out[dest] = ValidationMessage(value, self.full_selector)
            else:
                out[dest] = DecisionMessage(value, phase)
        return out
