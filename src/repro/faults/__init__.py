"""Fault injection: crash schedules, Byzantine strategies, and the registry.

:mod:`repro.faults.registry` is the public home of the named-strategy
registry and :func:`build_byzantine`, the single resolver every execution
path (lockstep, timed, Pcons stack, randomized) uses to turn a Byzantine
*spec* — a name, an instance, or a factory — into a live strategy.
"""

from repro.faults.byzantine import (
    AdaptiveLiar,
    ByzantineStrategy,
    Equivocator,
    FakeHistoryLiar,
    HighTimestampLiar,
    RandomNoise,
    SilentByzantine,
    VoteFlipper,
)
from repro.faults.crash import CrashEvent, CrashSchedule
from repro.faults.registry import (
    STRATEGY_REGISTRY,
    ByzantineSpec,
    build_byzantine,
)

__all__ = [
    "AdaptiveLiar",
    "ByzantineSpec",
    "ByzantineStrategy",
    "CrashEvent",
    "CrashSchedule",
    "Equivocator",
    "FakeHistoryLiar",
    "HighTimestampLiar",
    "RandomNoise",
    "STRATEGY_REGISTRY",
    "SilentByzantine",
    "VoteFlipper",
    "build_byzantine",
]
