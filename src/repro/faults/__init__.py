"""Fault injection: crash schedules and Byzantine strategies."""

from repro.faults.byzantine import (
    AdaptiveLiar,
    ByzantineStrategy,
    Equivocator,
    FakeHistoryLiar,
    HighTimestampLiar,
    RandomNoise,
    SilentByzantine,
    VoteFlipper,
)
from repro.faults.crash import CrashEvent, CrashSchedule

__all__ = [
    "AdaptiveLiar",
    "ByzantineStrategy",
    "CrashEvent",
    "CrashSchedule",
    "Equivocator",
    "FakeHistoryLiar",
    "HighTimestampLiar",
    "RandomNoise",
    "SilentByzantine",
    "VoteFlipper",
]
