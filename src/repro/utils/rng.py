"""Seeded randomness with per-consumer independent streams.

Simulation components (adversaries, latency models, randomized consensus
coins) each derive an independent ``random.Random`` stream from a single run
seed so that (a) whole runs are reproducible from one integer and (b) adding a
new consumer does not perturb the streams of existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


class SeededRng:
    """A deterministic factory of named random streams.

    Example::

        rng = SeededRng(42)
        coin = rng.stream("coin", process=3)
        net = rng.stream("latency")
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed of this factory."""
        return self._seed

    def stream(self, name: str, **scope: object) -> random.Random:
        """Return a ``random.Random`` keyed by ``name`` and keyword scope.

        The same (seed, name, scope) triple always yields a stream producing
        the same sequence.
        """
        material = f"{self._seed}:{name}:" + ",".join(
            f"{key}={scope[key]!r}" for key in sorted(scope)
        )
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def spawn(self, name: str) -> "SeededRng":
        """Derive a child factory (for nested components)."""
        material = f"{self._seed}:spawn:{name}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return SeededRng(int.from_bytes(digest[:8], "big"))

    def coin_flips(self, name: str, **scope: object) -> Iterator[int]:
        """An infinite iterator of fair coin flips in {0, 1}."""
        stream = self.stream(name, **scope)
        while True:
            yield stream.randrange(2)
