"""Sentinel singletons used by the FLV functions.

The paper's ``FLV`` function may return three kinds of results:

* a concrete value ``v`` taken from the received votes,
* ``?`` — *any* value may be selected (no value is locked),
* ``null`` — not enough information to select safely.

We model ``?`` and ``null`` as distinct singleton sentinels so that they can
never collide with application-level consensus values (including ``None``,
``0`` or ``False`` which are all legal proposals).
"""

from __future__ import annotations


class Sentinel:
    """A named singleton marker.

    Instances compare equal only to themselves, hash by identity and have a
    stable, readable ``repr``.  Two sentinels with the same name are still
    distinct objects; always import the module-level constants instead of
    constructing new ones.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        """The display name of this sentinel."""
        return self._name

    def __repr__(self) -> str:
        return f"<{self._name}>"

    def __reduce__(self):
        # Preserve singleton identity across pickling (used by trace dumps).
        if self._name == "ANY":
            return (_load_any, ())
        if self._name == "NULL":
            return (_load_null, ())
        return (Sentinel, (self._name,))


def _load_any() -> "Sentinel":
    return ANY_VALUE


def _load_null() -> "Sentinel":
    return NULL_VALUE


#: The paper's ``?`` result: any value may be selected.
ANY_VALUE = Sentinel("ANY")

#: The paper's ``null`` result: insufficient information, select nothing.
NULL_VALUE = Sentinel("NULL")
