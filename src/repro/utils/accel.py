"""Optional numpy acceleration with exact scalar-stream fidelity.

The batch backend (:mod:`repro.engine.batch`) vectorizes latency and loss
draws, but the project's correctness contract is *byte identity with the
scalar oracle*: every accelerated path must consume and produce exactly the
same underlying Mersenne-Twister stream as ``random.Random``.  Two pieces
make that possible:

* :func:`get_numpy` — imports numpy at most once per process, gated by the
  ``REPRO_NO_NUMPY`` env var, and **self-checks the state transplant** on
  first use: a ``numpy.random.RandomState`` seeded by transplanting a
  ``random.Random``'s MT19937 state must reproduce that stream bit for bit
  (both generators implement the same ``genrand_res53`` double derivation).
  If the check fails on an exotic numpy build, numpy is treated as absent
  and every consumer silently falls back to pure python.

* :class:`BlockRng` — a drop-in ``random.Random``-alike exposing the scalar
  ``random()`` / ``uniform()`` API plus a ``block(k)`` bulk-draw hook.  With
  numpy available it owns a transplanted ``RandomState`` and serves both
  APIs from one buffered ``random_sample`` stream; without numpy it wraps a
  plain ``random.Random``.  Either way the draw sequence is identical to
  calling ``random.Random(seed).random()`` repeatedly, so code that sampled
  scalars yesterday can sample blocks today without moving a single draw.
"""

from __future__ import annotations

import os
import random
import weakref
from typing import Any, List, Optional, Sequence

NUMPY_ENV = "REPRO_NO_NUMPY"

# Buffered draws served per refill on the numpy path.  Large enough to
# amortize the RandomState call overhead for scalar consumers, small enough
# that an abandoned buffer costs nothing (unconsumed draws stay queued in
# order; they are never discarded).
_BUFFER = 512

_NUMPY: Any = None
_NUMPY_CHECKED = False


# Recycled ``RandomState`` instances.  Constructing one costs ~100µs (the
# MT19937 bit-generator __init__ dominates, independent of the seed) while
# reseeding an existing one costs ~10µs, so per-run stream builders reuse
# retired instances.  A state is retired by the ``weakref.finalize`` hook
# installed on its owning :class:`BlockRng` — at that point the BlockRng
# held the only reference, so handing the state to the next owner is safe.
# The cap bounds worst-case retention to ~1.5 MB of MT19937 state.
_STATE_POOL: List[Any] = []
_POOL_CAP = 512


def _acquire_state(np_module: Any) -> Any:
    if _STATE_POOL:
        return _STATE_POOL.pop()
    return np_module.random.RandomState()


def _release_state(state: Any) -> None:
    if len(_STATE_POOL) < _POOL_CAP:
        _STATE_POOL.append(state)


def _transplant(np_module: Any, state: Any, rng: random.Random) -> Any:
    """Re-seed ``state`` to continue ``rng``'s MT19937 stream."""
    version, internal, _gauss = rng.getstate()
    if version != 3:  # pragma: no cover - future CPython format change
        raise ValueError(f"unsupported random.Random state version {version}")
    key, pos = internal[:-1], internal[-1]
    state.set_state(("MT19937", np_module.array(key, dtype=np_module.uint32), pos))
    return state


def _mt_key(seed: int) -> List[int]:
    """CPython ``random.Random``'s MT19937 ``init_by_array`` key for ``seed``:
    the little-endian 32-bit chunking of ``abs(seed)``."""
    n = abs(int(seed))
    if n == 0:
        return [0]
    key = []
    while n:
        key.append(n & 0xFFFFFFFF)
        n >>= 32
    return key


_FAST_SEED: Optional[bool] = None


def _fast_seed_supported(np_module: Any) -> bool:
    """One-time check that direct integer seeding is stream-exact.

    numpy's legacy array seeding runs the same ``init_by_array`` expansion
    CPython uses, so ``RandomState.seed(_mt_key(s))`` should equal
    transplanting a fresh ``random.Random(s)`` — skipping the boxed-int
    state round-trip.  The key must be a plain list: a one-element ndarray
    is routed through numpy's *scalar* seeding (``init_genrand``), a
    different expansion.  If an exotic numpy build disagrees, BlockRng
    falls back to the transplant path.
    """
    global _FAST_SEED
    if _FAST_SEED is None:
        state = np_module.random.RandomState()
        ok = True
        for probe in (0, 1, 0xDEADBEEF, 2**40 + 7, 2**70 + 13):
            state.seed(_mt_key(probe))
            ref = random.Random(probe)
            if any(float(v) != ref.random() for v in state.random_sample(4)):
                ok = False
                break
        _FAST_SEED = ok
    return _FAST_SEED


def _self_check(np_module: Any) -> bool:
    """True iff the transplant reproduces the scalar stream bit for bit."""
    probe = random.Random(0xC0FFEE)
    # Burn a few draws so the check covers a mid-stream position, not just
    # a freshly seeded state.
    for _ in range(7):
        probe.random()
    state = _transplant(np_module, np_module.random.RandomState(), probe)
    block = state.random_sample(16)
    return all(float(v) == probe.random() for v in block)


def get_numpy() -> Any:
    """Return the numpy module, or ``None`` when absent/disabled/unfaithful.

    The env var is consulted on every call (tests toggle it); the import and
    the transplant self-check run once per process.
    """
    if os.environ.get(NUMPY_ENV):
        return None
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy  # noqa: PLC0415 - optional accelerator
        except ImportError:
            numpy = None
        if numpy is not None and not _self_check(numpy):  # pragma: no cover
            numpy = None
        _NUMPY = numpy
    return _NUMPY


class BlockRng:
    """``random.Random``-compatible stream with a bulk ``block(k)`` hook.

    Scalar consumers call ``random()`` / ``uniform()`` exactly as they would
    on ``random.Random``; vectorized consumers call ``block(k)`` and get the
    next *k* uniforms of the same stream as a numpy array (numpy path) or a
    list of floats (fallback path).  Interleaving the two APIs is safe: the
    numpy path serves scalars from a buffered prefix of the stream and
    ``block`` drains that buffer before drawing fresh values, so stream
    order is preserved draw for draw.
    """

    __slots__ = ("_np", "_state", "_scalar", "_buf", "_pos", "__weakref__")

    def __init__(self, seed: "int | random.Random") -> None:
        np_module = get_numpy()
        self._np = np_module
        if np_module is not None:
            state = _acquire_state(np_module)
            if not isinstance(seed, random.Random) and _fast_seed_supported(
                np_module
            ):
                state.seed(_mt_key(seed))
            else:
                rng = (
                    seed
                    if isinstance(seed, random.Random)
                    else random.Random(seed)
                )
                _transplant(np_module, state, rng)
            self._state = state
            self._scalar = None
            self._buf = np_module.empty(0)
            self._pos = 0
            weakref.finalize(self, _release_state, state)
        else:
            self._state = None
            self._scalar = (
                seed
                if isinstance(seed, random.Random)
                else random.Random(seed)
            )
            self._buf = None
            self._pos = 0

    @property
    def accelerated(self) -> bool:
        """True when draws are served by numpy."""
        return self._np is not None

    def random(self) -> float:
        """Next uniform in [0, 1), identical to ``random.Random.random``."""
        scalar = self._scalar
        if scalar is not None:
            return scalar.random()
        if self._pos >= len(self._buf):
            self._buf = self._state.random_sample(_BUFFER)
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return float(value)

    def uniform(self, a: float, b: float) -> float:
        """``a + (b - a) * random()`` — same float ops as ``random.Random``."""
        return a + (b - a) * self.random()

    def block(self, k: int) -> Sequence[float]:
        """The next *k* uniforms of the stream as an array (or list)."""
        scalar = self._scalar
        if scalar is not None:
            return [scalar.random() for _ in range(k)]
        buffered = len(self._buf) - self._pos
        if buffered >= k:
            out = self._buf[self._pos : self._pos + k]
            self._pos += k
            return out
        head = self._buf[self._pos :]
        self._pos = len(self._buf)
        tail = self._state.random_sample(k - buffered)
        if buffered == 0:
            return tail
        return self._np.concatenate((head, tail))

    def clone(self) -> "BlockRng":
        """An independent stream continuing from this one's exact state.

        On the numpy path the MT19937 state is copied generator-to-
        generator (into a pool-recycled ``RandomState``) instead of being
        re-derived through ``random.Random``'s boxed-int state tuple.  The
        batch backend builds its per-run (network, policy) stream pairs —
        two identically seeded streams that then evolve independently —
        as one seeded stream plus one clone.
        """
        twin = object.__new__(BlockRng)
        twin._np = self._np
        twin._pos = self._pos
        if self._np is not None:
            state = _acquire_state(self._np)
            state.set_state(self._state.get_state(legacy=True))
            twin._state = state
            twin._scalar = None
            weakref.finalize(twin, _release_state, state)
            # Buffers are only ever read (block() hands out views), so the
            # twin may share the unconsumed prefix.
            twin._buf = self._buf
        else:
            twin._state = None
            twin._scalar = random.Random()
            twin._scalar.setstate(self._scalar.getstate())
            twin._buf = None
        return twin


def block_stream(rng: object) -> Optional[BlockRng]:
    """Return ``rng`` as a block-capable stream, or ``None``.

    The network sampling hot paths use this to route bulk draws through
    ``block(k)`` when the scheduler installed a :class:`BlockRng`, without
    eventsim importing anything from the batch backend.
    """
    if isinstance(rng, BlockRng) and rng.accelerated:
        return rng
    return None
