"""Deterministic helpers shared by FLV functions and the generic algorithm.

The generic algorithm (line 11 of Algorithm 1) requires processes to "choose
deterministically a value" among the received votes.  For termination all
correct processes must make the *same* choice whenever they hold the same
message vector (which ``Pcons`` guarantees in good phases), so the choice
function must depend only on the multiset of candidate values.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable, Optional


def _sort_key(value: Hashable) -> tuple[str, str]:
    """A total order over arbitrary hashable values.

    Python cannot compare values of unrelated types, so we order first by the
    type name and then by ``repr``.  The ordering is arbitrary but total and
    deterministic, which is all line 11 of Algorithm 1 requires.  Kept
    deliberately cache-free: memoizing by equality would let equal values
    with distinct reprs (``Decimal('1')`` / ``Decimal('1.0')``) alias a
    slot, making the choice depend on process history — which would break
    the campaign engine's identical-results-at-any-worker-count guarantee.
    """
    return (type(value).__name__, repr(value))


def deterministic_choice(values: Iterable[Hashable]) -> Hashable:
    """Deterministically pick one value out of ``values``.

    Raises :class:`ValueError` on an empty iterable: callers must only invoke
    the choice when at least one vote was received.

    Duplicates are collapsed first (``dict.fromkeys``, keeping the first
    occurrence as the representative), so the ``repr``-based key is computed
    once per distinct value instead of once per vote — a vector of n votes
    usually carries only a couple of distinct values.  The result is a pure
    function of the value sequence; among ``==``-equal candidates the first
    received is returned, which is sound because the library treats equal
    values as interchangeable everywhere (FLV counters, histories and
    decision sets all collapse them).
    """
    pool = list(dict.fromkeys(values))
    if not pool:
        raise ValueError("deterministic_choice requires at least one value")
    return min(pool, key=_sort_key)


def value_counts(values: Iterable[Hashable]) -> Counter:
    """Multiplicity of each value in ``values`` (Counter preserves multiset)."""
    return Counter(values)


def majority_value(values: Iterable[Hashable]) -> Optional[Hashable]:
    """Return the value held by a strict majority of ``values``, if any.

    Used by Algorithm 4 line 8 ("a majority of messages (v, -, -)") for the
    unanimity branch of the class-3 FLV function.
    """
    pool = list(values)
    if not pool:
        return None
    counts = Counter(pool)
    value, count = counts.most_common(1)[0]
    if 2 * count > len(pool):
        return value
    return None


def strict_majority(count: int, total: int) -> bool:
    """True iff ``count`` is a strict majority of ``total``."""
    return 2 * count > total


def most_often_smallest(values: Iterable[Hashable]) -> Any:
    """The "smallest most often received value" rule of OneThirdRule (Alg. 5).

    Picks the value with maximal multiplicity; ties are broken by the
    deterministic total order used in :func:`deterministic_choice`.
    """
    pool = list(values)
    if not pool:
        raise ValueError("most_often_smallest requires at least one value")
    counts = Counter(pool)
    best = max(counts.items(), key=lambda item: (item[1],))[1]
    candidates = [value for value, count in counts.items() if count == best]
    return min(candidates, key=_sort_key)
