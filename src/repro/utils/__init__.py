"""Small shared utilities: sentinels, deterministic choice, counting helpers."""

from repro.utils.det import (
    deterministic_choice,
    majority_value,
    strict_majority,
    value_counts,
)
from repro.utils.rng import SeededRng
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE, Sentinel

__all__ = [
    "ANY_VALUE",
    "NULL_VALUE",
    "Sentinel",
    "SeededRng",
    "deterministic_choice",
    "majority_value",
    "strict_majority",
    "value_counts",
]
