"""Outcome memoization: replay a computed value *or* the exception it raised.

Campaign workers re-resolve the same few dozen grid cells thousands of
times; both the successful resolution and the rejection verdict are pure
functions of the key, so either is cached and replayed.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Tuple, Type, TypeVar

T = TypeVar("T")

#: Cache slot: ``(ok, value-or-exception)``.
Outcome = Tuple[bool, object]


def cached_outcome(
    cache: Dict[Hashable, Outcome],
    key: Hashable,
    compute: Callable[[], T],
    cache_exceptions: Tuple[Type[BaseException], ...] = (Exception,),
) -> T:
    """``compute()`` memoized under ``key``, exceptions included.

    A raise from ``compute`` matching ``cache_exceptions`` is cached and
    re-raised on every later call with the same key.  The first raise
    propagates with its original traceback (so a genuine bug surfaces with
    the failing frames intact); cached *replays* are re-raised with the
    traceback reset, since each raise appends frames to ``__traceback__``
    and replaying one rejection thousands of times would otherwise grow
    the chain (and its live frame references) without bound.
    """
    hit = cache.get(key)
    if hit is None:
        try:
            value = compute()
        except cache_exceptions as exc:
            cache[key] = (False, exc)
            raise
        cache[key] = (True, value)
        return value
    ok, value = hit
    if not ok:
        raise value.with_traceback(None)  # type: ignore[union-attr]
    return value  # type: ignore[return-value]
