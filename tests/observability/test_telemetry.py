"""The instrumentation core: spans, scalar instruments, and the null path."""

import json

import pytest

from repro.observability import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    format_phase_table,
    percentile,
)


class TestPercentile:
    def test_closest_rank_interpolation(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 1.0) == 40.0
        assert percentile(samples, 0.5) == pytest.approx(25.0)
        assert percentile(samples, 0.25) == pytest.approx(17.5)

    def test_single_sample_is_every_quantile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.0], q) == 7.0

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_input_is_not_mutated(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 0.5)
        assert samples == [3.0, 1.0, 2.0]

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestScalarInstruments:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("messages")
        tel.count("messages", 4)
        assert tel.counters == {"messages": 5}

    def test_gauges_keep_latest_value(self):
        tel = Telemetry()
        tel.gauge("round", 3)
        tel.gauge("round", 7)
        assert tel.gauges == {"round": 7}

    def test_histogram_stats(self):
        tel = Telemetry()
        for value in (1.0, 2.0, 3.0):
            tel.observe("latency", value)
        stats = tel.histogram_stats("latency")
        assert stats == {
            "count": 3,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
            "p50": 2.0,
            "p95": pytest.approx(2.9),
            "p99": pytest.approx(2.98),
        }

    def test_histogram_names(self):
        tel = Telemetry()
        assert tel.histogram_names == []
        tel.observe("a", 1.0)
        tel.observe("b", 2.0)
        assert tel.histogram_names == ["a", "b"]
        assert NULL_TELEMETRY.histogram_names == []

    def test_snapshot_is_json_serializable(self):
        tel = Telemetry()
        tel.count("c")
        tel.gauge("g", 1.5)
        tel.observe("h", 2.0)
        with tel.span("s"):
            pass
        parsed = json.loads(json.dumps(tel.snapshot()))
        assert parsed["counters"] == {"c": 1}
        assert parsed["spans"]["s"]["calls"] == 1


class TestSpans:
    def test_span_records_calls_and_nonnegative_times(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("phase"):
                pass
        stats = tel.span_stats("phase")
        assert stats["calls"] == 3
        assert stats["total_s"] >= stats["self_s"] >= 0.0

    def test_nested_spans_attribute_self_time_disjointly(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                # Enough work that inner's elapsed is strictly positive.
                sum(range(20_000))
        outer = tel.span_stats("outer")
        inner = tel.span_stats("inner")
        # Inclusive outer total covers inner's total; outer's *self* time
        # excludes it, so the per-phase attribution stays disjoint.
        assert outer["total_s"] >= inner["total_s"] > 0.0
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"]
        )
        assert tel.total_span_seconds() == pytest.approx(
            outer["self_s"] + inner["self_s"]
        )

    def test_total_span_seconds_never_exceeds_outer_wall(self):
        from time import perf_counter

        tel = Telemetry()
        start = perf_counter()
        with tel.span("a"):
            with tel.span("b"):
                sum(range(10_000))
            with tel.span("b"):
                pass
        wall = perf_counter() - start
        assert 0.0 < tel.total_span_seconds() <= wall

    def test_sibling_spans_feed_the_same_parent(self):
        tel = Telemetry()
        with tel.span("parent"):
            with tel.span("child"):
                pass
            with tel.span("child"):
                pass
        assert tel.span_stats("child")["calls"] == 2
        parent = tel.span_stats("parent")
        child = tel.span_stats("child")
        assert parent["self_s"] == pytest.approx(
            parent["total_s"] - child["total_s"]
        )

    def test_span_survives_exceptions(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("failing"):
                raise RuntimeError("boom")
        assert tel.span_stats("failing")["calls"] == 1
        assert not tel._stack  # the stack unwound cleanly

    def test_add_time_folds_external_measurements(self):
        tel = Telemetry()
        tel.add_time("setup", 0.25, calls=2)
        tel.add_time("setup", 0.75)
        stats = tel.span_stats("setup")
        assert stats["calls"] == 3
        assert stats["total_s"] == pytest.approx(1.0)
        assert stats["self_s"] == pytest.approx(1.0)


class TestMerge:
    def test_merge_sums_counters_and_spans(self):
        a, b = Telemetry(), Telemetry()
        a.count("c", 1)
        b.count("c", 2)
        a.add_time("s", 1.0)
        b.add_time("s", 2.0, calls=3)
        b.observe("h", 5.0)
        b.gauge("g", 9)
        a.merge(b)
        assert a.counters == {"c": 3}
        assert a.gauges == {"g": 9}
        assert a.span_stats("s")["calls"] == 4
        assert a.span_stats("s")["total_s"] == pytest.approx(3.0)
        assert a.histogram_stats("h")["count"] == 1


class TestNullTelemetry:
    def test_disabled_flag(self):
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True

    def test_span_is_one_shared_reusable_object(self):
        # The whole point of the null path: a disabled call site allocates
        # nothing — every span() call hands back the same context manager.
        first = NULL_TELEMETRY.span("a")
        second = NULL_TELEMETRY.span("b")
        assert first is second
        with first:
            pass

    def test_instruments_record_nothing(self):
        tel = NullTelemetry()
        tel.count("c")
        tel.gauge("g", 1)
        tel.observe("h", 2)
        tel.add_time("s", 3.0)
        with tel.span("s"):
            pass
        assert tel.span_names == []
        assert tel.total_span_seconds() == 0.0
        assert tel.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "spans": {},
        }

    def test_null_instance_holds_no_mutable_state(self):
        before = vars(NULL_TELEMETRY).copy() if hasattr(
            NULL_TELEMETRY, "__dict__"
        ) else {}
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.observe("y", 1.0)
        after = vars(NULL_TELEMETRY).copy() if hasattr(
            NULL_TELEMETRY, "__dict__"
        ) else {}
        assert before == after == {}


class TestFormatPhaseTable:
    def _telemetry(self):
        tel = Telemetry()
        tel.add_time("kernel.apply", 0.004, calls=8)
        tel.add_time("kernel.send", 0.002, calls=8)
        return tel

    def test_orders_by_descending_self_time(self):
        table = format_phase_table(self._telemetry())
        lines = table.splitlines()
        assert "phase" in lines[0] and "self-ms" in lines[0]
        assert lines[2].startswith("kernel.apply")
        assert lines[3].startswith("kernel.send")

    def test_explicit_order_pins_rows(self):
        table = format_phase_table(
            self._telemetry(), order=["kernel.send", "unknown.phase"]
        )
        assert table.splitlines()[2].startswith("kernel.send")

    def test_wall_seconds_adds_share_and_coverage_footer(self):
        table = format_phase_table(self._telemetry(), wall_seconds=0.008)
        assert "share" in table.splitlines()[0]
        assert "spans cover" in table.splitlines()[-1]
        assert "75.0%" in table.splitlines()[-1]  # 6 ms of 8 ms wall

    def test_histograms_render_percentile_table(self):
        tel = self._telemetry()
        for value in range(1, 101):
            tel.observe("request_latency", float(value))
        table = format_phase_table(tel)
        assert "histogram" in table
        assert "request_latency" in table
        # p50/p95/p99 of 1..100 under closest-rank interpolation.
        for column in ("50.5", "95.05", "99.01"):
            assert column in table

    def test_no_histograms_no_histogram_table(self):
        assert "histogram" not in format_phase_table(self._telemetry())
