"""CLI observability surface: --events inertness, --progress, resume
reporting, ``repro profile`` and the report's timing columns."""

import json

import pytest

from repro.cli import main
from repro.observability import read_events

SPEC = {
    "name": "obs-unit",
    "algorithms": ["pbft", "class-2"],
    "models": [[4, 1, 0]],
    "engines": ["lockstep", "timed"],
    "scenarios": ["fault-free", "worst_case"],
    "repetitions": 2,
    "seed": 11,
    "max_phases": 12,
}


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


def run_cli(spec_path, out, *extra):
    return main(
        [
            "campaign", "run", str(spec_path),
            "--out", str(out), "--quiet", "--no-report", *extra,
        ]
    )


class TestEventsSidecar:
    def test_results_byte_identical_with_and_without_events(
        self, spec_path, tmp_path, capsys
    ):
        plain = tmp_path / "plain.jsonl"
        assert run_cli(spec_path, plain) == 0
        instrumented = tmp_path / "instrumented.jsonl"
        events = tmp_path / "events.jsonl"
        assert run_cli(
            spec_path, instrumented,
            "--events", str(events), "--workers", "2",
        ) == 0
        capsys.readouterr()
        assert plain.read_bytes() == instrumented.read_bytes()

    def test_event_stream_covers_the_campaign_lifecycle(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "out.jsonl"
        events = tmp_path / "events.jsonl"
        assert run_cli(
            spec_path, out, "--events", str(events), "--workers", "2"
        ) == 0
        capsys.readouterr()
        stream = read_events(events)
        kinds = [event["kind"] for event in stream]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert "chunk_dispatched" in kinds

        started = stream[0]
        total = SPEC["algorithms"].__len__() * 2 * 2 * 2  # grid size: 16
        assert started["total_runs"] == total
        assert started["workers"] == 2
        assert started["resume"] is False

        completed = [e for e in stream if e["kind"] == "row_completed"]
        rows = out.read_text().strip().splitlines()
        assert len(completed) == len(rows)  # one event per result row
        assert {e["run_id"] for e in completed} == {
            json.loads(row)["run_id"] for row in rows
        }
        for event in completed:
            assert event["status"] in {
                "ok", "error", "inadmissible", "inapplicable"
            }
            assert event["duration_ms"] > 0
            assert isinstance(event["pid"], int)

        finished = stream[-1]
        assert finished["rows"] == total
        assert finished["interrupted"] is False
        for event in stream:
            assert "ts" in event

    def test_rows_never_leak_volatile_fields(self, spec_path, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        events = tmp_path / "events.jsonl"
        assert run_cli(spec_path, out, "--events", str(events)) == 0
        capsys.readouterr()
        for line in out.read_text().splitlines():
            assert not any(key.startswith("_") for key in json.loads(line))

    def test_fresh_run_truncates_stale_event_file(
        self, spec_path, tmp_path, capsys
    ):
        events = tmp_path / "events.jsonl"
        events.write_text('{"ts": 0, "kind": "campaign_started"}\n' * 5)
        out = tmp_path / "out.jsonl"
        assert run_cli(spec_path, out, "--events", str(events)) == 0
        capsys.readouterr()
        stream = read_events(events)
        assert sum(e["kind"] == "campaign_started" for e in stream) == 1


class TestResumeReporting:
    def test_interrupted_then_resumed_events_accumulate(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "out.jsonl"
        events = tmp_path / "events.jsonl"
        assert run_cli(
            spec_path, out, "--events", str(events), "--stop-after", "4"
        ) == 3
        assert run_cli(
            spec_path, out, "--events", str(events), "--resume"
        ) == 0
        err = capsys.readouterr().err
        assert "resumed: 4 rows skipped, 12 executed" in err
        stream = read_events(events)
        finishes = [e for e in stream if e["kind"] == "campaign_finished"]
        assert [e["interrupted"] for e in finishes] == [True, False]
        resumed = [e for e in stream if e["kind"] == "resume_skipped"]
        assert resumed and resumed[0]["rows"] == 4

    def test_fully_recorded_resume_reports_loudly(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "out.jsonl"
        total = 16
        assert run_cli(spec_path, out, "--stop-after", str(total)) == 3
        capsys.readouterr()
        assert run_cli(spec_path, out, "--resume") == 0
        err = capsys.readouterr().err
        assert f"resumed: {total} rows skipped, 0 executed" in err
        assert out.exists()


class TestProgressLine:
    def test_progress_renders_final_line_on_stderr(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "out.jsonl"
        assert run_cli(spec_path, out, "--progress") == 0
        err = capsys.readouterr().err
        assert "16/16 runs 100%" in err
        assert "runs/s" in err


class TestCampaignRunReport:
    def test_run_report_includes_wall_columns_and_ranking(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "out.jsonl"
        assert main(
            ["campaign", "run", str(spec_path), "--out", str(out), "--quiet"]
        ) == 0
        captured = capsys.readouterr().out
        assert "wall-ms" in captured and "wall-max" in captured
        assert "slowest cells" in captured


class TestReportEvents:
    def test_report_joins_durations_from_the_sidecar(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "out.jsonl"
        events = tmp_path / "events.jsonl"
        assert run_cli(spec_path, out, "--events", str(events)) == 0
        capsys.readouterr()

        assert main(["campaign", "report", str(out)]) == 0
        plain = capsys.readouterr().out
        assert "wall-ms" not in plain  # canonical rows carry no durations

        assert main(
            ["campaign", "report", str(out), "--events", str(events)]
        ) == 0
        joined = capsys.readouterr().out
        assert "wall-ms" in joined and "wall-max" in joined
        assert "slowest cells" in joined

    def test_report_rejects_unreadable_events(self, spec_path, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        assert run_cli(spec_path, out) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "report", str(out),
             "--events", str(tmp_path / "missing.jsonl")]
        ) == 2
        assert "cannot read events" in capsys.readouterr().err


class TestProfileCommand:
    @pytest.mark.parametrize("engine", ["lockstep", "timed"])
    def test_profile_prints_phase_breakdown(self, engine, capsys):
        assert main(
            ["profile", "worst_case", "--algorithm", "pbft", "--n", "4",
             "--b", "1", "--engine", engine, "--repeat", "2"]
        ) == 0
        captured = capsys.readouterr().out
        assert "profile: worst_case on pbft" in captured
        for span in ("engine.run", "kernel.apply", "kernel.send",
                     "scheduler.deliver"):
            assert span in captured
        assert "spans cover" in captured

    def test_profile_span_total_covers_most_of_wall(self, capsys):
        assert main(
            ["profile", "fault-free", "--algorithm", "class-1", "--n", "6",
             "--repeat", "3"]
        ) == 0
        footer = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("spans cover")
        ][0]
        coverage = float(footer.rsplit("(", 1)[1].rstrip("%)"))
        assert coverage >= 90.0

    def test_profile_rejects_unknown_scenario(self, capsys):
        assert main(
            ["profile", "no-such", "--algorithm", "pbft", "--n", "4"]
        ) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_rejects_bad_algorithm(self, capsys):
        assert main(
            ["profile", "fault-free", "--algorithm", "nope", "--n", "4"]
        ) == 2
        assert "cannot build" in capsys.readouterr().err
