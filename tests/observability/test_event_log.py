"""Event sidecar round-trips: schema, torn tails, duration join-back."""

import json

import pytest

from repro.observability import EventLog, load_row_durations, read_events
from repro.observability.events import iter_events


@pytest.fixture()
def log_path(tmp_path):
    return tmp_path / "events.jsonl"


class TestEventLogRoundTrip:
    def test_every_event_carries_ts_and_kind(self, log_path):
        with EventLog(log_path) as log:
            log.emit("campaign_started", campaign="demo", total_runs=4)
            log.emit("row_completed", run_id=0, status="ok",
                     duration_ms=1.25, pid=123)
            log.emit("campaign_finished", rows=4, errors=0,
                     elapsed_s=0.5, interrupted=False)
        events = read_events(log_path)
        assert [event["kind"] for event in events] == [
            "campaign_started", "row_completed", "campaign_finished",
        ]
        for event in events:
            assert isinstance(event["ts"], float)
        assert events[1]["run_id"] == 0
        assert events[1]["pid"] == 123

    def test_kind_filter(self, log_path):
        with EventLog(log_path) as log:
            for run_id in range(3):
                log.emit("row_completed", run_id=run_id, status="ok",
                         duration_ms=1.0, pid=1)
            log.emit("worker_heartbeat", pid=1, rows=3, rows_per_s=10.0)
        assert len(read_events(log_path, kind="row_completed")) == 3
        assert len(read_events(log_path, kind="worker_heartbeat")) == 1

    def test_lines_are_compact_single_line_json(self, log_path):
        with EventLog(log_path) as log:
            log.emit("chunk_dispatched", runs=8)
        (line,) = log_path.read_text().splitlines()
        event = json.loads(line)
        assert event["kind"] == "chunk_dispatched"
        assert ": " not in line  # compact separators

    def test_append_mode_extends_existing_file(self, log_path):
        with EventLog(log_path) as log:
            log.emit("campaign_started", campaign="a")
        with EventLog(log_path) as log:
            log.emit("campaign_started", campaign="b")
        assert len(read_events(log_path)) == 2


class TestTornAndCorruptFiles:
    def test_torn_final_line_is_skipped(self, log_path):
        with EventLog(log_path) as log:
            log.emit("row_completed", run_id=0, status="ok",
                     duration_ms=1.0, pid=1)
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write('{"ts": 1.0, "kind": "row_comp')  # crash mid-write
        events = read_events(log_path)
        assert len(events) == 1

    def test_midfile_corruption_raises(self, log_path):
        log_path.write_text('not json\n{"ts": 1.0, "kind": "x"}\n')
        with pytest.raises(ValueError, match="corrupt event line"):
            list(iter_events(log_path))

    def test_event_without_kind_raises(self, log_path):
        log_path.write_text('{"ts": 1.0}\n')
        with pytest.raises(ValueError, match="without a kind"):
            list(iter_events(log_path))


class TestLoadRowDurations:
    def test_joins_run_id_to_duration(self, log_path):
        with EventLog(log_path) as log:
            log.emit("campaign_started", campaign="demo")
            log.emit("row_completed", run_id=0, status="ok",
                     duration_ms=1.5, pid=1)
            log.emit("row_completed", run_id=1, status="error",
                     duration_ms=2.5, pid=1)
        assert load_row_durations(log_path) == {0: 1.5, 1: 2.5}

    def test_reexecuted_run_keeps_last_occurrence(self, log_path):
        with EventLog(log_path) as log:
            log.emit("row_completed", run_id=0, status="ok",
                     duration_ms=9.0, pid=1)
            log.emit("row_completed", run_id=0, status="ok",
                     duration_ms=1.0, pid=2)
        assert load_row_durations(log_path) == {0: 1.0}

    def test_rows_without_durations_are_skipped(self, log_path):
        with EventLog(log_path) as log:
            log.emit("row_completed", run_id=0, status="ok",
                     duration_ms=None, pid=1)
            log.emit("row_completed", run_id="bad", status="ok",
                     duration_ms=1.0, pid=1)
        assert load_row_durations(log_path) == {}
