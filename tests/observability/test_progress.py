"""The live progress line: throttling, formatting, stream hygiene."""

import io

from repro.observability import ProgressLine


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


def make_line(total=100, min_interval=0.1):
    stream = io.StringIO()
    clock = FakeClock()
    line = ProgressLine(
        "demo", total, stream=stream, min_interval=min_interval, clock=clock
    )
    return line, stream, clock


class TestRendering:
    def test_render_shows_counts_rate_and_eta(self):
        line, stream, clock = make_line()
        clock.now += 2.0
        line.render(50, errors=3, inadmissible=4)
        text = stream.getvalue()
        assert text.startswith("\r")
        assert "demo:  50/100 runs" in text
        assert "50%" in text
        assert "25.0 runs/s" in text
        assert "eta 2s" in text
        assert "err 3" in text and "inadm 4" in text

    def test_unknown_rate_renders_unknown_eta(self):
        line, stream, _ = make_line()
        line.render(0)
        assert "eta ?" in stream.getvalue()

    def test_long_etas_use_minutes_and_hours(self):
        line, stream, clock = make_line(total=100_000)
        clock.now += 10.0
        line.render(10)  # 1 run/s, ~99990 s remaining
        assert "eta 27.8h" in stream.getvalue()


class TestThrottling:
    def test_renders_inside_window_are_dropped(self):
        line, stream, clock = make_line()
        clock.now += 1.0
        line.render(1)
        first = stream.getvalue()
        line.render(2)  # same instant: inside the throttle window
        assert stream.getvalue() == first
        clock.now += 0.2
        line.render(3)
        assert stream.getvalue() != first

    def test_finish_always_renders_and_terminates_line(self):
        line, stream, clock = make_line()
        clock.now += 0.5
        line.render(10)
        line.finish(100)  # same instant — must render anyway
        text = stream.getvalue()
        assert "100/100" in text
        assert text.endswith("\n")

    def test_finish_is_idempotent(self):
        line, stream, _ = make_line()
        line.finish(100)
        once = stream.getvalue()
        line.finish(100)
        assert stream.getvalue() == once


class TestLineHygiene:
    def test_shorter_render_wipes_longer_previous_one(self):
        line, stream, clock = make_line()
        clock.now += 1.0
        line.render(99, errors=1000, inadmissible=1000)
        long_width = len(stream.getvalue()) - 1  # minus leading \r
        stream.truncate(0)
        stream.seek(0)
        clock.now += 0.2
        line.render(99)  # counters shrink → shorter text
        text = stream.getvalue()[1:]  # strip \r
        assert len(text) == long_width  # padded to wipe the remnant
        assert text.rstrip() != text  # trailing wipe spaces present
