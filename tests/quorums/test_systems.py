"""Quorum systems: intersection properties and the footnote-10 mapping."""

import itertools

import pytest

from repro.core.classification import AlgorithmClass
from repro.core.flv_class2 import mqb_threshold
from repro.core.flv_variants import fab_paxos_threshold, pbft_threshold
from repro.core.types import FaultModel
from repro.quorums.systems import (
    DisseminationQuorumSystem,
    MajorityQuorumSystem,
    MaskingQuorumSystem,
    OpaqueQuorumSystem,
    quorum_system_for_class,
)


class TestMajority:
    def test_sizes(self):
        assert MajorityQuorumSystem(FaultModel(3, 0, 1)).min_quorum_size() == 2
        assert MajorityQuorumSystem(FaultModel(4, 0, 1)).min_quorum_size() == 3

    def test_pairwise_intersection_nonempty(self):
        qs = MajorityQuorumSystem(FaultModel(5, 0, 2))
        for q1, q2 in itertools.combinations(qs.minimal_quorums(), 2):
            assert q1 & q2


class TestByzantineFamilies:
    @pytest.mark.parametrize(
        "family,n_min",
        [
            (DisseminationQuorumSystem, 4),   # n ≥ 3b + 1
            (MaskingQuorumSystem, 5),          # n ≥ 4b + 1
            (OpaqueQuorumSystem, 6),           # n ≥ 5b + 1
        ],
    )
    def test_availability_threshold(self, family, n_min):
        assert family(FaultModel(n_min, 1, 0)).is_available()
        assert not family(FaultModel(n_min - 1, 1, 0)).is_available()

    def test_dissemination_intersections(self):
        qs = DisseminationQuorumSystem(FaultModel(4, 1, 0))
        assert qs.intersection_contains_correct()
        assert not qs.intersection_masks_faults()

    def test_masking_intersections(self):
        qs = MaskingQuorumSystem(FaultModel(5, 1, 0))
        assert qs.intersection_masks_faults()
        assert not qs.intersection_is_opaque()

    def test_opaque_intersections(self):
        qs = OpaqueQuorumSystem(FaultModel(6, 1, 0))
        assert qs.intersection_is_opaque()

    def test_enumerated_intersections_match_arithmetic(self):
        qs = MaskingQuorumSystem(FaultModel(5, 1, 0))
        worst = min(
            len(q1 & q2)
            for q1, q2 in itertools.combinations(qs.minimal_quorums(), 2)
        )
        assert worst == qs.worst_intersection()

    def test_is_quorum(self):
        qs = DisseminationQuorumSystem(FaultModel(4, 1, 0))
        assert qs.is_quorum({0, 1, 2})
        assert not qs.is_quorum({0, 1})
        assert not qs.is_quorum({0, 1, 9})  # out-of-range member


class TestFootnote10Mapping:
    """Class TD thresholds are the minimal quorum sizes of the mapped family."""

    def test_class1_fab_paxos_uses_opaque_quorums(self):
        for n, b in [(6, 1), (11, 2), (16, 3)]:
            model = FaultModel(n, b, 0)
            qs = quorum_system_for_class(AlgorithmClass.CLASS_1, model)
            assert isinstance(qs, OpaqueQuorumSystem)
            assert fab_paxos_threshold(model) == qs.min_quorum_size()

    def test_class2_mqb_uses_masking_quorums(self):
        for n, b in [(5, 1), (9, 2), (13, 3)]:
            model = FaultModel(n, b, 0)
            qs = quorum_system_for_class(AlgorithmClass.CLASS_2, model)
            assert isinstance(qs, MaskingQuorumSystem)
            assert mqb_threshold(model) == qs.min_quorum_size()

    def test_class3_pbft_uses_dissemination_quorums(self):
        # At the canonical PBFT size n = 3b + 1 the TD equals the
        # dissemination quorum size exactly.
        for b in (1, 2, 3):
            model = FaultModel(3 * b + 1, b, 0)
            qs = quorum_system_for_class(AlgorithmClass.CLASS_3, model)
            assert isinstance(qs, DisseminationQuorumSystem)
            assert pbft_threshold(model) == qs.min_quorum_size()


def test_too_small_model_rejected():
    with pytest.raises(ValueError):
        OpaqueQuorumSystem(FaultModel(2, 1, 0))
