"""The public API surface: everything advertised in __all__ resolves."""

import importlib

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.rounds",
    "repro.network",
    "repro.faults",
    "repro.detectors",
    "repro.quorums",
    "repro.eventsim",
    "repro.smr",
    "repro.algorithms",
    "repro.analysis",
    "repro.campaigns",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_snippet():
    """The exact snippet from README.md must keep working."""
    from repro import (
        AlgorithmClass,
        FaultModel,
        build_class_parameters,
        run_consensus,
    )

    model = FaultModel(n=4, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(
        params,
        {0: "commit", 1: "abort", 2: "commit"},
        byzantine={3: "equivocator"},
    )
    assert outcome.agreement_holds and outcome.all_correct_decided


def test_docstring_quickstart_in_package():
    """The module docstring example runs (guards doc rot)."""
    from repro import AlgorithmClass, FaultModel, build_class_parameters, run_consensus

    model = FaultModel(n=4, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(
        params, {0: "A", 2: "B", 3: "A"}, byzantine={1: "equivocator"}
    )
    assert outcome.decisions
