"""Property-based tests of the three abstract FLV properties (Section 3.2).

For each class function we check, over randomized message vectors:

* **FLV-validity** — a concrete result is always one of the received votes;
* **FLV-agreement** — on vectors generated from a *locked* configuration
  (TD − b honest messages carry the locked value with the lock's timestamp
  and certificates, plus arbitrary Byzantine noise), only the locked value
  or null/? consistent with the lock may come back;
* **FLV-liveness** — a vector containing messages from all ``n − b − f``
  correct processes never yields null (when the class's TD bound holds).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flv import is_concrete
from repro.core.flv_class1 import FLVClass1
from repro.core.flv_class2 import FLVClass2
from repro.core.flv_class3 import FLVClass3
from repro.core.types import FaultModel, SelectionMessage
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE

VALUES = st.sampled_from(["a", "b", "c"])
TIMESTAMPS = st.integers(min_value=0, max_value=5)


@st.composite
def honest_message(draw):
    vote = draw(VALUES)
    ts = draw(TIMESTAMPS)
    # Honest invariant: (vote, ts) derives from a selection at phase ts.
    history = frozenset({(vote, 0), (vote, ts)})
    return SelectionMessage(vote, ts, history, frozenset())


@st.composite
def byzantine_message(draw):
    vote = draw(VALUES)
    ts = draw(st.integers(min_value=0, max_value=100))
    history_pairs = draw(
        st.sets(st.tuples(VALUES, TIMESTAMPS), max_size=4)
    )
    return SelectionMessage(vote, ts, frozenset(history_pairs), frozenset())


def build_flvs():
    return [
        FLVClass1(FaultModel(6, 1, 0), 5),
        FLVClass2(FaultModel(5, 1, 0), 4),
        FLVClass3(FaultModel(4, 1, 0), 3),
    ]


@settings(max_examples=200)
@given(st.data())
def test_flv_validity(data):
    """Concrete results are always received votes."""
    for flv in build_flvs():
        n = flv.model.n
        count = data.draw(st.integers(min_value=0, max_value=n), label="count")
        messages = [data.draw(honest_message()) for _ in range(count)]
        result = flv.evaluate(messages, phase=3)
        if is_concrete(result):
            assert result in {m.vote for m in messages}


@settings(max_examples=200)
@given(st.data())
def test_flv_agreement_under_lock(data):
    """With v locked (decided in the previous phase), only v or null."""
    locked_phase = 2
    for flv in build_flvs():
        model = flv.model
        td, b = flv.threshold, model.b
        cert = frozenset({("L", 0), ("L", locked_phase)})
        locked = [
            SelectionMessage("L", locked_phase, cert, frozenset())
            for _ in range(td - b)
        ]
        # Remaining honest processes: either also on L, or lagging with a
        # strictly older timestamp (the only states honest processes can be
        # in once L was decided at locked_phase — Lemma 4).
        others = []
        for _ in range(model.n - (td - b) - b):
            if data.draw(st.booleans()):
                others.append(SelectionMessage("L", locked_phase, cert, frozenset()))
            else:
                stale_ts = data.draw(st.integers(min_value=0, max_value=1))
                others.append(
                    SelectionMessage(
                        "M",
                        stale_ts,
                        frozenset({("M", 0), ("M", stale_ts)}),
                        frozenset(),
                    )
                )
        byz = [data.draw(byzantine_message()) for _ in range(b)]
        pool = locked + others + byz
        subset_size = data.draw(
            st.integers(min_value=0, max_value=len(pool)), label="subset"
        )
        indices = data.draw(
            st.permutations(range(len(pool))), label="order"
        )[:subset_size]
        messages = [pool[i] for i in indices]
        result = flv.evaluate(messages, phase=locked_phase + 1)
        assert result in ("L", NULL_VALUE), (
            f"{flv.name} returned {result!r} on a locked vector"
        )


@settings(max_examples=200)
@given(st.data())
def test_flv_liveness_full_correct_vector(data):
    """Messages from all n − b − f correct processes → never null."""
    for flv in build_flvs():
        model = flv.model
        correct = model.n - model.b - model.f
        messages = [data.draw(honest_message()) for _ in range(correct)]
        if isinstance(flv, FLVClass3):
            # Class-3 liveness additionally needs the honest certification
            # invariant guaranteed by Selector-strongValidity: the highest-ts
            # pair is certified by > b histories.
            top = max(messages, key=lambda m: m.ts)
            if top.ts > 0:
                certified = sum(
                    1 for m in messages if (top.vote, top.ts) in m.history
                )
                if certified <= model.b:
                    continue  # vector unreachable under strongValidity
            # All correct share the highest-ts value (Lemma 4).
            if len({m.vote for m in messages if m.ts == top.ts}) > 1:
                continue
        result = flv.evaluate(messages, phase=6)
        assert result is not NULL_VALUE, f"{flv.name} returned null"


@settings(max_examples=100)
@given(st.lists(byzantine_message(), max_size=6))
def test_flv_total_on_garbage(messages):
    """FLV functions never raise, whatever well-typed junk they receive."""
    for flv in build_flvs():
        result = flv.evaluate(messages, phase=1)
        assert result is NULL_VALUE or result is ANY_VALUE or is_concrete(result)
