"""Whole-algorithm property tests: safety under randomized adversity.

These runs combine random initial values, random Byzantine strategy choices,
random delivery schedules (including never-good ones) and random crash
patterns.  *Agreement, validity and unanimity must hold in every single
execution*; termination is only asserted when a good suffix exists.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import (
    check_agreement,
    check_unanimity,
    check_validity,
    holds,
)
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import STRATEGY_REGISTRY, run_consensus
from repro.core.types import FaultModel
from repro.faults.crash import CrashEvent, CrashSchedule
from repro.rounds.policies import GoodBadPolicy, LossyPolicy
from repro.rounds.schedule import GoodBadSchedule

CLASS_MODELS = [
    (AlgorithmClass.CLASS_1, FaultModel(6, 1, 0)),
    (AlgorithmClass.CLASS_2, FaultModel(5, 1, 0)),
    (AlgorithmClass.CLASS_3, FaultModel(4, 1, 0)),
]

STRATEGIES = sorted(STRATEGY_REGISTRY)


@settings(max_examples=40, deadline=None)
@given(
    case=st.integers(min_value=0, max_value=len(CLASS_MODELS) - 1),
    strategy=st.sampled_from(STRATEGIES),
    values_seed=st.integers(min_value=0, max_value=10**6),
    drop_seed=st.integers(min_value=0, max_value=10**6),
    drop_prob=st.floats(min_value=0.0, max_value=0.9),
)
def test_safety_never_violated_under_lossy_network(
    case, strategy, values_seed, drop_seed, drop_prob
):
    cls, model = CLASS_MODELS[case]
    params = build_class_parameters(cls, model)
    rng = random.Random(values_seed)
    byz_pid = model.n - 1
    values = {
        pid: rng.choice(["x", "y"])
        for pid in model.processes
        if pid != byz_pid
    }
    outcome = run_consensus(
        params,
        values,
        byzantine={byz_pid: strategy},
        policy=LossyPolicy(random.Random(drop_seed), drop_prob),
        max_phases=5,
    )
    assert holds(check_agreement, outcome.decisions)
    assert outcome.unanimity_holds()


@settings(max_examples=30, deadline=None)
@given(
    case=st.integers(min_value=0, max_value=len(CLASS_MODELS) - 1),
    strategy=st.sampled_from(STRATEGIES),
    bad_prefix=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_liveness_with_good_suffix(case, strategy, bad_prefix, seed):
    cls, model = CLASS_MODELS[case]
    params = build_class_parameters(cls, model)
    rng = random.Random(seed)
    byz_pid = model.n - 1
    values = {
        pid: rng.choice(["x", "y"])
        for pid in model.processes
        if pid != byz_pid
    }
    policy = GoodBadPolicy(
        GoodBadSchedule.good_after(bad_prefix + 1), rng=random.Random(seed)
    )
    outcome = run_consensus(
        params,
        values,
        byzantine={byz_pid: strategy},
        policy=policy,
        max_phases=bad_prefix + 8,
    )
    assert holds(check_agreement, outcome.decisions)
    assert outcome.all_correct_decided, (
        f"{cls} with {strategy} failed to decide after the good period"
    )


@settings(max_examples=30, deadline=None)
@given(
    crash_round=st.integers(min_value=1, max_value=6),
    clean=st.booleans(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_benign_crash_patterns(crash_round, clean, seed):
    model = FaultModel(5, 0, 2)
    params = build_class_parameters(AlgorithmClass.CLASS_2, model)
    rng = random.Random(seed)
    values = {pid: rng.choice(["x", "y", "z"]) for pid in model.processes}
    schedule = CrashSchedule(
        model,
        [
            # Two crashes around the drawn round; the first may be unclean
            # (its crash-round messages are lost).
            CrashEvent(0, crash_round, None if clean else frozenset()),
            CrashEvent(1, crash_round + 1),
        ],
    )
    outcome = run_consensus(params, values, crash_schedule=schedule)
    assert holds(check_agreement, outcome.decisions)
    assert holds(
        check_validity, outcome.decisions, outcome.initial_values, frozenset()
    )
    assert outcome.all_correct_decided


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    strategies=st.lists(st.sampled_from(STRATEGIES), min_size=2, max_size=2),
)
def test_two_byzantine_processes(seed, strategies):
    """b = 2: PBFT territory needs n = 7."""
    model = FaultModel(7, 2, 0)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    rng = random.Random(seed)
    values = {pid: rng.choice(["x", "y"]) for pid in range(5)}
    outcome = run_consensus(
        params,
        values,
        byzantine={5: strategies[0], 6: strategies[1]},
    )
    assert holds(check_agreement, outcome.decisions)
    assert holds(
        check_unanimity,
        outcome.decisions,
        outcome.initial_values,
        frozenset({5, 6}),
    )
    assert outcome.all_correct_decided
