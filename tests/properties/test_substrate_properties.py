"""Property-based tests of the simulation substrates themselves."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.process import RoundStructure
from repro.core.types import FaultModel, Flag, RoundKind
from repro.network.wic import (
    AuthenticatedCoordinatorEcho,
    SignatureFreeCoordinatorEcho,
    WicAdversaryMode,
)
from repro.rounds.base import RunContext
from repro.rounds.policies import (
    AsyncPrelPolicy,
    deliver_to_byzantine,
    enforce_pcons,
    enforce_pgood,
    faithful_delivery,
)
from repro.rounds.predicates import check_pcons, check_pgood, check_prel
from repro.core.types import RoundInfo


# ------------------------------------------------------------- structure


@settings(max_examples=100)
@given(
    flag=st.sampled_from([Flag.ANY, Flag.CURRENT_PHASE]),
    skip=st.booleans(),
    round_number=st.integers(min_value=1, max_value=500),
)
def test_round_structure_is_consistent(flag, skip, round_number):
    """info() round numbers are self-consistent and phases never decrease."""
    structure = RoundStructure(flag, skip_first_selection=skip)
    info = structure.info(round_number)
    assert info.number == round_number
    assert info.phase >= 1
    if round_number > 1:
        previous = structure.info(round_number - 1)
        assert info.phase in (previous.phase, previous.phase + 1)
    # kinds_of_phase agrees with the enumeration of the phase's rounds.
    kinds = structure.kinds_of_phase(info.phase)
    assert info.kind in kinds


@settings(max_examples=50)
@given(
    flag=st.sampled_from([Flag.ANY, Flag.CURRENT_PHASE]),
    skip=st.booleans(),
    phases=st.integers(min_value=1, max_value=40),
)
def test_rounds_for_phases_matches_enumeration(flag, skip, phases):
    structure = RoundStructure(flag, skip_first_selection=skip)
    total = structure.rounds_for_phases(phases)
    assert structure.info(total).phase == phases
    assert structure.info(total).kind is RoundKind.DECISION
    assert structure.info(total + 1).phase == phases + 1


# ------------------------------------------------------------- policies


@st.composite
def outbound_matrix(draw, n, byzantine=frozenset()):
    """Random per-round traffic.

    Honest senders send one uniform payload (the round model's sending
    function produces a single message per destination set); Byzantine
    senders may equivocate freely.
    """
    senders = draw(st.sets(st.integers(0, n - 1), max_size=n))
    matrix = {}
    for sender in senders:
        dests = draw(st.sets(st.integers(0, n - 1), max_size=n))
        if sender in byzantine:
            matrix[sender] = {
                dest: f"m{sender}:{draw(st.integers(0, 3))}" for dest in dests
            }
        else:
            payload = f"m{sender}:{draw(st.integers(0, 3))}"
            matrix[sender] = {dest: payload for dest in dests}
    return matrix


@settings(max_examples=100)
@given(st.data())
def test_enforce_pcons_always_satisfies_pcons(data):
    n = data.draw(st.integers(min_value=2, max_value=6), label="n")
    b = data.draw(st.integers(min_value=0, max_value=min(1, n - 1)), label="b")
    byz = frozenset({n - 1}) if b else frozenset()
    ctx = RunContext(FaultModel(n, b, 0), byzantine=byz)
    outbound = data.draw(outbound_matrix(n, byzantine=byz), label="outbound")
    matrix = enforce_pcons(outbound, ctx)
    assert check_pcons(outbound, matrix, ctx.correct)


@settings(max_examples=100)
@given(st.data())
def test_enforce_pgood_always_satisfies_pgood(data):
    n = data.draw(st.integers(min_value=2, max_value=6), label="n")
    ctx = RunContext(FaultModel(n, 0, 0))
    outbound = data.draw(outbound_matrix(n), label="outbound")
    matrix = enforce_pgood(outbound, ctx)
    assert check_pgood(outbound, matrix, ctx.correct)


@settings(max_examples=50)
@given(seed=st.integers(0, 10**6))
def test_prel_policy_always_satisfies_prel(seed):
    model = FaultModel(6, 1, 1)
    ctx = RunContext(model, byzantine=frozenset({5}))
    policy = AsyncPrelPolicy(random.Random(seed))
    outbound = {
        s: {d: f"m{s}" for d in range(6)} for s in range(6)
    }
    info = RoundInfo(1, 1, RoundKind.DECISION)
    matrix = policy.deliver(info, outbound, ctx)
    assert check_prel(matrix, ctx.correct, model.n - model.b - model.f)


@settings(max_examples=100)
@given(st.data())
def test_no_impersonation_in_any_policy(data):
    """Delivered payloads always originate from the recorded sender."""
    n = data.draw(st.integers(min_value=2, max_value=5), label="n")
    ctx = RunContext(FaultModel(n, 0, 0))
    outbound = data.draw(outbound_matrix(n), label="outbound")
    for build in (faithful_delivery, lambda o: enforce_pcons(o, ctx)):
        matrix = build(outbound)
        for receiver, inbox in matrix.items():
            for sender, payload in inbox.items():
                produced = set(outbound.get(sender, {}).values())
                assert payload in produced


# ------------------------------------------------------------------ wic


@settings(max_examples=40, deadline=None)
@given(
    phase=st.integers(min_value=1, max_value=8),
    mode=st.sampled_from(list(WicAdversaryMode)),
    seed=st.integers(0, 1000),
)
def test_signature_free_echo_never_conflicts(phase, mode, seed):
    """Whatever the coordinator/adversary does, two correct processes never
    accept different payloads for the same sender."""
    model = FaultModel(4, 1, 0)
    ctx = RunContext(model, byzantine=frozenset({3}))
    wic = SignatureFreeCoordinatorEcho(model, adversary_mode=mode)
    rng = random.Random(seed)
    inputs = {pid: f"m{pid}:{rng.randrange(3)}" for pid in range(4)}

    def deliver(outbound):
        matrix = faithful_delivery(outbound)
        deliver_to_byzantine(matrix, outbound, ctx)
        return matrix

    result = wic.execute(phase, inputs, deliver, ctx)
    for sender in range(4):
        accepted = {
            result[pid][sender]
            for pid in ctx.correct
            if sender in result.get(pid, {})
        }
        assert len(accepted) <= 1


@settings(max_examples=40, deadline=None)
@given(
    phase=st.integers(min_value=1, max_value=8),
    mode=st.sampled_from(list(WicAdversaryMode)),
)
def test_authenticated_echo_never_forges(phase, mode):
    """Every accepted entry equals what the sender actually signed."""
    model = FaultModel(4, 1, 0)
    ctx = RunContext(model, byzantine=frozenset({3}))
    wic = AuthenticatedCoordinatorEcho(model, adversary_mode=mode)
    inputs = {pid: f"payload-{pid}" for pid in range(4)}

    def deliver(outbound):
        matrix = faithful_delivery(outbound)
        deliver_to_byzantine(matrix, outbound, ctx)
        return matrix

    result = wic.execute(phase, inputs, deliver, ctx)
    for pid in ctx.correct:
        for sender, payload in result.get(pid, {}).items():
            assert payload == inputs[sender]


@settings(max_examples=30, deadline=None)
@given(phase=st.integers(min_value=1, max_value=4))
def test_correct_coordinator_yields_pcons_vectors(phase):
    """With a correct coordinator both implementations give equal vectors."""
    model = FaultModel(4, 1, 0)
    ctx = RunContext(model, byzantine=frozenset({3}))
    for wic_cls in (AuthenticatedCoordinatorEcho, SignatureFreeCoordinatorEcho):
        wic = wic_cls(model)
        if wic.coordinator(phase) in ctx.byzantine:
            continue
        inputs = {pid: f"m{pid}" for pid in range(4)}

        def deliver(outbound):
            matrix = faithful_delivery(outbound)
            deliver_to_byzantine(matrix, outbound, ctx)
            return matrix

        result = wic.execute(phase, inputs, deliver, ctx)
        vectors = {
            tuple(sorted(result.get(pid, {}).items())) for pid in ctx.correct
        }
        assert len(vectors) == 1
