"""The algorithm registry and spec metadata."""

from repro.algorithms import ALGORITHM_BUILDERS
from repro.core.classification import classify


EXPECTED = {
    "one-third-rule",
    "fab-paxos",
    "mqb",
    "paxos",
    "chandra-toueg",
    "pbft",
    "ben-or",
}

MINIMAL_N = {
    "one-third-rule": 4,
    "fab-paxos": 6,
    "mqb": 5,
    "paxos": 3,
    "chandra-toueg": 3,
    "pbft": 4,
    "ben-or": 3,
}


def test_all_paper_algorithms_registered():
    assert set(ALGORITHM_BUILDERS) == EXPECTED


def test_specs_classify_consistently():
    """Each spec's derived Table-1 class matches the paper's assignment."""
    for name, builder in ALGORITHM_BUILDERS.items():
        spec = builder(MINIMAL_N[name])
        derived = classify(spec.parameters)
        assert derived is spec.algorithm_class, (
            f"{name}: paper says {spec.algorithm_class}, derived {derived}"
        )


def test_rounds_per_phase_matches_class():
    for name, builder in ALGORITHM_BUILDERS.items():
        spec = builder(MINIMAL_N[name])
        assert (
            spec.parameters.rounds_per_phase
            == spec.algorithm_class.rounds_per_phase
        )


def test_state_footprint_within_class_budget():
    """No algorithm uses more state variables than its class's column."""
    for name, builder in ALGORITHM_BUILDERS.items():
        spec = builder(MINIMAL_N[name])
        budget = set(spec.algorithm_class.state)
        assert set(spec.parameters.state_footprint) <= budget, name


def test_describe_mentions_name_and_section():
    spec = ALGORITHM_BUILDERS["mqb"](5)
    text = spec.describe()
    assert "MQB" in text and "5.2" in text
