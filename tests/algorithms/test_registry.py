"""The algorithm registry and spec metadata."""

from repro.algorithms import ALGORITHM_BUILDERS
from repro.core.classification import classify


EXPECTED = {
    "one-third-rule",
    "fab-paxos",
    "mqb",
    "paxos",
    "chandra-toueg",
    "pbft",
    "ben-or",
}

MINIMAL_N = {
    "one-third-rule": 4,
    "fab-paxos": 6,
    "mqb": 5,
    "paxos": 3,
    "chandra-toueg": 3,
    "pbft": 4,
    "ben-or": 3,
}


def test_all_paper_algorithms_registered():
    assert set(ALGORITHM_BUILDERS) == EXPECTED


def test_specs_classify_consistently():
    """Each spec's derived Table-1 class matches the paper's assignment."""
    for name, builder in ALGORITHM_BUILDERS.items():
        spec = builder(MINIMAL_N[name])
        derived = classify(spec.parameters)
        assert derived is spec.algorithm_class, (
            f"{name}: paper says {spec.algorithm_class}, derived {derived}"
        )


def test_rounds_per_phase_matches_class():
    for name, builder in ALGORITHM_BUILDERS.items():
        spec = builder(MINIMAL_N[name])
        assert (
            spec.parameters.rounds_per_phase
            == spec.algorithm_class.rounds_per_phase
        )


def test_state_footprint_within_class_budget():
    """No algorithm uses more state variables than its class's column."""
    for name, builder in ALGORITHM_BUILDERS.items():
        spec = builder(MINIMAL_N[name])
        budget = set(spec.algorithm_class.state)
        assert set(spec.parameters.state_footprint) <= budget, name


def test_describe_mentions_name_and_section():
    spec = ALGORITHM_BUILDERS["mqb"](5)
    text = spec.describe()
    assert "MQB" in text and "5.2" in text


def test_spec_run_matches_run_consensus():
    """AlgorithmSpec.run drives the kernel directly, bytes unchanged.

    The spec method assembles build_instance + run_instance itself; this
    pins it to the legacy run_consensus wrapper outcome for outcome — same
    decisions, same rounds, same invariant verdicts — including when the
    caller supplies Byzantine strategies and a phase bound.
    """
    from repro.core.run import run_consensus

    spec = ALGORITHM_BUILDERS["pbft"](4)
    for initial, byzantine, max_phases in (
        ({0: "a", 1: "b", 2: "b", 3: "a"}, None, 30),
        ({0: "a", 2: "b", 3: "a"}, {1: "equivocator"}, 12),
        ({0: "a", 2: "b", 3: "a"}, {1: "vote-flipper"}, 8),
    ):
        mine = spec.run(
            initial, byzantine=byzantine, max_phases=max_phases
        )
        legacy = run_consensus(
            spec.parameters,
            initial,
            config=spec.config,
            byzantine=byzantine,
            max_phases=max_phases,
        )
        assert mine.decisions.keys() == legacy.decisions.keys()
        assert {
            pid: decision.value for pid, decision in mine.decisions.items()
        } == {
            pid: decision.value for pid, decision in legacy.decisions.items()
        }
        assert mine.result.rounds_executed == legacy.result.rounds_executed
        assert mine.decided_values == legacy.decided_values
        assert dict(mine.invariant_report()) == dict(
            legacy.invariant_report()
        )
