"""PBFT: optimal-resilience Byzantine consensus with history certificates."""

import pytest

from repro.algorithms.pbft import build_pbft
from repro.core.run import STRATEGY_REGISTRY


class TestBuilder:
    def test_bound(self):
        with pytest.raises(ValueError, match="n > 3b"):
            build_pbft(3, b=1)
        assert build_pbft(4, b=1).parameters.model.b == 1

    def test_default_b_is_maximal(self):
        assert build_pbft(4).parameters.model.b == 1
        assert build_pbft(7).parameters.model.b == 2

    def test_threshold_2b_plus_1(self):
        assert build_pbft(4).parameters.threshold == 3
        assert build_pbft(7).parameters.threshold == 5

    def test_full_state_footprint(self):
        assert build_pbft(4).parameters.state_footprint == (
            "vote",
            "ts",
            "history",
        )


class TestExecution:
    def test_decides_at_optimal_resilience(self):
        spec = build_pbft(4)
        outcome = spec.run(
            {0: "a", 1: "b", 2: "a"}, byzantine={3: "equivocator"}
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1

    @pytest.mark.parametrize("strategy", sorted(STRATEGY_REGISTRY))
    def test_tolerates_every_strategy_at_max_b(self, strategy):
        spec = build_pbft(4)
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(3)}, byzantine={3: strategy}
        )
        assert outcome.agreement_holds, strategy
        assert outcome.all_correct_decided, strategy

    def test_b2_with_seven(self):
        spec = build_pbft(7)
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(5)},
            byzantine={5: "fake-history-liar", 6: "equivocator"},
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided

    def test_history_accumulates_across_phases(self):
        """PBFT's price for n > 3b: the unbounded history variable."""
        import random

        from repro.rounds.policies import GoodBadPolicy
        from repro.rounds.schedule import GoodBadSchedule

        spec = build_pbft(4)
        policy = GoodBadPolicy(
            GoodBadSchedule.good_after(10), rng=random.Random(1)
        )
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(3)},
            byzantine={3: "equivocator"},
            policy=policy,
            max_phases=10,
        )
        assert outcome.agreement_holds and outcome.all_correct_decided
        histories = [
            len(p.state.history) for p in outcome.honest_processes.values()
        ]
        # More than one phase ran, so histories logged multiple entries.
        assert max(histories) >= 2
