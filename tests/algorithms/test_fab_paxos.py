"""FaB Paxos: n > 5b, 2 rounds per phase, vote-only state."""

import pytest

from repro.algorithms.fab_paxos import build_fab_paxos
from repro.core.run import STRATEGY_REGISTRY


class TestBuilder:
    def test_bound(self):
        with pytest.raises(ValueError, match="n > 5b"):
            build_fab_paxos(5, b=1)
        assert build_fab_paxos(6, b=1).parameters.model.b == 1

    def test_default_b_is_maximal(self):
        assert build_fab_paxos(6).parameters.model.b == 1
        assert build_fab_paxos(11).parameters.model.b == 2

    def test_threshold(self):
        # ⌈(n + 3b + 1)/2⌉ = ⌈10/2⌉ = 5 for n=6, b=1.
        assert build_fab_paxos(6).parameters.threshold == 5

    def test_two_rounds_per_phase(self):
        assert build_fab_paxos(6).parameters.rounds_per_phase == 2

    def test_vote_only_state(self):
        assert build_fab_paxos(6).parameters.state_footprint == ("vote",)


class TestExecution:
    def test_decides_in_two_rounds_fault_free(self):
        spec = build_fab_paxos(6)
        outcome = spec.run({pid: f"v{pid % 2}" for pid in range(6)})
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.rounds_to_last_decision == 2

    @pytest.mark.parametrize("strategy", sorted(STRATEGY_REGISTRY))
    def test_tolerates_every_strategy_at_max_b(self, strategy):
        spec = build_fab_paxos(6)
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(5)}, byzantine={5: strategy}
        )
        assert outcome.agreement_holds, strategy
        assert outcome.all_correct_decided, strategy

    def test_histories_never_grow(self):
        """Class 1 keeps no history — the message fields stay empty."""
        spec = build_fab_paxos(6)
        outcome = spec.run({pid: "v" for pid in range(6)})
        for process in outcome.honest_processes.values():
            # The state object exists but the instantiation never reads it;
            # the selection messages carry empty histories (field elision).
            pass
        from repro.core.types import RoundInfo, RoundKind

        process = next(iter(outcome.honest_processes.values()))
        message = process.send(RoundInfo(1, 1, RoundKind.SELECTION))[0]
        assert message.history == frozenset()
        assert message.ts == 0

    def test_two_byzantine_needs_eleven(self):
        spec = build_fab_paxos(11, b=2)
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(9)},
            byzantine={9: "equivocator", 10: "vote-flipper"},
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
