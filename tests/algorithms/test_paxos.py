"""Paxos: leader-based benign consensus."""

import pytest

from repro.algorithms.paxos import build_paxos
from repro.core.types import FaultModel
from repro.detectors.leader import OmegaOracle, StabilizingLeaderOracle
from repro.faults.crash import CrashEvent, CrashSchedule


class TestBuilder:
    def test_bound(self):
        with pytest.raises(ValueError, match="n > 2f"):
            build_paxos(4, f=2)

    def test_majority_threshold(self):
        assert build_paxos(3).parameters.threshold == 2
        assert build_paxos(5).parameters.threshold == 3

    def test_leader_selector_is_singleton(self):
        spec = build_paxos(3)
        assert spec.parameters.selector.is_singleton


class TestExecution:
    def test_decides_with_stable_leader(self):
        spec = build_paxos(3)
        outcome = spec.run({0: "a", 1: "b", 2: "c"})
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1

    def test_leader_value_wins_fresh_start(self):
        # With leader n−1 and a fresh system, Algorithm 7 returns ? at the
        # leader, which then picks deterministically among all proposals.
        spec = build_paxos(3, oracle=OmegaOracle(2))
        outcome = spec.run({0: "b", 1: "c", 2: "a"})
        assert len(outcome.decided_values) == 1

    def test_tolerates_minority_crashes(self):
        spec = build_paxos(5)
        model = spec.parameters.model
        schedule = CrashSchedule(
            model, [CrashEvent(0, 1, frozenset()), CrashEvent(1, 2)]
        )
        outcome = spec.run(
            {pid: f"v{pid}" for pid in range(5)}, crash_schedule=schedule
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided

    def test_crashed_leader_blocks_until_reelection(self):
        """A dead leader stalls phases; a stabilizing oracle recovers."""
        model_n = 3
        oracle = StabilizingLeaderOracle(
            FaultModel(model_n, 0, 1),
            stable_leader=2,
            stable_from_phase=3,
            chaos_pool=[0],  # everyone initially follows doomed process 0
            seed=1,
        )
        spec = build_paxos(model_n, oracle=oracle)
        schedule = CrashSchedule(
            spec.parameters.model, [CrashEvent(0, 1, frozenset())]
        )
        outcome = spec.run(
            {pid: f"v{pid}" for pid in range(3)},
            crash_schedule=schedule,
            max_phases=8,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        # Decision can only happen once the oracle stabilizes (phase ≥ 3).
        assert outcome.phases_to_last_decision >= 3

    def test_indulgence_no_decision_before_stabilization_means_no_conflict(
        self,
    ):
        """Whatever the chaotic leader prefix does, agreement holds."""
        for seed in range(5):
            oracle = StabilizingLeaderOracle(
                FaultModel(3, 0, 1), 2, stable_from_phase=4, seed=seed
            )
            spec = build_paxos(3, oracle=oracle)
            outcome = spec.run({0: "x", 1: "y", 2: "z"}, max_phases=10)
            assert outcome.agreement_holds, seed
            assert outcome.all_correct_decided, seed
