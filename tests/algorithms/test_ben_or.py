"""Ben-Or spec building (execution is covered in tests/core/test_randomized)."""

import pytest

from repro.algorithms.ben_or import build_ben_or
from repro.core.randomized import check_randomizable
from repro.core.types import Flag


class TestBenignVariant:
    def test_threshold_f_plus_1(self):
        assert build_ben_or(5, f=2).parameters.threshold == 3

    def test_default_f(self):
        assert build_ben_or(5).parameters.model.f == 2

    def test_bound(self):
        with pytest.raises(ValueError, match="n > 2f"):
            build_ben_or(4, f=2)


class TestByzantineVariant:
    def test_threshold_3b_plus_1(self):
        assert build_ben_or(5, b=1).parameters.threshold == 4

    def test_bound(self):
        with pytest.raises(ValueError, match="n > 4b"):
            build_ben_or(8, b=2)
        assert build_ben_or(9, b=2).parameters.threshold == 7

    def test_f_forced_to_zero(self):
        assert build_ben_or(5, b=1).parameters.model.f == 0


class TestStructure:
    def test_flag_phi(self):
        assert build_ben_or(5).parameters.flag is Flag.CURRENT_PHASE

    def test_randomizable(self):
        assert check_randomizable(build_ben_or(5).parameters)
        assert check_randomizable(build_ben_or(5, b=1).parameters)

    def test_name_mentions_variant(self):
        assert "benign" in build_ben_or(5).name
        assert "Byzantine" in build_ben_or(5, b=1).name
