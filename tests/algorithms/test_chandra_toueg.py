"""Chandra-Toueg: rotating coordinator, majority threshold."""

import pytest

from repro.algorithms.chandra_toueg import build_chandra_toueg
from repro.faults.crash import CrashEvent, CrashSchedule


class TestBuilder:
    def test_bound(self):
        with pytest.raises(ValueError, match="n > 2f"):
            build_chandra_toueg(2, f=1)

    def test_rotating_coordinator(self):
        spec = build_chandra_toueg(3)
        selector = spec.parameters.selector
        assert selector.select(0, 1) == frozenset({0})
        assert selector.select(0, 2) == frozenset({1})


class TestExecution:
    def test_decides_phase_one_with_live_coordinator(self):
        spec = build_chandra_toueg(3)
        outcome = spec.run({0: "a", 1: "b", 2: "c"})
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1

    def test_rotation_skips_crashed_coordinator(self):
        """Phase 1's coordinator (process 0) is dead: the rotation reaches
        process 1 in phase 2 and decides there."""
        spec = build_chandra_toueg(3)
        schedule = CrashSchedule(
            spec.parameters.model, [CrashEvent(0, 1, frozenset())]
        )
        outcome = spec.run(
            {pid: f"v{pid}" for pid in range(3)},
            crash_schedule=schedule,
            max_phases=5,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 2

    def test_coordinator_value_propagates(self):
        # With coordinator 0 in phase 1 and a fresh system, its FLV answers
        # ? and selects deterministically; all correct adopt one value.
        spec = build_chandra_toueg(5)
        outcome = spec.run({pid: f"v{pid}" for pid in range(5)})
        assert len(outcome.decided_values) == 1

    def test_max_crashes(self):
        spec = build_chandra_toueg(5)  # f = 2
        schedule = CrashSchedule(
            spec.parameters.model,
            [CrashEvent(0, 1, frozenset()), CrashEvent(1, 1, frozenset())],
        )
        outcome = spec.run(
            {pid: f"v{pid}" for pid in range(5)},
            crash_schedule=schedule,
            max_phases=6,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
