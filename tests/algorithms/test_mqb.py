"""MQB — the paper's new n > 4b algorithm (Section 5.2)."""

import pytest

from repro.algorithms.mqb import build_mqb
from repro.core.run import STRATEGY_REGISTRY
from repro.core.types import RoundInfo, RoundKind


class TestBuilder:
    def test_bound(self):
        with pytest.raises(ValueError, match="n > 4b"):
            build_mqb(4, b=1)
        assert build_mqb(5, b=1).parameters.model.b == 1

    def test_threshold(self):
        # ⌈(n + 2b + 1)/2⌉: n=5, b=1 → 4; n=9, b=2 → 7.
        assert build_mqb(5).parameters.threshold == 4
        assert build_mqb(9, b=2).parameters.threshold == 7

    def test_sits_between_fab_and_pbft(self):
        """The paper's headline: 4b < n ≤ 5b is MQB-only territory."""
        from repro.algorithms.fab_paxos import build_fab_paxos
        from repro.algorithms.pbft import build_pbft

        # n = 5, b = 1: FaB Paxos impossible, MQB fine.
        with pytest.raises(ValueError):
            build_fab_paxos(5, b=1)
        assert build_mqb(5, b=1)
        # PBFT also works at n = 5 but needs history; MQB does not:
        assert build_mqb(5).parameters.state_footprint == ("vote", "ts")
        assert build_pbft(5, b=1).parameters.state_footprint == (
            "vote",
            "ts",
            "history",
        )

    def test_no_history_on_the_wire(self):
        spec = build_mqb(5)
        outcome = spec.run({pid: "v" for pid in range(5)})
        process = next(iter(outcome.honest_processes.values()))
        message = process.send(RoundInfo(4, 2, RoundKind.SELECTION))[0]
        assert message.history == frozenset()  # ts travels, history doesn't
        assert message.ts == outcome.honest_processes[0].state.ts


class TestExecution:
    def test_three_rounds_per_phase(self):
        spec = build_mqb(5)
        outcome = spec.run({pid: f"v{pid % 2}" for pid in range(5)})
        assert outcome.rounds_to_last_decision == 3

    @pytest.mark.parametrize("strategy", sorted(STRATEGY_REGISTRY))
    def test_tolerates_every_strategy_at_max_b(self, strategy):
        spec = build_mqb(5)
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(4)}, byzantine={4: strategy}
        )
        assert outcome.agreement_holds, strategy
        assert outcome.all_correct_decided, strategy

    def test_unanimity(self):
        spec = build_mqb(5)
        outcome = spec.run(
            {pid: "same" for pid in range(4)}, byzantine={4: "vote-flipper"}
        )
        assert outcome.decided_values == {"same"}

    def test_b2_configuration(self):
        spec = build_mqb(9, b=2)
        outcome = spec.run(
            {pid: f"v{pid % 2}" for pid in range(7)},
            byzantine={7: "high-ts-liar", 8: "equivocator"},
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
