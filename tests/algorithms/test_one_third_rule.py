"""OneThirdRule: instantiation vs the literal Algorithm 5."""

import pytest

from repro.algorithms.one_third_rule import (
    OriginalOneThirdRuleProcess,
    build_one_third_rule,
    one_third_rule_threshold,
)
from repro.core.types import FaultModel, RoundInfo, RoundKind
from repro.core.flv_class1 import FLVClass1
from repro.utils.sentinels import NULL_VALUE, ANY_VALUE
from repro.rounds.engine import SyncEngine
from repro.rounds.policies import ReliablePolicy
from tests.conftest import sel_msg


class TestBuilder:
    def test_threshold(self):
        assert one_third_rule_threshold(FaultModel(4, 0, 1)) == 3
        assert one_third_rule_threshold(FaultModel(7, 0, 2)) == 5

    def test_bound_enforced(self):
        with pytest.raises(ValueError, match="n > 3f"):
            build_one_third_rule(6, f=2)

    def test_default_f_is_maximal(self):
        assert build_one_third_rule(7).parameters.model.f == 2
        assert build_one_third_rule(4).parameters.model.f == 1

    def test_decides_fault_free(self):
        spec = build_one_third_rule(4)
        outcome = spec.run({0: "a", 1: "b", 2: "a", 3: "b"})
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1


class TestOriginalAlgorithm5:
    def run_original(self, n, values, rounds=4):
        model = FaultModel(n, 0, (n - 1) // 3)
        processes = {
            pid: OriginalOneThirdRuleProcess(pid, values[pid], model)
            for pid in range(n)
        }
        engine = SyncEngine(
            model,
            processes,
            ReliablePolicy(),
            lambda r: RoundInfo(r, r, RoundKind.SELECTION),
        )
        engine.run(rounds)
        return processes

    def test_unanimous_decides_in_one_round(self):
        processes = self.run_original(4, {pid: "v" for pid in range(4)})
        assert all(p.decided == "v" for p in processes.values())
        assert all(p.decision_round == 1 for p in processes.values())

    def test_split_decides_on_most_frequent(self):
        processes = self.run_original(4, {0: "a", 1: "a", 2: "a", 3: "b"})
        assert all(p.decided == "a" for p in processes.values())

    def test_agreement(self):
        processes = self.run_original(7, {pid: f"v{pid % 2}" for pid in range(7)})
        decided = {p.decided for p in processes.values() if p.decided}
        assert len(decided) <= 1


class TestImprovementClaim:
    """Section 5.1: whenever Algorithm 5 selects, Algorithm 2 selects too —
    and Algorithm 2 may select where Algorithm 5 cannot."""

    def test_instantiation_selects_where_original_cannot(self):
        model = FaultModel(6, 0, 1)
        td = one_third_rule_threshold(model)  # ⌈13/3⌉ = 5
        flv = FLVClass1(model, td)
        # 4 messages = not more than 2n/3 (= 4): Algorithm 5 does not select.
        messages = [sel_msg("v")] * 4
        assert 3 * len(messages) <= 2 * model.n
        # Algorithm 2 line 3 still selects v (support > n − TD + b = 1).
        assert flv.evaluate(messages) == "v"

    def test_whenever_original_selects_instantiation_does(self):
        model = FaultModel(6, 0, 1)
        td = one_third_rule_threshold(model)
        flv = FLVClass1(model, td)
        # > 2n/3 messages (Algorithm 5's line 7 condition) with any split:
        import itertools

        for split in range(6):
            messages = [sel_msg("a")] * split + [sel_msg("b")] * (5 - split)
            result = flv.evaluate(messages)
            # |μ| = 5 > 2(n − TD + b) = 2 → Algorithm 2 never answers null.
            assert result is not NULL_VALUE
