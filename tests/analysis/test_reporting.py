"""Text table rendering."""

import pytest

from repro.analysis.reporting import format_kv_block, format_table


def test_alignment():
    table = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
    lines = table.splitlines()
    assert lines[0].startswith("a")
    assert "---" in lines[1]
    assert lines[2].startswith("1")
    assert lines[3].startswith("22 | yy")


def test_width_from_headers():
    table = format_table(["long-header", "b"], [["x", "y"]])
    assert "long-header" in table.splitlines()[0]


def test_row_length_validation():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [[1]])


def test_kv_block():
    block = format_kv_block("Title", [("key", "value")])
    assert block.splitlines()[0] == "Title"
    assert "key: value" in block


def test_empty_rows_ok():
    table = format_table(["a"], [])
    assert len(table.splitlines()) == 2
