"""Lemma-level checkers on snapshot-recorded runs."""

import random

import pytest

from repro.analysis.invariants import InvariantViolation
from repro.analysis.lemmas import (
    check_all_lemmas,
    check_decision_support,
    check_lemma4_unique_validated_value,
    check_timestamp_monotonicity,
    check_validated_pair_was_selected,
)
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import STRATEGY_REGISTRY, run_consensus
from repro.core.types import FaultModel
from repro.rounds.policies import GoodBadPolicy
from repro.rounds.schedule import GoodBadSchedule


def snapshot_run(cls, model, strategy=None, bad_prefix=0, seed=0):
    params = build_class_parameters(cls, model)
    byzantine = {model.n - 1: strategy} if strategy else {}
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }
    policy = None
    if bad_prefix:
        policy = GoodBadPolicy(
            GoodBadSchedule.good_after(bad_prefix + 1), rng=random.Random(seed)
        )
    return run_consensus(
        params,
        values,
        byzantine=byzantine,
        policy=policy,
        record_snapshots=True,
        max_phases=bad_prefix + 8,
    )


class TestLemmaChecksOnCleanRuns:
    @pytest.mark.parametrize("strategy", sorted(STRATEGY_REGISTRY))
    def test_class3_under_every_strategy(self, strategy):
        outcome = snapshot_run(
            AlgorithmClass.CLASS_3, FaultModel(4, 1, 0), strategy
        )
        check_all_lemmas(outcome)

    @pytest.mark.parametrize("strategy", ["equivocator", "high-ts-liar"])
    def test_class2_under_attack(self, strategy):
        outcome = snapshot_run(
            AlgorithmClass.CLASS_2, FaultModel(5, 1, 0), strategy
        )
        check_all_lemmas(outcome)

    def test_multi_phase_runs(self):
        for seed in range(4):
            outcome = snapshot_run(
                AlgorithmClass.CLASS_3,
                FaultModel(4, 1, 0),
                "adaptive-liar",
                bad_prefix=6,
                seed=seed,
            )
            assert outcome.all_correct_decided
            check_all_lemmas(outcome)


class TestCheckersDetectViolations:
    def test_lemma4_checker_fires_on_forged_trace(self):
        outcome = snapshot_run(AlgorithmClass.CLASS_3, FaultModel(4, 1, 0))
        # Corrupt the recorded snapshots: two validated values in phase 1.
        for record in outcome.result.trace.records:
            if record.snapshots:
                pids = list(record.snapshots)
                record.snapshots[pids[0]] = ("A", record.info.phase, frozenset())
                record.snapshots[pids[1]] = ("B", record.info.phase, frozenset())
        with pytest.raises(InvariantViolation, match="Lemma 4"):
            check_lemma4_unique_validated_value(outcome)

    def test_monotonicity_checker_fires(self):
        outcome = snapshot_run(AlgorithmClass.CLASS_3, FaultModel(4, 1, 0))
        records = outcome.result.trace.records
        # Inject a decreasing timestamp for process 0 in the last record.
        records[-1].snapshots[0] = ("x", -0, frozenset())
        records[-1].snapshots[0] = ("x", 0, frozenset())
        records[0].snapshots[0] = ("x", 5, frozenset())
        with pytest.raises(InvariantViolation, match="decreased"):
            check_timestamp_monotonicity(outcome)

    def test_support_checker_fires(self):
        outcome = snapshot_run(AlgorithmClass.CLASS_3, FaultModel(4, 1, 0))
        # Erase all validation-round support.
        for record in outcome.result.trace.records:
            for pid in list(record.snapshots):
                record.snapshots[pid] = ("never-decided", 0, frozenset())
        if outcome.decisions:
            with pytest.raises(InvariantViolation, match="supporters"):
                check_decision_support(outcome)


class TestSelectiveApplicability:
    def test_history_check_skips_class2(self):
        outcome = snapshot_run(AlgorithmClass.CLASS_2, FaultModel(5, 1, 0))
        # Class 2 records no history: the checker must pass vacuously.
        check_validated_pair_was_selected(outcome)

    def test_flag_any_skips_decision_support(self):
        outcome = snapshot_run(AlgorithmClass.CLASS_1, FaultModel(6, 1, 0))
        check_decision_support(outcome)  # vacuous for FLAG=*
