"""RunMetrics extraction."""

from repro.algorithms import build_fab_paxos, build_pbft
from repro.analysis.metrics import RunMetrics


def test_metrics_from_pbft_run():
    spec = build_pbft(4)
    outcome = spec.run({pid: f"v{pid % 2}" for pid in range(4)})
    metrics = RunMetrics.from_outcome(outcome)
    assert metrics.rounds_executed == 3
    assert metrics.rounds_to_last_decision == 3
    assert metrics.phases_to_last_decision == 1
    assert metrics.decided_count == 4
    assert metrics.state_footprint == ("vote", "ts", "history")
    assert metrics.messages_sent > 0
    assert metrics.messages_per_round > 0


def test_metrics_reflect_round_count_difference():
    fab = build_fab_paxos(6)
    pbft = build_pbft(4)
    fab_metrics = RunMetrics.from_outcome(
        fab.run({pid: "v" for pid in range(6)})
    )
    pbft_metrics = RunMetrics.from_outcome(
        pbft.run({pid: "v" for pid in range(4)})
    )
    assert fab_metrics.rounds_executed == 2  # class 1: 2 rounds/phase
    assert pbft_metrics.rounds_executed == 3  # class 3: 3 rounds/phase


def test_history_size_tracked():
    spec = build_pbft(4)
    outcome = spec.run({pid: "v" for pid in range(4)})
    metrics = RunMetrics.from_outcome(outcome)
    assert metrics.max_history_size >= 1


def test_describe():
    spec = build_pbft(4)
    metrics = RunMetrics.from_outcome(spec.run({pid: "v" for pid in range(4)}))
    assert "rounds=3" in metrics.describe()
