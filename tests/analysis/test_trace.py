"""Execution trace bookkeeping."""

from repro.analysis.trace import ExecutionTrace, RoundRecord
from repro.core.types import Decision, RoundInfo, RoundKind


def record(number, phase, kind=RoundKind.DECISION, decisions=(), pcons=False):
    return RoundRecord(
        info=RoundInfo(number, phase, kind),
        sent_count=4,
        delivered_count=3,
        pgood=True,
        pcons=pcons,
        prel=True,
        decisions=tuple(decisions),
    )


def test_append_and_counts():
    trace = ExecutionTrace()
    trace.append(record(1, 1))
    trace.append(record(2, 1))
    assert trace.rounds_executed == 2
    assert trace.total_messages_sent == 8
    assert trace.total_messages_delivered == 6


def test_first_decision_is_kept():
    trace = ExecutionTrace()
    trace.append(record(3, 1, decisions=[Decision(0, "v", 3, 1)]))
    trace.append(record(6, 2, decisions=[Decision(0, "w", 6, 2)]))
    assert trace.decisions[0].value == "v"


def test_decision_rounds():
    trace = ExecutionTrace()
    assert trace.first_decision_round() is None
    trace.append(record(3, 1, decisions=[Decision(0, "v", 3, 1)]))
    trace.append(record(6, 2, decisions=[Decision(1, "v", 6, 2)]))
    assert trace.first_decision_round() == 3
    assert trace.last_decision_round() == 6


def test_rounds_where_pcons():
    trace = ExecutionTrace()
    trace.append(record(1, 1, pcons=True))
    trace.append(record(2, 1, pcons=False))
    assert len(trace.rounds_where(pcons=True)) == 1


def test_decided_values():
    trace = ExecutionTrace()
    trace.append(record(3, 1, decisions=[Decision(0, "v", 3, 1)]))
    trace.append(record(3, 1, decisions=[Decision(1, "v", 3, 1)]))
    assert trace.decided_values() == {"v"}
