"""Invariant checkers."""

import pytest

from repro.analysis.invariants import (
    InvariantViolation,
    check_agreement,
    check_integrity,
    check_termination,
    check_unanimity,
    check_validity,
    holds,
)
from repro.core.types import Decision


def decision(pid, value):
    return Decision(pid, value, 3, 1)


class TestAgreement:
    def test_passes_on_common_value(self):
        check_agreement({0: decision(0, "v"), 1: decision(1, "v")})

    def test_fails_on_conflict(self):
        with pytest.raises(InvariantViolation, match="agreement"):
            check_agreement({0: decision(0, "v"), 1: decision(1, "w")})

    def test_empty_ok(self):
        check_agreement({})


class TestValidity:
    def test_passes_on_proposal(self):
        check_validity(
            {0: decision(0, "a")}, {0: "a", 1: "b"}, byzantine=frozenset()
        )

    def test_fails_on_invented_value(self):
        with pytest.raises(InvariantViolation, match="validity"):
            check_validity(
                {0: decision(0, "z")}, {0: "a", 1: "b"}, byzantine=frozenset()
            )

    def test_vacuous_with_byzantine(self):
        check_validity(
            {0: decision(0, "z")}, {0: "a"}, byzantine=frozenset({3})
        )


class TestUnanimity:
    def test_fails_when_common_proposal_ignored(self):
        with pytest.raises(InvariantViolation, match="unanimity"):
            check_unanimity(
                {0: decision(0, "z")},
                {0: "a", 1: "a"},
                byzantine=frozenset(),
            )

    def test_vacuous_on_split_proposals(self):
        check_unanimity(
            {0: decision(0, "z")}, {0: "a", 1: "b"}, byzantine=frozenset()
        )

    def test_byzantine_proposals_ignored(self):
        check_unanimity(
            {0: decision(0, "a")},
            {0: "a", 1: "a", 2: "poison"},
            byzantine=frozenset({2}),
        )


class TestTermination:
    def test_passes_when_all_correct_decided(self):
        check_termination({0: decision(0, "v"), 1: decision(1, "v")}, {0, 1})

    def test_fails_on_missing(self):
        with pytest.raises(InvariantViolation, match="termination"):
            check_termination({0: decision(0, "v")}, {0, 1})


class TestIntegrity:
    def test_passes_unique(self):
        check_integrity([decision(0, "v"), decision(1, "v")])

    def test_fails_on_double_decide(self):
        with pytest.raises(InvariantViolation, match="integrity"):
            check_integrity([decision(0, "v"), decision(0, "v")])


def test_holds_wrapper():
    assert holds(check_agreement, {0: decision(0, "v")})
    assert not holds(
        check_agreement, {0: decision(0, "v"), 1: decision(1, "w")}
    )
