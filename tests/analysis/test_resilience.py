"""Resilience sweep harness."""

import pytest

from repro.analysis.resilience import (
    ScenarioResult,
    force_parameters,
    sweep_class,
)
from repro.core.classification import AlgorithmClass
from repro.core.flv_class2 import FLVClass2
from repro.core.parameters import ConsensusParameters
from repro.core.types import FaultModel, Flag


class TestForceParameters:
    def test_bypasses_validation(self):
        model = FaultModel(4, 1, 0)
        # TD = 4 > n − b: normal construction would raise.
        params = force_parameters(model, 4, Flag.CURRENT_PHASE, FLVClass2(model, 4))
        assert isinstance(params, ConsensusParameters)
        assert params.threshold == 4

    def test_product_is_usable(self):
        model = FaultModel(4, 1, 0)
        params = force_parameters(model, 3, Flag.CURRENT_PHASE, FLVClass2(model, 3))
        assert params.rounds_per_phase == 3
        assert params.state_footprint == ("vote", "ts")


class TestSweep:
    def test_byzantine_sweep_shape(self):
        rows = sweep_class(
            AlgorithmClass.CLASS_3,
            [FaultModel(4, 1, 0), FaultModel(3, 1, 0)],
            scenarios=("silent", "equivocator"),
        )
        admitted = [row for row in rows if row.admitted]
        rejected = [row for row in rows if not row.admitted]
        assert len(admitted) == 2  # two scenarios at n = 4
        assert len(rejected) == 1  # n = 3 refused
        assert all(row.agreement for row in admitted)
        assert all(row.termination for row in admitted)

    def test_benign_sweep_uses_crash_scenario(self):
        rows = sweep_class(
            AlgorithmClass.CLASS_2,
            [FaultModel(3, 0, 1)],
        )
        assert [row.scenario for row in rows] == ["crash"]
        assert rows[0].agreement and rows[0].termination

    def test_fault_free_scenario(self):
        rows = sweep_class(AlgorithmClass.CLASS_2, [FaultModel(3, 0, 0)])
        assert [row.scenario for row in rows] == ["fault-free"]

    def test_row_fields(self):
        row = ScenarioResult(4, 1, 0, "silent", True, True, True, 1)
        assert row.n == 4 and row.phases == 1
