"""RoundStructure: mapping global rounds to (phase, kind)."""

import pytest

from repro.core.process import RoundStructure
from repro.core.types import Flag, RoundKind


class TestThreeRoundPhases:
    def test_paper_numbering(self):
        structure = RoundStructure(Flag.CURRENT_PHASE)
        # Phase φ: selection 3φ−2, validation 3φ−1, decision 3φ.
        for phase in (1, 2, 5):
            assert structure.info(3 * phase - 2).kind is RoundKind.SELECTION
            assert structure.info(3 * phase - 1).kind is RoundKind.VALIDATION
            assert structure.info(3 * phase).kind is RoundKind.DECISION
            assert structure.info(3 * phase).phase == phase

    def test_rounds_per_phase(self):
        assert RoundStructure(Flag.CURRENT_PHASE).rounds_per_phase == 3

    def test_rounds_for_phases(self):
        structure = RoundStructure(Flag.CURRENT_PHASE)
        assert structure.rounds_for_phases(4) == 12


class TestTwoRoundPhases:
    def test_validation_suppressed(self):
        structure = RoundStructure(Flag.ANY)
        kinds = [structure.info(r).kind for r in range(1, 7)]
        assert kinds == [
            RoundKind.SELECTION,
            RoundKind.DECISION,
        ] * 3

    def test_phases(self):
        structure = RoundStructure(Flag.ANY)
        assert structure.info(1).phase == 1
        assert structure.info(2).phase == 1
        assert structure.info(3).phase == 2
        assert structure.info(6).phase == 3


class TestSkipFirstSelection:
    def test_three_round_flag(self):
        structure = RoundStructure(Flag.CURRENT_PHASE, skip_first_selection=True)
        kinds = [structure.info(r).kind for r in range(1, 6)]
        assert kinds == [
            RoundKind.VALIDATION,  # phase 1 starts at validation
            RoundKind.DECISION,
            RoundKind.SELECTION,  # phase 2 is full
            RoundKind.VALIDATION,
            RoundKind.DECISION,
        ]
        assert structure.info(2).phase == 1
        assert structure.info(3).phase == 2

    def test_two_round_flag(self):
        structure = RoundStructure(Flag.ANY, skip_first_selection=True)
        kinds = [structure.info(r).kind for r in range(1, 4)]
        assert kinds == [
            RoundKind.DECISION,  # phase 1 is decision-only
            RoundKind.SELECTION,
            RoundKind.DECISION,
        ]

    def test_rounds_for_phases_accounts_for_skip(self):
        structure = RoundStructure(Flag.CURRENT_PHASE, skip_first_selection=True)
        assert structure.rounds_for_phases(1) == 2
        assert structure.rounds_for_phases(3) == 8


class TestKindsOfPhase:
    def test_full_phase(self):
        structure = RoundStructure(Flag.CURRENT_PHASE)
        assert structure.kinds_of_phase(1) == [
            RoundKind.SELECTION,
            RoundKind.VALIDATION,
            RoundKind.DECISION,
        ]

    def test_skipped_first_phase(self):
        structure = RoundStructure(Flag.ANY, skip_first_selection=True)
        assert structure.kinds_of_phase(1) == [RoundKind.DECISION]
        assert structure.kinds_of_phase(2) == [
            RoundKind.SELECTION,
            RoundKind.DECISION,
        ]


def test_round_numbers_start_at_one():
    structure = RoundStructure(Flag.CURRENT_PHASE)
    with pytest.raises(ValueError):
        structure.info(0)
