"""The randomized adaptation (Section 6)."""

import pytest

from repro.algorithms.ben_or import build_ben_or
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.randomized import (
    check_randomizable,
    make_coin,
    run_randomized_consensus,
)
from repro.core.types import FaultModel


class TestCoin:
    def test_deterministic_per_seed(self):
        a = make_coin(1, process=0)
        b = make_coin(1, process=0)
        assert [a(p) for p in range(10)] == [b(p) for p in range(10)]

    def test_independent_per_process(self):
        a = make_coin(1, process=0)
        b = make_coin(1, process=1)
        assert [a(p) for p in range(20)] != [b(p) for p in range(20)]

    def test_values_drawn_from_pool(self):
        coin = make_coin(3, process=0, values=("h", "t"))
        assert {coin(p) for p in range(30)} == {"h", "t"}

    def test_requires_two_outcomes(self):
        with pytest.raises(ValueError):
            make_coin(0, process=0, values=(1,))


class TestRandomizable:
    def test_classes_1_and_2_yes_class_3_no(self):
        """Section 6: only classes 1 and 2 satisfy strengthened liveness."""
        cases = [
            (AlgorithmClass.CLASS_1, FaultModel(6, 1, 0), True),
            (AlgorithmClass.CLASS_2, FaultModel(5, 1, 0), True),
            (AlgorithmClass.CLASS_3, FaultModel(4, 1, 0), False),
        ]
        for cls, model, expected in cases:
            params = build_class_parameters(cls, model)
            assert check_randomizable(params) is expected

    def test_class3_run_rejected(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        with pytest.raises(ValueError, match="FLV-liveness"):
            run_randomized_consensus(params, {pid: 0 for pid in range(4)})


class TestBenOrBenign:
    def test_unanimous_start_decides_immediately(self):
        spec = build_ben_or(4)
        outcome = run_randomized_consensus(
            spec.parameters, {pid: 1 for pid in range(4)}, seed=11
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.decided_values == {1}

    def test_split_start_terminates_with_probability_one(self):
        spec = build_ben_or(4)
        outcome = run_randomized_consensus(
            spec.parameters, {0: 0, 1: 1, 2: 0, 3: 1}, seed=5
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.decided_values <= {0, 1}

    def test_multiple_seeds_always_agree(self):
        spec = build_ben_or(5)
        for seed in range(8):
            outcome = run_randomized_consensus(
                spec.parameters,
                {0: 0, 1: 1, 2: 0, 3: 1, 4: 0},
                seed=seed,
            )
            assert outcome.agreement_holds, f"seed {seed}"
            assert outcome.all_correct_decided, f"seed {seed}"


class TestBenOrByzantine:
    def test_silent_adversary(self):
        spec = build_ben_or(5, b=1)
        outcome = run_randomized_consensus(
            spec.parameters,
            {0: 0, 1: 1, 2: 0, 3: 1},
            seed=3,
            byzantine={4: "silent"},
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided

    def test_equivocating_adversary_with_slack(self):
        # n = 8 > 4b + 3 gives enough slack for fast convergence.
        spec = build_ben_or(8, b=1)
        outcome = run_randomized_consensus(
            spec.parameters,
            {pid: pid % 2 for pid in range(7)},
            seed=3,
            byzantine={7: "equivocator"},
            max_phases=300,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided

    def test_unanimity_under_attack(self):
        spec = build_ben_or(5, b=1)
        outcome = run_randomized_consensus(
            spec.parameters,
            {pid: 1 for pid in range(4)},
            seed=9,
            byzantine={4: "vote-flipper"},
        )
        assert outcome.decided_values <= {1}


class TestVariantBounds:
    def test_benign_bound(self):
        with pytest.raises(ValueError, match="n > 2f"):
            build_ben_or(4, f=2)

    def test_byzantine_bound(self):
        with pytest.raises(ValueError, match="n > 4b"):
            build_ben_or(4, b=1)

    def test_thresholds(self):
        assert build_ben_or(5, f=2).parameters.threshold == 3  # f + 1
        assert build_ben_or(5, b=1).parameters.threshold == 4  # 3b + 1
