"""Algorithms 6-9: the specialized FLV functions of Sections 5-6."""

import pytest

from repro.core.flv_class1 import FLVClass1
from repro.core.flv_class2 import FLVClass2
from repro.core.flv_class3 import FLVClass3
from repro.core.flv_variants import (
    BenOrFLV,
    FaBPaxosFLV,
    PaxosFLV,
    PBFTFLV,
    fab_paxos_threshold,
    paxos_threshold,
    pbft_threshold,
)
from repro.core.types import FaultModel
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE
from tests.conftest import sel_msg


class TestThresholds:
    def test_fab_paxos_threshold(self):
        # ⌈(n + 3b + 1)/2⌉: n=6, b=1 → ⌈10/2⌉ = 5.
        assert fab_paxos_threshold(FaultModel(6, 1, 0)) == 5
        assert fab_paxos_threshold(FaultModel(7, 1, 0)) == 6
        assert fab_paxos_threshold(FaultModel(11, 2, 0)) == 9

    def test_paxos_threshold_is_majority(self):
        assert paxos_threshold(FaultModel(3, 0, 1)) == 2
        assert paxos_threshold(FaultModel(4, 0, 1)) == 3
        assert paxos_threshold(FaultModel(5, 0, 2)) == 3

    def test_pbft_threshold(self):
        assert pbft_threshold(FaultModel(4, 1, 0)) == 3
        assert pbft_threshold(FaultModel(7, 2, 0)) == 5


class TestFaBPaxosFLV:
    """Algorithm 6 and its footnote-13 improvement claim."""

    def test_footnote13_example(self):
        # n=7, b=1: original FaB needs ⌈(n−b+1)/2⌉ = 4 matching messages;
        # Algorithm 6 selects with count > (n−b−1)/2 = 2.5, i.e. 3.
        model = FaultModel(7, 1, 0)
        flv = FaBPaxosFLV(model)
        messages = [sel_msg("v")] * 3 + [sel_msg("w")] * 2
        assert flv.evaluate(messages) == "v"

    def test_agrees_with_class1_on_lock_detection(self, fab_model):
        generic = FLVClass1(fab_model, fab_paxos_threshold(fab_model))
        literal = FaBPaxosFLV(fab_model)
        # Locked scenario: TD − b = 4 honest vote v.
        messages = [sel_msg("v")] * 4 + [sel_msg("w")] * 2
        assert generic.evaluate(messages) == literal.evaluate(messages) == "v"

    def test_null_below_bar(self, fab_model):
        literal = FaBPaxosFLV(fab_model)
        # n − b − 1 = 4; 3 messages, split votes → null.
        messages = [sel_msg("v")] * 2 + [sel_msg("w")]
        assert literal.evaluate(messages) is NULL_VALUE

    def test_any_above_bar(self, fab_model):
        literal = FaBPaxosFLV(fab_model)
        messages = [sel_msg(f"v{i}") for i in range(5)]
        assert literal.evaluate(messages) is ANY_VALUE


class TestPaxosFLV:
    """Algorithm 7: the benign (b = 0) class-3 simplification."""

    def test_requires_benign_model(self):
        with pytest.raises(ValueError):
            PaxosFLV(FaultModel(4, 1, 0))

    def test_locked_value_wins(self, benign_model):
        # "new" was validated by a majority (the decided configuration):
        # the stale vote cannot survive line 1.
        flv = PaxosFLV(benign_model)
        messages = [
            sel_msg("new", ts=2),
            sel_msg("new", ts=2),
            sel_msg("old", ts=1),
        ]
        assert flv.evaluate(messages) == "new"

    def test_unlocked_mixed_timestamps_return_any(self, benign_model):
        # A single ts=2 vote does not prove a decision: both votes survive
        # line 1 and Algorithm 7 answers ? (any selection is safe).
        flv = PaxosFLV(benign_model)
        messages = [
            sel_msg("old", ts=1),
            sel_msg("new", ts=2),
            sel_msg("old", ts=1),
        ]
        assert flv.evaluate(messages) is ANY_VALUE

    def test_null_without_majority_vector(self, benign_model):
        flv = PaxosFLV(benign_model)
        assert flv.evaluate([sel_msg("v", ts=0)]) is NULL_VALUE

    def test_any_with_fresh_majority(self, benign_model):
        flv = PaxosFLV(benign_model)
        messages = [sel_msg("a", ts=0), sel_msg("b", ts=0)]
        assert flv.evaluate(messages) is ANY_VALUE

    def test_matches_generic_class_flvs_on_benign_vectors(self, benign_model):
        """Section 5.3: with b = 0 Algorithm 7 ≡ Algorithm 3 ≡ Algorithm 4."""
        td = paxos_threshold(benign_model)
        paxos = PaxosFLV(benign_model, td)
        class2 = FLVClass2(benign_model, td)
        class3 = FLVClass3(benign_model, td, ensure_unanimity=False)
        vectors = [
            [sel_msg("a", ts=0, history=frozenset({("a", 0)}))],
            [
                sel_msg("a", ts=0, history=frozenset({("a", 0)})),
                sel_msg("b", ts=0, history=frozenset({("b", 0)})),
            ],
            [
                sel_msg("a", ts=2, history=frozenset({("a", 0), ("a", 2)})),
                sel_msg("b", ts=1, history=frozenset({("b", 0), ("b", 1)})),
                sel_msg("a", ts=2, history=frozenset({("a", 0), ("a", 2)})),
            ],
        ]
        for vector in vectors:
            assert (
                paxos.evaluate(vector)
                == class2.evaluate(vector)
                == class3.evaluate(vector)
            )


class TestPBFTFLV:
    """Algorithm 8: class 3 without the unanimity branch."""

    def test_certified_value_returned(self, pbft_model):
        flv = PBFTFLV(pbft_model)
        cert = frozenset({("v", 2)})
        messages = [
            sel_msg("v", ts=2, history=cert),
            sel_msg("v", ts=2, history=cert),
            sel_msg("w", ts=0),
        ]
        assert flv.evaluate(messages) == "v"

    def test_fresh_system_returns_any(self, pbft_model):
        flv = PBFTFLV(pbft_model)
        messages = [sel_msg(f"v{i}", ts=0, history=frozenset()) for i in range(3)]
        assert flv.evaluate(messages) is ANY_VALUE

    def test_no_unanimity_guarantee(self, pbft_model):
        # All honest propose v, but PBFT's FLV may return ? regardless.
        flv = PBFTFLV(pbft_model)
        messages = [sel_msg("v", ts=0, history=frozenset())] * 3
        assert flv.evaluate(messages) is ANY_VALUE

    def test_matches_class3_without_unanimity(self, pbft_model):
        literal = PBFTFLV(pbft_model)
        generic = FLVClass3(pbft_model, 3, ensure_unanimity=False)
        cert = frozenset({("v", 1)})
        vectors = [
            [sel_msg("v", ts=1, history=cert)] * 2 + [sel_msg("w", ts=0)],
            [sel_msg(f"u{i}", ts=0) for i in range(3)],
            [sel_msg("v", ts=1, history=cert)],
        ]
        for vector in vectors:
            assert literal.evaluate(vector) == generic.evaluate(vector)


class TestBenOrFLV:
    """Algorithm 9: the randomized selection rule."""

    def test_returns_value_with_b_plus_1_previous_phase_votes(self):
        model = FaultModel(5, 1, 0)
        flv = BenOrFLV(model, threshold=4)
        messages = [sel_msg(1, ts=2)] * 2 + [sel_msg(0, ts=0)] * 2
        assert flv.evaluate(messages, phase=3) == 1

    def test_stale_timestamps_do_not_count(self):
        model = FaultModel(5, 1, 0)
        flv = BenOrFLV(model, threshold=4)
        messages = [sel_msg(1, ts=1)] * 3  # ts ≠ φ − 1 for φ = 3
        assert flv.evaluate(messages, phase=3) is ANY_VALUE

    def test_never_returns_null(self):
        model = FaultModel(5, 1, 0)
        flv = BenOrFLV(model, threshold=4)
        assert flv.evaluate([], phase=1) is ANY_VALUE

    def test_deterministic_among_qualifying_values(self):
        model = FaultModel(7, 1, 0)
        flv = BenOrFLV(model, threshold=4)
        messages = [sel_msg(0, ts=1)] * 2 + [sel_msg(1, ts=1)] * 2
        first = flv.evaluate(messages, phase=2)
        second = flv.evaluate(list(reversed(messages)), phase=2)
        assert first == second
