"""FLV class 2 (Algorithm 3) — including the paper's Figure 2 scenario."""

import pytest

from repro.core.flv_class2 import (
    FLVClass2,
    class2_min_processes,
    class2_min_threshold,
    mqb_threshold,
    survivors,
)
from repro.core.types import FaultModel
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE
from tests.conftest import sel_msg


@pytest.fixture
def fig2_flv():
    """Figure 2 parameters: n=5, b=1, f=0, TD=4 (slack n−TD+b = 2)."""
    return FLVClass2(FaultModel(n=5, b=1, f=0), threshold=4)


class TestFigure2Scenario:
    """The exact scenario illustrated in Figure 2 of the paper."""

    def test_locked_value_beats_byzantine_high_ts(self, fig2_flv):
        # TD − b = 3 honest hold (v1, φ1); one honest holds (v2, φ2' < φ1);
        # the Byzantine claims (v2, φ2 > φ1).
        phi1 = 3
        messages = (
            [sel_msg("v1", ts=phi1)] * 3
            + [sel_msg("v2", ts=1)]
            + [sel_msg("v2", ts=7)]  # Byzantine lie
        )
        assert fig2_flv.evaluate(messages) == "v1"

    def test_byzantine_vote_alone_cannot_enter_correct_votes(self, fig2_flv):
        # The Byzantine message survives line 1 (its huge ts dominates all),
        # but line 2 requires > b supporting messages in possibleVotes.
        phi1 = 3
        messages = [sel_msg("v1", ts=phi1)] * 3 + [sel_msg("v2", ts=100)]
        survivors_set = survivors(messages, 2)
        assert sel_msg("v2", ts=100) in survivors_set
        assert fig2_flv.evaluate(messages) == "v1"

    def test_vector_above_any_bar_with_lock_returns_locked(self, fig2_flv):
        # |μ| > n − TD + 2b = 3 → may return ? only if nothing is locked.
        phi1 = 2
        messages = [sel_msg("v1", ts=phi1)] * 3 + [sel_msg("v2", ts=0)]
        assert fig2_flv.evaluate(messages) == "v1"

    def test_small_ambiguous_vector_returns_null(self, fig2_flv):
        messages = [sel_msg("v1", ts=1), sel_msg("v2", ts=2)]
        assert fig2_flv.evaluate(messages) is NULL_VALUE

    def test_fresh_system_large_vector_returns_any(self, fig2_flv):
        # All ts = 0, four distinct votes: nothing locked, |μ| = 4 > 3.
        messages = [sel_msg(f"v{i}", ts=0) for i in range(4)]
        assert fig2_flv.evaluate(messages) is ANY_VALUE


class TestSurvivors:
    def test_same_vote_counts(self):
        messages = [sel_msg("a", ts=0)] * 3
        assert len(survivors(messages, 2)) == 3

    def test_higher_ts_dominates(self):
        messages = [sel_msg("a", ts=5), sel_msg("b", ts=0), sel_msg("c", ts=0)]
        kept = survivors(messages, 2)
        assert sel_msg("a", ts=5) in kept
        assert sel_msg("b", ts=0) not in kept

    def test_multiset_semantics(self):
        # Identical messages each count once per copy.
        messages = [sel_msg("a", ts=1)] * 2 + [sel_msg("b", ts=0)]
        kept = survivors(messages, 2)
        assert kept.count(sel_msg("a", ts=1)) == 2


class TestBounds:
    def test_min_threshold(self):
        assert class2_min_threshold(FaultModel(5, 1, 0)) == 4
        assert class2_min_threshold(FaultModel(3, 0, 1)) == 2

    def test_min_processes(self):
        assert class2_min_processes(b=1, f=0) == 5
        assert class2_min_processes(b=0, f=1) == 3
        assert class2_min_processes(b=2, f=1) == 11

    def test_mqb_threshold(self):
        # ⌈(n + 2b + 1)/2⌉ for n=5, b=1 → ⌈8/2⌉ = 4.
        assert mqb_threshold(FaultModel(5, 1, 0)) == 4
        assert mqb_threshold(FaultModel(9, 2, 0)) == 7

    def test_liveness_bound(self):
        model = FaultModel(5, 1, 0)
        assert FLVClass2(model, 4).satisfies_liveness_bound()
        assert not FLVClass2(model, 3).satisfies_liveness_bound()


class TestProperties:
    def test_empty_returns_null(self, fig2_flv):
        assert fig2_flv.evaluate([]) is NULL_VALUE

    def test_liveness_full_correct_vector_not_null(self, fig2_flv):
        # n − b − f = 4 messages: the |μ| > n − TD + 2b = 3 bar is met.
        messages = [sel_msg(f"v{i}", ts=0) for i in range(4)]
        assert fig2_flv.evaluate(messages) is not NULL_VALUE

    def test_requirements(self, fig2_flv):
        req = fig2_flv.requirements
        assert req.uses_ts
        assert not req.uses_history
        assert req.supports_prel_liveness

    def test_unanimity_start(self, fig2_flv):
        # All honest share v at ts 0: only v (or null) may come back.
        messages = [sel_msg("v", ts=0)] * 4 + [sel_msg("w", ts=0)]
        assert fig2_flv.evaluate(messages) == "v"
