"""FLV class 1 (Algorithm 2) — including the paper's Figure 1 scenario."""

import pytest

from repro.core.flv_class1 import (
    FLVClass1,
    class1_min_processes,
    class1_min_threshold,
)
from repro.core.types import FaultModel
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE
from tests.conftest import sel_msg


@pytest.fixture
def fig1_flv():
    """Figure 1 parameters: n=6, b=1, f=0, TD=5 (slack n−TD+b = 2)."""
    return FLVClass1(FaultModel(n=6, b=1, f=0), threshold=5)


class TestFigure1Scenario:
    """The exact scenario illustrated in Figure 1 of the paper."""

    def test_locked_value_is_returned(self, fig1_flv):
        # TD − b = 4 honest processes vote v1; n − TD + b = 2 vote v2.
        messages = [sel_msg("v1")] * 4 + [sel_msg("v2")] * 2
        assert fig1_flv.evaluate(messages) == "v1"

    def test_large_vector_never_returns_any_when_locked(self, fig1_flv):
        # Any subset of > 2(n − TD + b) = 4 messages contains > 2 × v1.
        messages = [sel_msg("v1")] * 3 + [sel_msg("v2")] * 2
        assert fig1_flv.evaluate(messages) == "v1"

    def test_small_vector_returns_null(self, fig1_flv):
        # ≤ 2(n − TD + b) messages and no value above the support bar.
        messages = [sel_msg("v1")] * 2 + [sel_msg("v2")] * 2
        assert fig1_flv.evaluate(messages) is NULL_VALUE

    def test_unlocked_large_vector_returns_any(self, fig1_flv):
        # 5 messages, no value with > 2 support... requires ≥ 3 values.
        messages = (
            [sel_msg("a")] * 2 + [sel_msg("b")] * 2 + [sel_msg("c")]
        )
        assert fig1_flv.evaluate(messages) is ANY_VALUE


class TestBounds:
    def test_min_threshold(self):
        model = FaultModel(n=6, b=1, f=0)
        # TD > (6 + 3)/2 = 4.5 → 5.
        assert class1_min_threshold(model) == 5

    def test_min_processes(self):
        assert class1_min_processes(b=1, f=0) == 6
        assert class1_min_processes(b=0, f=1) == 4
        assert class1_min_processes(b=2, f=1) == 14

    def test_liveness_bound_check(self):
        model = FaultModel(n=6, b=1, f=0)
        assert FLVClass1(model, 5).satisfies_liveness_bound()
        assert not FLVClass1(model, 4).satisfies_liveness_bound()


class TestProperties:
    def test_empty_vector_returns_null(self, fig1_flv):
        assert fig1_flv.evaluate([]) is NULL_VALUE

    def test_validity_result_is_a_received_vote(self, fig1_flv):
        messages = [sel_msg("only")] * 5
        assert fig1_flv.evaluate(messages) == "only"

    def test_liveness_full_correct_vector_not_null(self, fig1_flv):
        # n − b − f = 5 messages from correct processes: never null.
        messages = [sel_msg(f"v{i}") for i in range(5)]
        result = fig1_flv.evaluate(messages)
        assert result is not NULL_VALUE

    def test_requirements(self, fig1_flv):
        req = fig1_flv.requirements
        assert not req.uses_ts
        assert not req.uses_history
        assert req.supports_prel_liveness

    def test_timestamps_are_ignored(self, fig1_flv):
        with_ts = [sel_msg("v1", ts=9)] * 4 + [sel_msg("v2", ts=1)] * 2
        assert fig1_flv.evaluate(with_ts) == "v1"


class TestAgreementAfterDecision:
    """If v was decided, TD−b honest keep voting v; FLV can only return v."""

    @pytest.mark.parametrize("extra_v2", range(0, 3))
    def test_post_decision_vectors(self, fig1_flv, extra_v2):
        honest_v1 = 4  # TD − b
        messages = [sel_msg("v1")] * honest_v1 + [sel_msg("v2")] * extra_v2
        result = fig1_flv.evaluate(messages)
        assert result in ("v1", NULL_VALUE)
        if len(messages) > 4:  # 2(n − TD + b)
            assert result == "v1"
