"""run_consensus: the one-call harness."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.parameters import GenericConsensusConfig
from repro.core.run import STRATEGY_REGISTRY, run_consensus
from repro.core.types import FaultModel
from repro.faults.byzantine import SilentByzantine
from repro.faults.crash import CrashSchedule
from repro.rounds.policies import LossyPolicy
from repro.rounds.schedule import GoodBadSchedule
from repro.rounds.policies import GoodBadPolicy
import random


class TestHappyPath:
    def test_all_classes_decide_in_one_phase(self):
        cases = [
            (AlgorithmClass.CLASS_1, FaultModel(6, 1, 0)),
            (AlgorithmClass.CLASS_2, FaultModel(5, 1, 0)),
            (AlgorithmClass.CLASS_3, FaultModel(4, 1, 0)),
        ]
        for cls, model in cases:
            params = build_class_parameters(cls, model)
            values = {pid: f"v{pid % 2}" for pid in model.processes}
            outcome = run_consensus(params, values)
            assert outcome.agreement_holds
            assert outcome.all_correct_decided
            assert outcome.phases_to_last_decision == 1

    def test_validity(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        values = {pid: "only" for pid in pbft_model.processes}
        outcome = run_consensus(params, values)
        assert outcome.decided_values == {"only"}
        assert outcome.validity_holds()

    def test_unanimity_with_byzantine(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        values = {pid: "agreed" for pid in range(3)}
        outcome = run_consensus(params, values, byzantine={3: "vote-flipper"})
        assert outcome.decided_values == {"agreed"}
        assert outcome.unanimity_holds()


class TestInputValidation:
    def test_missing_initial_value(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        with pytest.raises(ValueError, match="missing initial value"):
            run_consensus(params, {0: "a"})

    def test_too_many_byzantine(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        with pytest.raises(ValueError, match="exceed b"):
            run_consensus(
                params,
                {0: "a", 1: "a"},
                byzantine={2: "silent", 3: "silent"},
            )

    def test_unknown_strategy_name(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        with pytest.raises(ValueError, match="unknown Byzantine strategy"):
            run_consensus(
                params, {0: "a", 1: "a", 2: "a"}, byzantine={3: "nonsense"}
            )


class TestByzantineSpecs:
    def test_all_registry_strategies_run(self, mqb_model):
        params = build_class_parameters(AlgorithmClass.CLASS_2, mqb_model)
        values = {pid: f"v{pid % 2}" for pid in range(4)}
        for name in STRATEGY_REGISTRY:
            outcome = run_consensus(params, values, byzantine={4: name})
            assert outcome.agreement_holds, name
            assert outcome.all_correct_decided, name

    def test_instance_spec(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        strategy = SilentByzantine(3, params)
        outcome = run_consensus(
            params, {0: "a", 1: "a", 2: "b"}, byzantine={3: strategy}
        )
        assert outcome.agreement_holds

    def test_factory_spec(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        outcome = run_consensus(
            params,
            {0: "a", 1: "a", 2: "b"},
            byzantine={3: lambda pid, p: SilentByzantine(pid, p)},
        )
        assert outcome.agreement_holds


class TestCrashFaults:
    def test_crash_during_run(self):
        model = FaultModel(3, 0, 1)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        schedule = CrashSchedule.crash_first_f(model, round_number=1, clean=False)
        outcome = run_consensus(
            params,
            {pid: f"v{pid}" for pid in model.processes},
            crash_schedule=schedule,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert 0 not in outcome.decisions  # the crashed process never decides


class TestSafetyUnderLoss:
    def test_agreement_survives_unconstrained_loss(self, pbft_model):
        """Safety must hold even when no communication predicate does."""
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        values = {pid: f"v{pid % 2}" for pid in range(3)}
        outcome = run_consensus(
            params,
            values,
            byzantine={3: "equivocator"},
            policy=LossyPolicy(random.Random(5), drop_prob=0.4),
            max_phases=6,
        )
        assert outcome.agreement_holds  # termination is NOT guaranteed


class TestLivenessAfterBadPeriod:
    def test_decides_once_good_period_starts(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        schedule = GoodBadSchedule.good_after(7)
        policy = GoodBadPolicy(schedule, rng=random.Random(3))
        values = {pid: f"v{pid % 2}" for pid in range(3)}
        outcome = run_consensus(
            params,
            values,
            byzantine={3: "equivocator"},
            policy=policy,
            max_phases=10,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        # No decision can complete before the good period's first full phase.
        assert outcome.rounds_to_last_decision >= 7


class TestConfigIntegration:
    def test_skip_first_selection_decides_faster(self, fab_model):
        params = build_class_parameters(AlgorithmClass.CLASS_1, fab_model)
        values = {pid: "same" for pid in fab_model.processes}
        plain = run_consensus(params, values)
        skipped = run_consensus(
            params, values, config=GenericConsensusConfig(skip_first_selection=True)
        )
        assert skipped.agreement_holds and skipped.all_correct_decided
        assert (
            skipped.rounds_to_last_decision < plain.rounds_to_last_decision
        )
