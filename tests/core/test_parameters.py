"""Parameter validation against Theorem 1's conditions."""

import pytest

from repro.core.flv_class1 import FLVClass1
from repro.core.flv_class3 import FLVClass3
from repro.core.parameters import (
    ConsensusParameters,
    GenericConsensusConfig,
    ParameterError,
)
from repro.core.selector import AllProcessesSelector, RotatingCoordinatorSelector
from repro.core.types import FaultModel, Flag


def make_params(model, td, flag, flv_cls):
    return ConsensusParameters(
        model=model,
        threshold=td,
        flag=flag,
        flv=flv_cls(model, td),
        selector=AllProcessesSelector(model),
    )


class TestConstraints:
    def test_valid_class3(self, pbft_model):
        params = make_params(pbft_model, 3, Flag.CURRENT_PHASE, FLVClass3)
        assert params.threshold == 3

    def test_termination_bound(self, pbft_model):
        # TD ≤ n − b − f = 3; 4 must be rejected.
        with pytest.raises(ParameterError):
            make_params(pbft_model, 4, Flag.CURRENT_PHASE, FLVClass3)

    def test_flag_any_agreement_bound(self, fab_model):
        # FLAG = * needs TD > (n + b)/2 = 3.5 → 4 minimum.
        with pytest.raises(ParameterError):
            make_params(fab_model, 3, Flag.ANY, FLVClass1)
        params = make_params(fab_model, 4, Flag.ANY, FLVClass1)
        assert params.threshold == 4

    def test_flag_phi_agreement_bound(self, pbft_model):
        # FLAG = φ needs TD > b = 1.
        with pytest.raises(ParameterError):
            make_params(pbft_model, 1, Flag.CURRENT_PHASE, FLVClass3)

    def test_nonpositive_threshold(self, benign_model):
        with pytest.raises(ParameterError):
            make_params(benign_model, 0, Flag.CURRENT_PHASE, FLVClass3)

    def test_flv_threshold_mismatch(self, pbft_model):
        with pytest.raises(ParameterError):
            ConsensusParameters(
                model=pbft_model,
                threshold=3,
                flag=Flag.CURRENT_PHASE,
                flv=FLVClass3(pbft_model, 2),
                selector=AllProcessesSelector(pbft_model),
            )

    def test_flv_model_mismatch(self, pbft_model, mqb_model):
        with pytest.raises(ParameterError):
            ConsensusParameters(
                model=pbft_model,
                threshold=3,
                flag=Flag.CURRENT_PHASE,
                flv=FLVClass3(mqb_model, 3),
                selector=AllProcessesSelector(pbft_model),
            )

    def test_selector_model_mismatch(self, pbft_model, mqb_model):
        with pytest.raises(ParameterError):
            ConsensusParameters(
                model=pbft_model,
                threshold=3,
                flag=Flag.CURRENT_PHASE,
                flv=FLVClass3(pbft_model, 3),
                selector=AllProcessesSelector(mqb_model),
            )


class TestDerivedProperties:
    def test_rounds_per_phase(self, pbft_model, fab_model):
        phi = make_params(pbft_model, 3, Flag.CURRENT_PHASE, FLVClass3)
        star = make_params(fab_model, 5, Flag.ANY, FLVClass1)
        assert phi.rounds_per_phase == 3
        assert star.rounds_per_phase == 2

    def test_state_footprint(self, pbft_model, fab_model):
        phi = make_params(pbft_model, 3, Flag.CURRENT_PHASE, FLVClass3)
        star = make_params(fab_model, 5, Flag.ANY, FLVClass1)
        assert phi.state_footprint == ("vote", "ts", "history")
        assert star.state_footprint == ("vote",)

    def test_describe_mentions_threshold(self, pbft_model):
        params = make_params(pbft_model, 3, Flag.CURRENT_PHASE, FLVClass3)
        assert "TD=3" in params.describe()


class TestConfig:
    def test_static_selector_auto(self, pbft_model, benign_model):
        config = GenericConsensusConfig()
        assert config.uses_static_selector(AllProcessesSelector(pbft_model))
        assert not config.uses_static_selector(
            RotatingCoordinatorSelector(benign_model)
        )

    def test_static_selector_override(self, benign_model):
        config = GenericConsensusConfig(static_selector_optimization=True)
        assert config.uses_static_selector(
            RotatingCoordinatorSelector(benign_model)
        )
        config = GenericConsensusConfig(static_selector_optimization=False)
        assert not config.uses_static_selector(
            AllProcessesSelector(FaultModel(4, 1, 0))
        )
