"""Selector instantiations and their abstract properties (Section 4.2)."""

import pytest

from repro.core.selector import (
    AllProcessesSelector,
    FixedSelector,
    LeaderSelector,
    RotatingCoordinatorSelector,
    RotatingSubsetSelector,
)
from repro.core.types import FaultModel
from repro.detectors.leader import OmegaOracle, StabilizingLeaderOracle


class TestAllProcesses:
    def test_returns_pi_everywhere(self, pbft_model):
        selector = AllProcessesSelector(pbft_model)
        for pid in pbft_model.processes:
            for phase in (1, 2, 7):
                assert selector.select(pid, phase) == frozenset(range(4))

    def test_static_and_valid(self, pbft_model):
        selector = AllProcessesSelector(pbft_model)
        assert selector.is_static
        assert selector.satisfies_validity(selector.select(0, 1))
        assert selector.satisfies_strong_validity(selector.select(0, 1))


class TestRotatingSubset:
    def test_default_size_is_b_plus_1(self, mqb_model):
        selector = RotatingSubsetSelector(mqb_model)
        assert selector.size == 2
        assert len(selector.select(0, 1)) == 2

    def test_rotates_with_phase(self, mqb_model):
        selector = RotatingSubsetSelector(mqb_model)
        assert selector.select(0, 1) != selector.select(0, 2)

    def test_same_at_every_process(self, mqb_model):
        selector = RotatingSubsetSelector(mqb_model)
        for phase in range(1, 8):
            suggestions = {selector.select(pid, phase) for pid in mqb_model.processes}
            assert len(suggestions) == 1  # SL1 holds structurally

    def test_rejects_too_small(self, mqb_model):
        with pytest.raises(ValueError):
            RotatingSubsetSelector(mqb_model, size=1)  # b = 1 needs > 1

    def test_rejects_oversized(self, mqb_model):
        with pytest.raises(ValueError):
            RotatingSubsetSelector(mqb_model, size=6)

    def test_validity_property(self, mqb_model):
        selector = RotatingSubsetSelector(mqb_model, size=3)
        assert selector.satisfies_validity(selector.select(0, 4))


class TestRotatingCoordinator:
    def test_requires_benign(self, pbft_model):
        with pytest.raises(ValueError):
            RotatingCoordinatorSelector(pbft_model)

    def test_rotation(self, benign_model):
        selector = RotatingCoordinatorSelector(benign_model)
        assert selector.select(0, 1) == frozenset({0})
        assert selector.select(0, 2) == frozenset({1})
        assert selector.select(0, 4) == frozenset({0})  # wraps at n = 3

    def test_singleton_flag(self, benign_model):
        assert RotatingCoordinatorSelector(benign_model).is_singleton


class TestLeaderSelector:
    def test_requires_benign(self, pbft_model):
        with pytest.raises(ValueError):
            LeaderSelector(pbft_model, OmegaOracle(0))

    def test_stable_oracle(self, benign_model):
        selector = LeaderSelector(benign_model, OmegaOracle(2))
        assert selector.select(0, 1) == frozenset({2})
        assert selector.select(1, 9) == frozenset({2})

    def test_stabilizing_oracle_eventually_agrees(self, benign_model):
        oracle = StabilizingLeaderOracle(
            benign_model, stable_leader=1, stable_from_phase=4, seed=7
        )
        selector = LeaderSelector(benign_model, oracle)
        # After stabilization everyone sees the same leader.
        for pid in benign_model.processes:
            assert selector.select(pid, 4) == frozenset({1})
            assert selector.select(pid, 10) == frozenset({1})

    def test_out_of_range_oracle_rejected(self, benign_model):
        selector = LeaderSelector(benign_model, lambda p, phi: 99)
        with pytest.raises(ValueError):
            selector.select(0, 1)


class TestFixedSelector:
    def test_members(self, pbft_model):
        selector = FixedSelector(pbft_model, [0, 2, 3])
        assert selector.select(1, 5) == frozenset({0, 2, 3})
        assert selector.is_static

    def test_rejects_bad_ids(self, pbft_model):
        with pytest.raises(ValueError):
            FixedSelector(pbft_model, [0, 9])

    def test_singleton_detection(self, benign_model):
        assert FixedSelector(benign_model, [1]).is_singleton
        assert not FixedSelector(benign_model, [0, 1]).is_singleton


class TestAbstractProperties:
    def test_validity_accepts_empty(self, pbft_model):
        selector = AllProcessesSelector(pbft_model)
        assert selector.satisfies_validity(frozenset())

    def test_validity_rejects_small_nonempty(self, pbft_model):
        selector = AllProcessesSelector(pbft_model)
        assert not selector.satisfies_validity(frozenset({0}))  # b = 1 needs > 1

    def test_strong_validity_bound(self):
        model = FaultModel(8, 1, 1)  # 3b + 2f = 5
        selector = AllProcessesSelector(model)
        assert not selector.satisfies_strong_validity(frozenset(range(5)))
        assert selector.satisfies_strong_validity(frozenset(range(6)))
