"""GenericConsensusProcess: per-round behaviour of Algorithm 1."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.parameters import GenericConsensusConfig
from repro.core.process import GenericConsensusProcess, RoundStructure
from repro.core.types import (
    DecisionMessage,
    FaultModel,
    RoundInfo,
    RoundKind,
    SelectionMessage,
    ValidationMessage,
)
from repro.utils.sentinels import NULL_VALUE
from tests.conftest import sel_msg


@pytest.fixture
def class3_process(pbft_model):
    params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
    return GenericConsensusProcess(0, "init0", params)


def info(number, phase, kind):
    return RoundInfo(number, phase, kind)


class TestSelectionRound:
    def test_sends_state_to_selector_members(self, class3_process):
        out = class3_process.send(info(1, 1, RoundKind.SELECTION))
        assert set(out) == {0, 1, 2, 3}
        message = out[0]
        assert isinstance(message, SelectionMessage)
        assert message.vote == "init0"
        assert message.ts == 0
        assert ("init0", 0) in message.history

    def test_static_selector_elides_set(self, class3_process):
        out = class3_process.send(info(1, 1, RoundKind.SELECTION))
        assert out[0].selector == frozenset()  # optimization: not sent

    def test_selection_updates_vote_and_history(self, class3_process):
        received = {
            q: sel_msg("w", ts=0) for q in range(4)
        }
        class3_process.receive(info(1, 1, RoundKind.SELECTION), received)
        # Unanimity branch: all votes w → w selected.
        assert class3_process.state.vote == "w"
        assert ("w", 1) in class3_process.state.history

    def test_malformed_messages_are_dropped(self, class3_process):
        received = {0: "garbage", 1: 42, 2: None}
        class3_process.receive(info(1, 1, RoundKind.SELECTION), received)
        # Nothing parseable → FLV null → vote unchanged.
        assert class3_process.state.vote == "init0"

    def test_empty_reception_keeps_state(self, class3_process):
        class3_process.receive(info(1, 1, RoundKind.SELECTION), {})
        assert class3_process.state.vote == "init0"
        assert class3_process.state.history == {("init0", 0)}


class TestValidationRound:
    def _run_selection(self, process, value="w"):
        received = {q: sel_msg(value, ts=0) for q in range(4)}
        process.receive(info(1, 1, RoundKind.SELECTION), received)

    def test_validator_broadcasts_select(self, class3_process):
        self._run_selection(class3_process)
        out = class3_process.send(info(2, 1, RoundKind.VALIDATION))
        assert set(out) == {0, 1, 2, 3}
        assert isinstance(out[0], ValidationMessage)
        assert out[0].select == "w"

    def test_non_validator_is_silent(self, pbft_model):
        from repro.core.selector import FixedSelector

        params = build_class_parameters(
            AlgorithmClass.CLASS_3,
            pbft_model,
            selector=FixedSelector(pbft_model, [1, 2, 3]),
        )
        process = GenericConsensusProcess(0, "v", params)
        self._run_selection(process)
        assert process.send(info(2, 1, RoundKind.VALIDATION)) == {}

    def test_quorum_validates_vote_and_ts(self, class3_process):
        self._run_selection(class3_process)
        received = {
            q: ValidationMessage("w", frozenset()) for q in range(3)
        }
        class3_process.receive(info(2, 1, RoundKind.VALIDATION), received)
        assert class3_process.state.vote == "w"
        assert class3_process.state.ts == 1

    def test_no_quorum_reverts(self, class3_process):
        self._run_selection(class3_process)
        received = {0: ValidationMessage("w", frozenset())}
        class3_process.receive(info(2, 1, RoundKind.VALIDATION), received)
        assert class3_process.state.ts == 0
        assert class3_process.state.vote == "init0"  # reverted to ts=0 pair

    def test_null_select_is_not_a_candidate(self, class3_process):
        self._run_selection(class3_process)
        received = {
            q: ValidationMessage(NULL_VALUE, frozenset()) for q in range(4)
        }
        class3_process.receive(info(2, 1, RoundKind.VALIDATION), received)
        assert class3_process.state.ts == 0  # null never validates


class TestDecisionRound:
    def test_sends_vote_and_ts(self, class3_process):
        out = class3_process.send(info(3, 1, RoundKind.DECISION))
        assert isinstance(out[0], DecisionMessage)
        assert out[0].vote == "init0"

    def test_decides_with_threshold_current_phase(self, class3_process):
        received = {q: DecisionMessage("w", 1) for q in range(3)}  # TD = 3
        class3_process.receive(info(3, 1, RoundKind.DECISION), received)
        assert class3_process.decided == "w"

    def test_stale_timestamps_do_not_decide(self, class3_process):
        received = {q: DecisionMessage("w", 0) for q in range(4)}
        class3_process.receive(info(3, 1, RoundKind.DECISION), received)
        assert not class3_process.has_decided

    def test_below_threshold_does_not_decide(self, class3_process):
        received = {q: DecisionMessage("w", 1) for q in range(2)}
        class3_process.receive(info(3, 1, RoundKind.DECISION), received)
        assert not class3_process.has_decided

    def test_flag_any_counts_all_timestamps(self, fab_model):
        params = build_class_parameters(AlgorithmClass.CLASS_1, fab_model)
        process = GenericConsensusProcess(0, "v", params)
        received = {q: DecisionMessage("w", 0) for q in range(5)}  # TD = 5
        process.receive(info(2, 1, RoundKind.DECISION), received)
        assert process.decided == "w"

    def test_decision_round_recorded(self, class3_process):
        received = {q: DecisionMessage("w", 2) for q in range(3)}
        class3_process.receive(info(6, 2, RoundKind.DECISION), received)
        assert class3_process.decision_round == 6


class TestSkipFirstSelectionConfig:
    def test_preinitialized_selection(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        config = GenericConsensusConfig(skip_first_selection=True)
        process = GenericConsensusProcess(0, "v", params, config)
        # Phase 1 starts at validation; select_p = init_p, validators = Π.
        out = process.send(info(1, 1, RoundKind.VALIDATION))
        assert out[0].select == "v"

    def test_structure_matches_config(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        config = GenericConsensusConfig(skip_first_selection=True)
        process = GenericConsensusProcess(0, "v", params, config)
        assert process.structure.skip_first_selection


class TestHistoryBound:
    def test_truncation(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        config = GenericConsensusConfig(max_history_size=2)
        process = GenericConsensusProcess(0, "v", params, config)
        for phase in range(1, 6):
            received = {q: sel_msg(f"w{phase}", ts=0) for q in range(4)}
            process.receive(
                info(3 * phase - 2, phase, RoundKind.SELECTION), received
            )
        assert len(process.state.history) <= 2
